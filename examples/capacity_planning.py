"""Capacity planning: dimension a UDR for an operator's subscriber base.

Run with::

    python examples/capacity_planning.py

The script uses the paper's section 3.5 capacity model to answer the
questions an operator's planning department would ask: how many blade
clusters does a given subscriber base need, how much operation headroom is
left, and what happens to the headroom when the traffic mix shifts from
classic mobile procedures (1-3 LDAP operations each) to IMS procedures
(5-6 operations each)?
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import CapacityModel
from repro.metrics import format_table
from repro.workloads import TrafficProfile


def main():
    model = CapacityModel()
    report = model.report()

    print("Paper capacity figures reproduced (section 3.5):\n")
    print(format_table(["figure", "value"], report.rows()))

    # How big a deployment do different operators need?
    operators = [
        ("regional operator", 5_000_000),
        ("national operator", 45_000_000),
        ("multi-national group", 180_000_000),
        ("the paper's ceiling", 512_000_000),
    ]
    rows = []
    for label, subscribers in operators:
        clusters = model.clusters_needed_for(subscribers)
        rows.append([label, f"{subscribers:,}", clusters,
                     clusters * model.elements_per_cluster])
    print("\nDeployment sizing:\n")
    print(format_table(["operator", "subscribers", "blade clusters",
                        "storage elements"], rows))

    # Does the operation headroom survive the traffic?
    traffic = TrafficProfile(procedures_per_subscriber_per_hour=9.0)
    rows = []
    for label, ops_per_procedure in (("classic (HLR) procedures", 2.0),
                                     ("IMS (HSS) procedures", 5.5)):
        offered = traffic.ldap_ops_per_second(
            report.total_subscribers, ops_per_procedure=ops_per_procedure)
        rows.append([
            label,
            f"{offered:,.0f}",
            f"{report.total_ops_per_second:,.0f}",
            f"{offered / report.total_ops_per_second:.2%}",
            round(model.procedure_headroom(ops_per_procedure), 1),
        ])
    print("\nBusy-hour load vs the operation ceiling at full subscriber "
          "capacity:\n")
    print(format_table(["traffic mix", "offered LDAP ops/s", "ceiling ops/s",
                        "utilisation", "headroom (proc/sub/s)"], rows))
    print("\nEven IMS-heavy traffic uses a few percent of the ceiling: the "
          "architecture is storage-bound, not operation-bound, exactly as "
          "the paper's ~18 ops/subscriber/s headroom suggests.")


if __name__ == "__main__":
    main()
