"""Dispatcher tuning: trading p99 latency for throughput with the linger budget.

Run with::

    python examples/dispatcher_tuning.py

Under ``dispatch_mode=DISPATCHER`` front-ends enqueue individual requests
and the UDR forms admission waves from the live arrival stream: a wave is
dispatched when it fills to ``batch_max_size`` or when the oldest enqueued
request has lingered ``batch_linger_ticks`` -- whichever comes first.  The
linger budget is the knob this example turns.  Two effects compete:

* lingering merges arrivals into bigger waves, amortising the shared
  PoA/LDAP/locate hops and coalescing more writes per transaction;
* but a busy dispatcher *self-clocks*: while one wave executes, new
  arrivals queue up and the next wave fills by itself -- the classic
  group-commit observation -- so an aggressive budget mostly buys wave
  size the backlog would have delivered anyway, at a p99 cost every
  request pays.

Cross-wave write coalescing (one multi-record transaction per partition per
wave) is left on throughout, as a production deployment would run it.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import Read, Write
from repro.core import DispatchMode, UDRConfig, UDRNetworkFunction
from repro.metrics import format_table
from repro.subscriber import SubscriberGenerator

OPERATIONS = 120


def build(linger_ticks: int, rate: float):
    config = UDRConfig(seed=21, dispatch_mode=DispatchMode.DISPATCHER,
                       batch_linger_ticks=linger_ticks, coalesce_writes=True,
                       name=f"tuning-l{linger_ticks}-r{rate:g}")
    udr = UDRNetworkFunction(config)
    udr.start()
    profiles = SubscriberGenerator(config.regions, seed=21).generate(40)
    udr.load_subscriber_base(profiles)
    return udr, profiles


def measure(linger_ticks: int, rate: float):
    udr, profiles = build(linger_ticks, rate)
    site_of = {region: site for site in udr.topology.sites
               for region in [site.region.name]}
    # One front-end client per site, each with a long-lived session -- the
    # session API's front door (typed operations in, futures out).
    sessions = {site: udr.attach(f"tuning-fe-{site.name}", site).session()
                for site in udr.topology.sites}
    futures = []

    def arrivals():
        rng = udr.sim.rng("tuning.arrivals")
        for index in range(OPERATIONS):
            yield udr.sim.timeout(rng.expovariate(rate))
            profile = profiles[index % len(profiles)]
            imsi = profile.identities.imsi
            site = site_of.get(profile.current_region or profile.home_region,
                               udr.topology.sites[0])
            operation = (Write(imsi, {"servingMsc": f"msc-{index}"})
                         if index % 3 == 0 else Read(imsi))
            futures.append(sessions[site].submit(operation))

    process = udr.sim.process(arrivals())
    udr.sim.run_until_triggered(process, limit=udr.sim.now + 3600.0)

    def wait_all():
        for session in sessions.values():
            yield from session.drain()

    waiter = udr.sim.process(wait_all())
    udr.sim.run_until_triggered(waiter, limit=udr.sim.now + 3600.0)

    elapsed = max(future.completed_at for future in futures)
    latencies = sorted(future.latency for future in futures)
    p99 = latencies[min(len(latencies) - 1,
                        round(0.99 * (len(latencies) - 1)))]
    waves = udr.metrics.counter("dispatcher.waves")
    mean_wave = udr.metrics.counter("dispatcher.dispatched") / waves
    return (OPERATIONS / elapsed, mean_wave, p99 * 1000.0,
            udr.metrics.counter("batch.coalesced.groups"))


def main():
    print("Arrival-driven dispatch: the linger budget's throughput/latency "
          "trade-off\n")
    for rate, regime in ((60.0, "light load"), (350.0, "near saturation")):
        rows = []
        for linger_ticks in (0, 5, 20, 80):
            ops, mean_wave, p99_ms, groups = measure(linger_ticks, rate)
            rows.append([linger_ticks, f"{ops:.1f}", f"{mean_wave:.1f}",
                         f"{p99_ms:.1f}", groups])
        print(f"arrival rate {rate:g}/s ({regime}):")
        print(format_table(
            ["linger (ticks)", "ops/s", "mean wave size", "p99 (ms)",
             "coalesced txns"], rows))
        print()
    print("Reading the tables: the budget reliably buys wave size (and "
          "fewer, fatter coalesced transactions), and it reliably costs "
          "p99 -- every request in an under-filled wave sits out the "
          "budget.  What it does NOT buy here is throughput: a loaded "
          "dispatcher self-clocks, because arrivals that land while a "
          "wave executes fill the next wave for free.  The practical "
          "recipe: keep the budget small (a few ticks), let the backlog "
          "do the batching, and spend ticks only when wave-size-dependent "
          "savings (coalesced commits, shared backbone hops) are worth "
          "the added tail latency.")


if __name__ == "__main__":
    main()
