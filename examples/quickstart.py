"""Quickstart: build a UDR, load subscribers, run procedures, read the metrics.

Run with::

    python examples/quickstart.py

The script builds the paper's default design (single-master asynchronous
replication, READ_COMMITTED intra-SE transactions, provisioned
identity-location maps, home-region placement), loads a small synthetic
subscriber base, executes a handful of network procedures and provisioning
operations, and prints what the deployment measured.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import ClientType, UDRConfig, UDRNetworkFunction
from repro.frontends import HlrFrontEnd, ProcedureCatalogue
from repro.metrics import format_table
from repro.provisioning import ChangeServices, CreateSubscription, ProvisioningSystem
from repro.subscriber import SubscriberGenerator


def drive(udr, generator):
    """Run one client operation to completion in virtual time."""
    process = udr.sim.process(generator)
    udr.sim.run_until_triggered(process)
    return process.value


def main():
    # 1. Describe and build the deployment (three countries, one site each).
    config = UDRConfig(seed=2014)
    udr = UDRNetworkFunction(config)
    udr.start()
    print(f"built {udr!r}")
    print(f"sites: {[str(site) for site in udr.topology.sites]}")

    # 2. Load a synthetic subscriber base.
    generator = SubscriberGenerator(config.regions, seed=2014)
    profiles = generator.generate(120)
    udr.load_subscriber_base(profiles)
    print(f"loaded {udr.subscribers_loaded} subscribers")

    # 3. Application front-end traffic: one HLR-FE per region runs network
    #    procedures for the subscribers currently in its region.
    spain_site = udr.topology.site("spain-dc1")
    front_end = HlrFrontEnd("hlr-fe-spain", udr, spain_site)
    spain_subscribers = [p for p in profiles if p.home_region == "spain"]
    for subscriber in spain_subscribers[:10]:
        outcome = drive(udr, front_end.run_procedure(
            ProcedureCatalogue.LOCATION_UPDATE, subscriber,
            serving_node="msc-madrid-1"))
        print(f"  {outcome.procedure} for {subscriber.identities.msisdn}: "
              f"{'ok' if outcome.succeeded else 'FAILED'} "
              f"in {outcome.latency * 1000:.2f} ms")

    # 4. Provisioning: create a brand-new subscription and bar premium calls
    #    on an existing one, through the PS co-located with the Spanish PoA.
    ps = ProvisioningSystem("ps-1", udr, spain_site)
    new_subscriber = SubscriberGenerator(config.regions, seed=77).generate_one()
    outcome = drive(udr, ps.provision(CreateSubscription(new_subscriber)))
    print(f"provisioned {new_subscriber.identities.imsi}: {outcome.succeeded}")
    outcome = drive(udr, ps.provision(ChangeServices(
        profiles[0], changes={"svcBarPremium": True})))
    print(f"premium barring on {profiles[0].identities.msisdn}: "
          f"{outcome.succeeded}")

    # 5. What did the deployment measure?
    fe_latency = udr.metrics.latency(ClientType.APPLICATION_FE.value)
    ps_latency = udr.metrics.latency(ClientType.PROVISIONING.value)
    rows = [
        ["FE operations", fe_latency.count,
         f"{fe_latency.mean() * 1000:.2f}",
         f"{fe_latency.p95() * 1000:.2f}"],
        ["PS operations", ps_latency.count,
         f"{ps_latency.mean() * 1000:.2f}",
         f"{ps_latency.p95() * 1000:.2f}"],
    ]
    print()
    print(format_table(["client", "operations", "mean latency (ms)",
                        "p95 latency (ms)"], rows))
    print(f"\nfront-end procedure success ratio: "
          f"{front_end.success_ratio():.3f}")
    print(f"provisioning success ratio: {ps.success_ratio():.3f}")


if __name__ == "__main__":
    main()
