"""Durability tuning: async vs dual-in-sequence vs quorum replication.

Run with::

    python examples/durability_tuning.py

Section 5 of the paper argues that service providers will demand tunable
durability for provisioning transactions, that Cassandra-style quorum commits
are the elegant-but-expensive end of the spectrum, and that applying
transactions "in sequence to two replicas" is the affordable middle ground.
This example provisions the same burst of subscriptions under the three
replication modes, then crashes the storage element that took the writes and
reports what each mode lost and what each mode charged in write latency.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import ClientType, ReplicationMode, UDRConfig, UDRNetworkFunction
from repro.api import Write
from repro.metrics import format_table
from repro.subscriber import SubscriberGenerator


def drive(udr, generator):
    process = udr.sim.process(generator)
    udr.sim.run_until_triggered(process)
    return process.value


def provision_and_crash(mode: ReplicationMode, writes: int = 25):
    config = UDRConfig(replication_mode=mode, seed=5,
                       replication_interval=30.0)
    udr = UDRNetworkFunction(config)
    udr.start()
    profiles = SubscriberGenerator(config.regions, seed=5).generate(60)
    udr.load_subscriber_base(profiles)

    locator = next(iter(udr.locators.values()))
    target = locator.locate("imsi", profiles[0].identities.imsi)
    victims = [p for p in profiles
               if locator.locate("imsi", p.identities.imsi) == target][:writes]
    ps_site = udr.elements[target].site

    session = udr.attach("tuning-ps", ps_site,
                         client_type=ClientType.PROVISIONING).session()
    latencies = []
    expected = {}
    for index, profile in enumerate(victims):
        operation = Write(profile.identities.imsi,
                          {"svcCfu": f"+34{index:09d}"})
        start = udr.sim.now
        response = drive(udr, session.call(operation))
        if response.ok:
            latencies.append(udr.sim.now - start)
            expected[profile.key] = f"+34{index:09d}"

    replica_set = udr._replica_set_of_element(target)
    udr.elements[target].crash(timestamp=udr.sim.now)
    lost = 0
    for key, value in expected.items():
        survivors = [replica_set.copy_on(name).store.get(key)
                     for name in replica_set.slave_names()]
        if not any(isinstance(record, dict) and record.get("svcCfu") == value
                   for record in survivors):
            lost += 1
    mean_latency_ms = (sum(latencies) / len(latencies) * 1000) \
        if latencies else 0.0
    return mean_latency_ms, len(expected), lost


def main():
    rows = []
    for mode in (ReplicationMode.ASYNCHRONOUS,
                 ReplicationMode.DUAL_IN_SEQUENCE,
                 ReplicationMode.QUORUM):
        latency_ms, committed, lost = provision_and_crash(mode)
        rows.append([mode.value, f"{latency_ms:.2f}", committed, lost])
    print("Provisioning burst followed by a crash of the storage element "
          "that took the writes:\n")
    print(format_table(
        ["replication mode", "mean write latency (ms)",
         "subscriptions provisioned", "provisioning writes lost"], rows))
    print("\nAsynchronous replication is fast but loses the un-shipped tail; "
          "dual-in-sequence and quorum lose nothing but pay one or more "
          "backbone round trips per provisioning transaction -- the exact "
          "trade-off the paper's section 5 walks the reader through.")


if __name__ == "__main__":
    main()
