"""Partition drill: what a backbone incident does to FEs and to provisioning.

Run with::

    python examples/partition_drill.py

The scenario reproduces section 4.1 of the paper interactively: a
multi-national UDR is serving front-end traffic and provisioning when the
German sites are cut off from the backbone for ten minutes.  The script
compares two policies:

* the paper's default (favour Consistency): provisioning writes for German
  subscribers fail for the whole incident and pile up manual interventions;
* the section 5 evolution (multi-master, favour Availability): the writes
  keep landing on reachable copies, and after the heal a consistency
  restoration pass merges the diverged views.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import PartitionPolicy, UDRConfig, UDRNetworkFunction
from repro.api import Read
from repro.metrics import format_table
from repro.net import NetworkPartition
from repro.provisioning import ChangeServices, ProvisioningSystem
from repro.subscriber import SubscriberGenerator


def drive(udr, generator):
    process = udr.sim.process(generator)
    udr.sim.run_until_triggered(process)
    return process.value


def run_drill(policy: PartitionPolicy):
    config = UDRConfig(partition_policy=policy, seed=99)
    udr = UDRNetworkFunction(config)
    udr.start()
    profiles = SubscriberGenerator(config.regions, seed=99).generate(90)
    udr.load_subscriber_base(profiles)

    german_subscribers = [p for p in profiles if p.home_region == "germany"]
    spain_site = udr.topology.site("spain-dc1")
    germany_site = udr.topology.site("germany-dc1")
    ps = ProvisioningSystem("ps-madrid", udr, spain_site)

    # The incident: Germany is cut off from the rest of the backbone.
    partition = NetworkPartition.splitting_regions(
        udr.topology, udr.topology.region("germany"))
    udr.network.apply_partition(partition)

    fe_session = udr.attach("drill-fe-germany", germany_site).session()
    fe_ok = fe_total = 0
    ps_ok = ps_total = 0
    for index, subscriber in enumerate(german_subscribers):
        # German front-ends keep reading their local copies...
        read = Read(subscriber.identities.imsi)
        response = drive(udr, fe_session.call(read))
        fe_total += 1
        fe_ok += int(response.ok)
        # ...while the PS in Spain tries to provision them across the cut.
        outcome = drive(udr, ps.provision(ChangeServices(
            subscriber, changes={"svcBarPremium": bool(index % 2)})))
        ps_total += 1
        ps_ok += int(outcome.succeeded)

    udr.network.heal_partition(partition)
    reports = udr.restore_consistency()
    conflicts = sum(report.conflicts_found for report in reports)
    return {
        "policy": policy.value,
        "fe_availability": fe_ok / fe_total if fe_total else 1.0,
        "ps_availability": ps_ok / ps_total if ps_total else 1.0,
        "manual_interventions": ps.manual_interventions,
        "conflicts_to_merge": conflicts,
    }


def main():
    rows = []
    for policy in (PartitionPolicy.PREFER_CONSISTENCY,
                   PartitionPolicy.PREFER_AVAILABILITY):
        outcome = run_drill(policy)
        rows.append([
            outcome["policy"],
            f"{outcome['fe_availability']:.2f}",
            f"{outcome['ps_availability']:.2f}",
            outcome["manual_interventions"],
            outcome["conflicts_to_merge"],
        ])
    print("Ten-minute backbone partition isolating Germany "
          "(provisioning driven from Spain):\n")
    print(format_table(
        ["partition policy", "FE availability", "PS availability",
         "manual interventions", "conflicts merged after heal"], rows))
    print("\nThe default policy protects consistency but fails provisioning "
          "(section 4.1); multi-master keeps provisioning alive at the price "
          "of a post-incident restoration run (section 5).")


if __name__ == "__main__":
    main()
