"""Replication tuning: the ship-linger budget's traffic/lag trade-off.

Run with::

    python examples/replication_tuning.py

Asynchronous replication decouples transaction latency from propagation, so
its knob -- how long committed records may wait before shipping to the
slaves -- trades *background* cost against *replica lag*.  The site-pair
:class:`~repro.replication.mux.ReplicationMux` (the default since the
event-driven replication PR) makes that trade-off explicit:

* it wakes **on commit** instead of polling every ``(partition, slave)``
  channel on a fixed cadence, so an idle deployment schedules zero
  replication events;
* every commit of one ship-linger window, across *all* partitions whose
  master and slave share a ``(site, site)`` link, rides **one** network
  transfer with a single framing charge;
* the linger budget (``UDRConfig.replication_interval``) bounds how stale
  a slave copy may be -- exactly the lag that becomes stale reads (E04)
  and lost transactions on a master crash (E05).

This example drives the same seeded commit stream through per-channel
polling and through the mux, then sweeps the ship-linger budget to show
shipments and freshness moving in opposite directions.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import UDRConfig, UDRNetworkFunction
from repro.metrics import format_table

COMMITS = 600
RATE = 400.0


def measure(replication_mux: bool, interval: float):
    """Drive a Poisson commit stream; return cost and freshness figures."""
    config = UDRConfig(seed=33, storage_elements_per_site=4,
                       replication_factor=3, replication_mux=replication_mux,
                       replication_interval=interval,
                       name=f"repl-{'mux' if replication_mux else 'poll'}"
                            f"-{interval:g}")
    udr = UDRNetworkFunction(config)
    udr.start()
    partitions = sorted(udr.replica_sets)
    lag_samples = []

    def committer():
        rng = udr.sim.rng("tuning.commits")
        for index in range(COMMITS):
            yield udr.sim.timeout(rng.expovariate(RATE))
            replica_set = udr.replica_sets[partitions[index % len(partitions)]]
            tx = replica_set.master_copy.transactions.begin()
            tx.write(f"rec:{index}", {"v": index})
            tx.commit(timestamp=udr.sim.now)

    def sampler():
        while True:
            yield udr.sim.timeout(0.01)
            lag_samples.append(sum(channel.lag().records
                                   for channel in udr.channels))

    process = udr.sim.process(committer())
    udr.sim.process(sampler())
    udr.sim.run_until_triggered(process, limit=3600.0)
    udr.sim.run_for(10 * interval)
    wakeups = (udr.replication_mux.wakeups if replication_mux
               else sum(channel.wakeups for channel in udr.channels))
    transfers = udr.network.stats.total_messages()
    mean_lag = sum(lag_samples) / len(lag_samples) if lag_samples else 0.0
    udr.stop()
    return wakeups, transfers, mean_lag


def main():
    print("Asynchronous replication: per-channel polling vs the site-pair "
          "mux\n")
    rows = []
    for mux, label in ((False, "per-channel polling"),
                       (True, "site-pair mux")):
        wakeups, transfers, mean_lag = measure(mux, interval=0.05)
        rows.append([label, wakeups, transfers, f"{mean_lag:.1f}"])
    print("same seeded commit stream, 24 channels over 6 site links, "
          "50 ms budget:")
    print(format_table(
        ["shipping mode", "wakeups", "transfers", "mean lag (records)"],
        rows))
    print()
    rows = []
    for interval in (0.01, 0.05, 0.2):
        wakeups, transfers, mean_lag = measure(True, interval)
        rows.append([f"{interval * 1000:.0f} ms", wakeups, transfers,
                     f"{mean_lag:.1f}"])
    print("ship-linger sweep (mux): budget vs replica lag:")
    print(format_table(
        ["ship-linger budget", "wakeups", "transfers",
         "mean lag (records)"], rows))
    print()
    print("Reading the tables: the mux ships the same records with a "
          "fraction of the wakeups and transfers because every link's "
          "streams share one shipment per window -- and because nothing "
          "at all is scheduled while nothing commits.  The ship-linger "
          "budget then moves cost and freshness in opposite directions: "
          "a long budget ships fat and rarely (cheap, but every record "
          "of the window is exposed to E04-style stale reads and "
          "E05-style loss until it ships), while shrinking the budget "
          "buys freshness only down to the backbone's own latency -- "
          "below that, shipments just queue behind the link (the 10 ms "
          "row pays 1.5x the transfers of the 50 ms row for no lag win). "
          "The default keeps the paper's 50 ms cadence: same freshness "
          "contract, none of the polling cost.")


if __name__ == "__main__":
    main()
