"""Client sessions and QoS: protecting signalling from a provisioning flood.

Run with::

    python examples/session_qos.py

Every workload enters the UDR through the session API: attach a named
client (``udr.attach``), open a session, issue typed operations
(``Read``/``Search``/``Write``/``Provision``) and collect response futures.
The per-session :class:`~repro.api.qos.QoSProfile` is the point of this
example: a bulk provisioning client carrying ``priority=BULK`` and a
``deadline_ticks`` budget floods the deployment while a signalling client
keeps issuing live reads -- with QoS the dispatcher answers the expired
flood ``TIME_LIMIT_EXCEEDED`` at wave formation (zero pipeline hops) and
signalling latency stays in the uncontended regime.  Experiment E18
measures the same scenario with its full sweep.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import Provision, QoSProfile, Read, Write
from repro.core import (
    ClientType,
    DispatchMode,
    Priority,
    UDRConfig,
    UDRNetworkFunction,
)
from repro.metrics import format_table
from repro.subscriber import SubscriberGenerator

SIGNALLING_OPS = 80
FLOOD_OPS = 400


def build(name):
    config = UDRConfig(seed=7, dispatch_mode=DispatchMode.DISPATCHER,
                       batch_linger_ticks=5, name=name)
    udr = UDRNetworkFunction(config)
    udr.start()
    profiles = SubscriberGenerator(config.regions, seed=7).generate(48)
    udr.load_subscriber_base(profiles)
    return udr, profiles


def drive(udr, generator):
    process = udr.sim.process(generator)
    udr.sim.run_until_triggered(process, limit=udr.sim.now + 3600.0)
    return process.value


def percentile(values, fraction):
    values = sorted(values)
    index = min(len(values) - 1, round(fraction * (len(values) - 1)))
    return values[index]


def run_flooded(flood_qos, label):
    """One signalling client + one flooding bulk client; returns stats."""
    udr, profiles = build(f"session-qos-{label}")
    signalling = udr.attach("hlr-fe", udr.topology.sites[0])
    bulk = udr.attach("bulk-ps", udr.topology.sites[0],
                      client_type=ClientType.PROVISIONING, qos=flood_qos)
    sig_session, bulk_session = signalling.session(), bulk.session()
    sig_futures, flood_futures = [], []

    def signalling_arrivals():
        rng = udr.sim.rng("qos.sig")
        for index in range(SIGNALLING_OPS):
            yield udr.sim.timeout(rng.expovariate(120.0))
            profile = profiles[index % len(profiles)]
            sig_futures.append(
                sig_session.submit(Read(profile.identities.imsi)))

    def flood_arrivals():
        rng = udr.sim.rng("qos.flood")
        for index in range(FLOOD_OPS):
            yield udr.sim.timeout(rng.expovariate(2000.0))
            profile = profiles[(index * 5) % len(profiles)]
            flood_futures.append(bulk_session.submit(
                Write(profile.identities.imsi,
                      {"svcBarPremium": bool(index % 2)})))

    sig_proc = udr.sim.process(signalling_arrivals())
    flood_proc = udr.sim.process(flood_arrivals())

    def drain():
        yield udr.sim.all_of([sig_proc, flood_proc])
        yield from sig_session.drain()
        yield from bulk_session.drain()

    drive(udr, drain())
    latencies = [future.latency * 1000.0 for future in sig_futures]
    expired = sum(1 for future in flood_futures
                  if future.result().result_code.name
                  == "TIME_LIMIT_EXCEEDED")
    return {
        "p50": percentile(latencies, 0.50),
        "p99": percentile(latencies, 0.99),
        "flood_expired": expired,
        "client_requests": udr.metrics.counter(
            "api.client.hlr-fe.requests"),
    }


def main():
    print("Typed sessions in three lines:")
    udr, profiles = build("session-qos-hello")
    client = udr.attach("demo-fe", udr.topology.sites[0])
    with client.session() as session:
        response = drive(udr, session.call(Read(
            profiles[0].identities.imsi, attributes=("msisdn",))))
        print(f"  Read -> {response.result_code.name}, "
              f"msisdn={response.entry['msisdn']}")
        created = drive(udr, session.call(Provision.create(
            {"imsi": "262079999000001", "msisdn": "+49999000001",
             "homeRegion": "germany", "subscriberStatus": "active"})))
        print(f"  Provision.create -> {created.result_code.name}")
        drive(udr, session.drain())

    print("\nNow the flood drill: 2000/s bulk writes vs 120/s signalling "
          "reads.\n")
    rows = []
    for label, qos in (
            ("no QoS (legacy behaviour)", None),
            ("bulk priority only", QoSProfile(priority=Priority.BULK)),
            ("bulk + 25-tick deadline",
             QoSProfile(priority=Priority.BULK, deadline_ticks=25))):
        stats = run_flooded(qos, label.split()[0] + str(len(rows)))
        rows.append([label, f"{stats['p50']:.1f}", f"{stats['p99']:.1f}",
                     stats["flood_expired"]])
    print(format_table(
        ["flood client QoS", "signalling p50 (ms)", "signalling p99 (ms)",
         "flood ops expired"], rows))
    print("\nReading the table: priority alone cannot shrink waves while "
          "they have spare capacity for flood writes; the deadline budget "
          "is what sheds the queued flood at wave formation (answered "
          "TIME_LIMIT_EXCEEDED, zero pipeline hops) and pulls signalling "
          "back to single-digit medians.  Per-client metrics "
          "(api.client.<name>.*) split every run by who issued the "
          "traffic.")


if __name__ == "__main__":
    main()
