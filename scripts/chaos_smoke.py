"""CI chaos smoke: seeded campaigns must run clean.

Usage::

    python scripts/chaos_smoke.py [seed ...]

Builds one membership-enabled deployment per seed, runs live signalling
traffic for the campaign window, injects the campaign's seeded fault
schedule (crashes, symmetric and one-way partitions, disasters), heals,
quiesces and asserts the invariant checker's verdict: zero split-brain
writes, zero acked writes lost, converged replicas and locators.  Exits
non-zero with the violating seed's report on any failure.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api.operations import Read, Write  # noqa: E402
from repro.core import ClientType, UDRConfig  # noqa: E402
from repro.core.config import MembershipPolicy  # noqa: E402
from repro.core.udr import UDRNetworkFunction  # noqa: E402
from repro.faults import run_campaigns  # noqa: E402
from repro.subscriber import SubscriberGenerator  # noqa: E402

DEFAULT_SEEDS = (1, 2, 3)
DURATION = 12.0
INCIDENTS = 4
QUIESCE = 3.0
SUBSCRIBERS = 24
TRAFFIC_RATE = 40.0


def build_deployment(seed):
    """A started membership-enabled UDR with campaign-bounded traffic."""
    config = UDRConfig(seed=seed, name="chaos-smoke",
                       membership=MembershipPolicy())
    udr = UDRNetworkFunction(config)
    udr.start()
    generator = SubscriberGenerator(config.regions, seed=seed)
    profiles = generator.generate(SUBSCRIBERS)
    udr.load_subscriber_base(profiles)
    sessions = [udr.attach(f"fe-{site.name}", site,
                           client_type=ClientType.APPLICATION_FE).session()
                for site in udr.topology.sites]

    def traffic():
        # Bounded to the campaign window: the quiesce phase must drain
        # replication, so the workload stops when the faults do.
        rng = udr.sim.rng("chaos.traffic")
        index = 0
        while udr.sim.now < DURATION:
            yield udr.sim.timeout(rng.expovariate(TRAFFIC_RATE))
            profile = profiles[index % len(profiles)]
            operation = (Write(profile.identities.imsi,
                               {"servingMsc": f"m-{index}"})
                         if index % 3 else Read(profile.identities.imsi))
            sessions[index % len(sessions)].submit(operation)
            index += 1

    udr.sim.process(traffic(), name="chaos:traffic")
    return udr


def main(argv):
    seeds = tuple(int(arg) for arg in argv[1:]) or DEFAULT_SEEDS
    reports = run_campaigns(build_deployment, seeds=seeds,
                            duration=DURATION, incidents=INCIDENTS,
                            quiesce=QUIESCE)
    failed = False
    for report in reports:
        print(report.summary())
        for description in report.incidents:
            print(f"    {description}")
        if not report.clean:
            failed = True
            for violation in report.violations:
                print(f"    VIOLATION {violation}")
    if failed:
        print("chaos smoke: FAILED")
        return 1
    print(f"chaos smoke: {len(reports)} campaigns clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
