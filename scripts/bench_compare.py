#!/usr/bin/env python
"""Compare two pytest-benchmark JSON files and fail on regressions.

Usage::

    python scripts/bench_compare.py BASELINE.json CANDIDATE.json \
        [--threshold 0.20] [--metric mean]

Benchmarks are matched by name; for each pair the relative change of the
chosen statistic (default: mean) is printed.  The exit status is non-zero
when any benchmark regressed by more than ``--threshold`` (default 20%),
so CI can gate merges on it.  Benchmarks present in only one file are
reported but do not fail the comparison -- unless they are named by
``--require`` (repeatable), which turns a missing candidate benchmark into
a failure (used to keep the e15 batch-throughput benchmark in the gate).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_benchmarks(path: Path) -> dict:
    """Map benchmark name -> stats dict from a pytest-benchmark JSON file."""
    with path.open() as handle:
        payload = json.load(handle)
    return {bench["name"]: bench["stats"] for bench in payload["benchmarks"]}


def compare(baseline: dict, candidate: dict, metric: str,
            threshold: float, required=()) -> int:
    missing = [name for name in required if name not in candidate]
    if missing:
        for name in missing:
            print(f"error: required benchmark {name!r} missing from the "
                  f"candidate run", file=sys.stderr)
        return 1
    regressions = 0
    shared = sorted(set(baseline) & set(candidate))
    if not shared:
        print("no benchmarks in common between the two files", file=sys.stderr)
        return 1
    width = max(len(name) for name in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'candidate':>12} "
          f"{'change':>9}  verdict")
    for name in shared:
        base = baseline[name][metric]
        cand = candidate[name][metric]
        change = (cand - base) / base if base else 0.0
        if change > threshold:
            verdict = f"REGRESSION (> {threshold:.0%})"
            regressions += 1
        elif change < 0:
            verdict = "improved"
        else:
            verdict = "ok"
        print(f"{name:<{width}}  {base:>11.6f}s  {cand:>11.6f}s "
              f"{change:>+8.1%}  {verdict}")
    for name in sorted(set(baseline) - set(candidate)):
        print(f"{name:<{width}}  only in baseline")
    for name in sorted(set(candidate) - set(baseline)):
        print(f"{name:<{width}}  only in candidate")
    return 1 if regressions else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path,
                        help="pytest-benchmark JSON of the reference run")
    parser.add_argument("candidate", type=Path,
                        help="pytest-benchmark JSON of the run under test")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="maximum tolerated relative slowdown "
                             "(default: 0.20 = 20%%)")
    parser.add_argument("--metric", default="mean",
                        choices=("mean", "median", "min", "max"),
                        help="which statistic to compare (default: mean)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="fail when NAME is absent from the candidate "
                             "run (repeatable)")
    args = parser.parse_args(argv)
    try:
        baseline = load_benchmarks(args.baseline)
        candidate = load_benchmarks(args.candidate)
    except (OSError, KeyError, ValueError) as error:
        print(f"error: cannot read benchmark data: {error}", file=sys.stderr)
        return 2
    return compare(baseline, candidate, args.metric, args.threshold,
                   required=args.require)


if __name__ == "__main__":
    sys.exit(main())
