#!/usr/bin/env python
"""Generate (or verify) the metric-name registry reprolint checks against.

Usage::

    python scripts/generate_metric_registry.py            # rewrite registry
    python scripts/generate_metric_registry.py --check    # fail on drift

The registry (``src/repro/analysis/metric_registry.txt``) is the pinned
universe of metric names the MET001/MET002 checker validates emission
sites against.  It is derived from three sources, merged and sorted:

1. the pinned CDC/reconciliation counter set in
   ``tests/test_metrics_stability.py`` (``PINNED_CDC_COUNTERS``) -- read
   via AST so generating the registry needs no test imports;
2. an AST sweep of every emission call site under the linted roots
   (string literals, and f-strings with interpolations wildcarded to
   ``*``);
3. the curated ``EXTRA_PATTERNS`` below for names built once and stored
   on handles (so no literal appears at the emission site).

The workflow mirrors the EXPERIMENTS.md freshness gate: CI runs
``--check`` and fails when the committed registry drifts from what the
tree emits, so adding a metric is a deliberate two-line diff (the call
site and the regenerated registry) while a *typo* at a call site fails
MET001 against the committed registry before it can be silently absorbed.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Set

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis.checkers.metric_registry import (  # noqa: E402
    DEFAULT_REGISTRY_FILE, EMISSION_METHODS)
from repro.analysis.engine import LintEngine  # noqa: E402

PINNED_SOURCE = ROOT / "tests" / "test_metrics_stability.py"

#: Names assembled once and stored on handles (e.g. the per-client counter
#: names precomputed in ``api/session.py``), so no literal reaches an
#: emission call for the sweep to find.
EXTRA_PATTERNS = (
    "api.client.*.requests",
    "api.client.*.rejected",
)

HEADER = """\
# The metric-name universe: every counter/gauge/histogram name the tree
# may emit.  One name (or *-wildcarded pattern for dynamic names) per
# line, sorted.  Checked by reprolint rules MET001/MET002.
#
# GENERATED -- regenerate with:
#     python scripts/generate_metric_registry.py
# CI verifies freshness with --check.  A name missing here is either a
# typo at the call site (fix the call site) or a new metric (regenerate
# and commit the one-line diff).  Never rename an existing metric: the
# benchmark gates and tests/test_metrics_stability.py pin them.
"""


def pinned_counters() -> Set[str]:
    """``PINNED_CDC_COUNTERS`` from the stability test, read via AST."""
    tree = ast.parse(PINNED_SOURCE.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and \
                    target.id == "PINNED_CDC_COUNTERS":
                value = ast.literal_eval(node.value)
                return set(value)
    raise SystemExit(
        f"PINNED_CDC_COUNTERS not found in {PINNED_SOURCE}")


def swept_names() -> Set[str]:
    """Every literal / f-string-skeleton name at an emission call site."""
    engine = LintEngine(ROOT, checkers=[])
    names: Set[str] = set()
    for path in engine.discover():
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:
            continue
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and node.args and
                    isinstance(node.func, ast.Attribute) and
                    node.func.attr in EMISSION_METHODS):
                continue
            names.update(_names_from(node.args[0]))
    return names


def _names_from(arg: ast.expr) -> Set[str]:
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return {arg.value} if arg.value else set()
    if isinstance(arg, ast.JoinedStr):
        return {"".join(
            value.value if isinstance(value, ast.Constant) else "*"
            for value in arg.values)}
    if isinstance(arg, ast.IfExp):
        return _names_from(arg.body) | _names_from(arg.orelse)
    return set()


def registry_body() -> str:
    names = pinned_counters() | swept_names() | set(EXTRA_PATTERNS)
    return HEADER + "".join(f"{name}\n" for name in sorted(names))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="fail when the committed registry drifts")
    args = parser.parse_args(argv)

    expected = registry_body()
    if args.check:
        current = DEFAULT_REGISTRY_FILE.read_text(encoding="utf-8") \
            if DEFAULT_REGISTRY_FILE.exists() else ""
        if current != expected:
            print("metric registry drift: "
                  f"{DEFAULT_REGISTRY_FILE.relative_to(ROOT)} does not "
                  "match the tree.\nRegenerate with: "
                  "python scripts/generate_metric_registry.py",
                  file=sys.stderr)
            return 1
        print("metric registry is fresh "
              f"({len(expected.splitlines())} lines)")
        return 0

    DEFAULT_REGISTRY_FILE.write_text(expected, encoding="utf-8")
    print(f"wrote {DEFAULT_REGISTRY_FILE.relative_to(ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
