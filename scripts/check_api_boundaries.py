#!/usr/bin/env python
"""Fail when experiments or examples construct raw LDAP requests.

Usage::

    python scripts/check_api_boundaries.py

The session API (``repro.api``) is the single front door: experiments and
examples issue typed operations (``Read``/``Search``/``Write``/
``Provision``), never hand-built ``*Request`` objects or the deprecated
``udr.execute``/``udr.submit``/``udr.call``/``udr.execute_batch`` shims.

This script is a thin shim over the reprolint API-boundary checker
(``repro.analysis.checkers.api_boundary``, rules API001/API002) so CI has
exactly one source of truth for the boundary.  The grep it replaced missed
aliased imports and matched comments; the AST checker resolves import
origins and call receivers.  The runtime backstop is unchanged:
``tests/test_experiment_api_hygiene.py`` runs representative experiments
with every shim instrumented and asserts ``api.legacy_calls == 0``.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis import LintEngine  # noqa: E402  (path bootstrap above)
from repro.analysis.checkers import ApiBoundaryChecker  # noqa: E402

CHECKED_DIRS = ("src/repro/experiments", "examples")


def main() -> int:
    engine = LintEngine(ROOT, checkers=[ApiBoundaryChecker()])
    report = engine.run(paths=[ROOT / name for name in CHECKED_DIRS
                               if (ROOT / name).is_dir()])
    for finding in report.findings:
        print(finding.render(), file=sys.stderr)
    if report.findings:
        print(f"\n{len(report.findings)} violation(s): experiments and "
              f"examples must issue typed repro.api operations (Read/"
              f"Search/Write/Provision) through sessions -- not hand-built "
              f"LDAP requests or the deprecated udr.execute/submit/call/"
              f"execute_batch shims.", file=sys.stderr)
        return 1
    print("api boundary clean: no raw LDAP requests or legacy entry points "
          f"in {', '.join(CHECKED_DIRS)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
