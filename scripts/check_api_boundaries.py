#!/usr/bin/env python
"""Fail when experiments or examples construct raw LDAP requests.

Usage::

    python scripts/check_api_boundaries.py

The session API (``repro.api``) is the single front door: experiments and
examples issue typed operations (``Read``/``Search``/``Write``/
``Provision``), and the LDAP encoding lives only in the API layer and the
deprecation shims.  This check greps ``src/repro/experiments/`` and
``examples/`` for two kinds of erosion and exits non-zero on any hit, so
the boundary cannot decay silently.  CI runs it next to the tier-1 suite.

* direct ``*Request(...)`` construction (hand-built LDAP encoding);
* calls into the deprecated ``udr.execute``/``udr.submit``/``udr.call``/
  ``udr.execute_batch`` shims -- experiment code rides sessions
  (``ClientPool``) or reaches the core layers (``udr.pipeline``,
  ``udr.dispatcher``) explicitly, and ``api.legacy_calls`` stays zero
  (``tests/test_experiment_api_hygiene.py`` asserts it at runtime).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
CHECKED_DIRS = ("src/repro/experiments", "examples")
#: Raw-request constructors that must not appear outside the API layer and
#: the shims.  Word-boundary + open paren, so type annotations and imports
#: (which are fine) do not match.
FORBIDDEN = re.compile(
    r"\b(SearchRequest|ModifyRequest|AddRequest|DeleteRequest|LdapRequest)"
    r"\s*\(")
#: The deprecated pre-session entry points.  Call-shaped (open paren), so
#: docstrings and comments explaining the migration do not match.
LEGACY_SHIMS = re.compile(
    r"\budr\.(execute|submit|call|execute_batch)\s*\(")


def violations():
    for directory in CHECKED_DIRS:
        for path in sorted((ROOT / directory).rglob("*.py")):
            for number, line in enumerate(
                    path.read_text().splitlines(), start=1):
                if FORBIDDEN.search(line):
                    yield (path.relative_to(ROOT), number, line.strip(),
                           "raw LDAP request construction")
                if LEGACY_SHIMS.search(line):
                    yield (path.relative_to(ROOT), number, line.strip(),
                           "deprecated legacy entry point")


def main() -> int:
    found = list(violations())
    for path, number, line, kind in found:
        print(f"{path}:{number}: {kind}: {line}", file=sys.stderr)
    if found:
        print(f"\n{len(found)} violation(s): experiments and examples must "
              f"issue typed repro.api operations (Read/Search/Write/"
              f"Provision) through sessions -- not hand-built LDAP requests "
              f"or the deprecated udr.execute/submit/call/execute_batch "
              f"shims.", file=sys.stderr)
        return 1
    print("api boundary clean: no raw LDAP requests or legacy entry points "
          f"in {', '.join(CHECKED_DIRS)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
