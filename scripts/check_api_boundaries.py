#!/usr/bin/env python
"""Fail when experiments or examples construct raw LDAP requests.

Usage::

    python scripts/check_api_boundaries.py

The session API (``repro.api``) is the single front door: experiments and
examples issue typed operations (``Read``/``Search``/``Write``/
``Provision``), and the LDAP encoding lives only in the API layer and the
deprecation shims.  This check greps ``src/repro/experiments/`` and
``examples/`` for direct ``*Request(...)`` construction and exits non-zero
on any hit, so the boundary cannot erode silently.  CI runs it next to the
tier-1 suite.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
CHECKED_DIRS = ("src/repro/experiments", "examples")
#: Raw-request constructors that must not appear outside the API layer and
#: the shims.  Word-boundary + open paren, so type annotations and imports
#: (which are fine) do not match.
FORBIDDEN = re.compile(
    r"\b(SearchRequest|ModifyRequest|AddRequest|DeleteRequest|LdapRequest)"
    r"\s*\(")


def violations():
    for directory in CHECKED_DIRS:
        for path in sorted((ROOT / directory).rglob("*.py")):
            for number, line in enumerate(
                    path.read_text().splitlines(), start=1):
                if FORBIDDEN.search(line):
                    yield path.relative_to(ROOT), number, line.strip()


def main() -> int:
    found = list(violations())
    for path, number, line in found:
        print(f"{path}:{number}: raw LDAP request construction: {line}",
              file=sys.stderr)
    if found:
        print(f"\n{len(found)} violation(s): experiments and examples must "
              f"issue typed repro.api operations (Read/Search/Write/"
              f"Provision) through sessions instead of hand-building LDAP "
              f"requests.", file=sys.stderr)
        return 1
    print("api boundary clean: no raw LDAP request construction in "
          f"{', '.join(CHECKED_DIRS)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
