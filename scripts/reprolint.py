#!/usr/bin/env python
"""reprolint CLI: AST-based invariant linting, wired into the CI lint job.

Usage::

    python scripts/reprolint.py                     # lint the whole tree
    python scripts/reprolint.py --baseline          # honour the committed
                                                    # .reprolint-baseline
    python scripts/reprolint.py src/repro/storage   # lint a subtree
    python scripts/reprolint.py --write-baseline    # burn in the current
                                                    # findings
    python scripts/reprolint.py --list-rules        # rule catalogue

Exit codes: 0 clean, 1 findings (or unjustified inline suppressions under
``src/repro/``), 2 configuration error.

The checkers and their rationale live in ``src/repro/analysis/`` (see
ARCHITECTURE.md, "Static analysis & invariants").  Pre-existing findings
can be burned down incrementally: ``--write-baseline`` records them in
``.reprolint-baseline`` and ``--baseline`` runs report-but-don't-fail for
exactly those keys, so a new checker never needs a flag-day sweep -- while
anything *new* still fails CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis import (  # noqa: E402  (path bootstrap above)
    LintEngine, format_baseline, load_baseline)
from repro.analysis.checkers import rule_catalogue  # noqa: E402

#: Resolved against ``--root`` at run time, so scratch-tree runs never
#: touch the checkout's committed baseline.
DEFAULT_BASELINE = Path(".reprolint-baseline")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint (default: "
                             "src scripts benchmarks examples)")
    parser.add_argument("--root", type=Path, default=ROOT,
                        help="repository root (default: this checkout)")
    parser.add_argument("--baseline", nargs="?", type=Path,
                        const=DEFAULT_BASELINE, default=None,
                        metavar="FILE",
                        help="suppress findings recorded in FILE "
                             "(default file: .reprolint-baseline)")
    parser.add_argument("--write-baseline", nargs="?", type=Path,
                        const=DEFAULT_BASELINE, default=None,
                        metavar="FILE",
                        help="record current findings as the new baseline "
                             "and exit 0")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule, description in sorted(rule_catalogue().items()):
            print(f"{rule}  {description}")
        return 0

    root = args.root.resolve()
    try:
        engine = LintEngine(root)
    except (OSError, ValueError) as error:
        print(f"reprolint: configuration error: {error}", file=sys.stderr)
        return 2

    baseline = set()
    if args.baseline is not None:
        baseline_path = args.baseline if args.baseline.is_absolute() \
            else root / args.baseline
        baseline = load_baseline(baseline_path)

    report = engine.run(paths=args.paths or None, baseline=baseline)

    if args.write_baseline is not None:
        target = args.write_baseline if args.write_baseline.is_absolute() \
            else root / args.write_baseline
        target.write_text(format_baseline(report.findings),
                          encoding="utf-8")
        print(f"baseline written: {target} "
              f"({len(report.findings)} finding(s) burned in)")
        return 0

    # Unjustified inline suppressions inside src/repro/ are themselves a
    # failure: the escape hatch must carry a reason (`-- why`) to exist.
    unjustified = [s for s in report.unjustified_suppressions()
                   if s.path.startswith("src/repro/")]

    if args.json:
        print(json.dumps({
            "findings": [vars(f) for f in report.findings],
            "baselined": [vars(f) for f in report.baselined],
            "suppressed": [vars(f) for f in report.suppressed],
            "suppressions": [
                {"path": s.path, "line": s.line, "rules": list(s.rules),
                 "justified": s.justified} for s in report.suppressions],
            "files_checked": report.files_checked,
        }, indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        for suppression in report.suppressions:
            print(f"note: {suppression.render()}")
        for suppression in unjustified:
            print(f"{suppression.path}:{suppression.line}: suppression "
                  f"without a `-- justification` trailer", file=sys.stderr)
        print(report.summary())

    return 1 if (report.findings or unjustified) else 0


if __name__ == "__main__":
    sys.exit(main())
