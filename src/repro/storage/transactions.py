"""Transactions local to one storage element (the paper's ACID unit).

The paper guarantees ACID only for transactions that touch a single storage
element, at READ_COMMITTED isolation; transactions spanning elements are the
client's problem (READ_UNCOMMITTED at best).  This module implements the
intra-element part: a :class:`TransactionManager` per partition copy, with
no-wait write locking, MVCC reads at four isolation levels, and commit records
appended to the copy's write-ahead log.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.storage.engine import RecordStore
from repro.storage.errors import (
    FencedError,
    RecordNotFound,
    TransactionStateError,
    WriteConflict,
)
from repro.storage.isolation import IsolationLevel
from repro.storage.locks import LockManager, LockMode
from repro.storage.records import TOMBSTONE, merge_attributes
from repro.storage.records import RecordVersion
from repro.storage.wal import LogRecord, WriteAheadLog, WriteOperation


class TransactionState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Savepoint:
    """A marker inside an active transaction that writes can roll back to.

    Used by multi-record transactions (coalesced batch writes): each record
    takes a savepoint before applying, and a failing record rolls back to it
    so only *its* writes are discarded while the surviving records commit
    together.  Locks taken after the savepoint are kept until the
    transaction completes -- rollback only undoes data, never lock
    ownership.
    """

    transaction_id: int
    writes: Dict[str, Any]


class Transaction:
    """A unit of work against one partition copy.

    Obtained from :meth:`TransactionManager.begin`; not constructed directly.
    Reads honour the isolation level, writes take exclusive no-wait locks,
    and :meth:`commit` atomically installs all writes and appends one commit
    log record.
    """

    def __init__(self, manager: "TransactionManager", transaction_id: int,
                 isolation: IsolationLevel, snapshot_seq: int):
        self._manager = manager
        self.transaction_id = transaction_id
        self.isolation = isolation
        self.snapshot_seq = snapshot_seq
        self.state = TransactionState.ACTIVE
        self._writes: Dict[str, Any] = {}
        self._read_keys: List[str] = []

    # -- helpers -------------------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self.state is TransactionState.ACTIVE

    @property
    def is_read_only(self) -> bool:
        return not self._writes

    @property
    def write_keys(self) -> List[str]:
        return list(self._writes)

    def _require_active(self) -> None:
        if not self.is_active:
            raise TransactionStateError(
                f"transaction {self.transaction_id} is {self.state.value}")

    # -- reads ----------------------------------------------------------------

    def read(self, key: str) -> Any:
        """Read a record according to the transaction's isolation level."""
        self._require_active()
        self._read_keys.append(key)
        if key in self._writes:
            value = self._writes[key]
            if value is TOMBSTONE:
                raise RecordNotFound(key)
            return value
        store = self._manager.store
        if self.isolation.takes_read_locks:
            self._manager.locks.acquire(self.transaction_id, key,
                                        LockMode.SHARED)
        if self.isolation.allows_dirty_reads:
            dirty = store.dirty_value(key)
            if dirty is not None:
                if dirty is TOMBSTONE:
                    raise RecordNotFound(key)
                return dirty
            return store.read_committed(key)
        if self.isolation.uses_snapshot:
            return store.as_of(key, self.snapshot_seq)
        return store.read_committed(key)

    def read_or_default(self, key: str, default: Any = None) -> Any:
        """Like :meth:`read` but returning ``default`` for missing records."""
        try:
            return self.read(key)
        except RecordNotFound:
            return default

    def exists(self, key: str) -> bool:
        try:
            self.read(key)
            return True
        except RecordNotFound:
            return False

    # -- writes ----------------------------------------------------------------

    def write(self, key: str, value: Any) -> None:
        """Write (create or replace) a record."""
        self._require_active()
        if self._manager.fenced:
            self._manager.fenced_rejections += 1
            self.abort(reason="copy is fenced")
            raise FencedError(self._manager.name, self._manager.epoch,
                              reason=self._manager.fence_reason)
        try:
            self._manager.locks.acquire(self.transaction_id, key,
                                        LockMode.EXCLUSIVE)
        except WriteConflict:
            self.abort(reason=f"write conflict on {key!r}")
            raise
        self._writes[key] = value
        self._manager.store.register_dirty(self.transaction_id, key, value)

    def modify(self, key: str, changes: Mapping[str, Any]) -> Dict[str, Any]:
        """Read-modify-write of an attribute map; returns the new value."""
        current = self.read_or_default(key, default={})
        if not isinstance(current, Mapping):
            raise TypeError(f"record {key!r} is not an attribute map")
        updated = merge_attributes(dict(current), changes)
        self.write(key, updated)
        return updated

    def delete(self, key: str) -> None:
        """Delete a record (writes a tombstone version)."""
        self.write(key, TOMBSTONE)

    # -- savepoints ---------------------------------------------------------------

    def savepoint(self) -> Savepoint:
        """Mark the current write set; see :class:`Savepoint`."""
        self._require_active()
        return Savepoint(transaction_id=self.transaction_id,
                         writes=dict(self._writes))

    def rollback_to(self, savepoint: Savepoint) -> None:
        """Discard every write made after ``savepoint`` was taken.

        Dirty registrations of the rolled-back keys are cleared (re-registered
        for keys the savepoint still holds); locks stay with the transaction.
        """
        self._require_active()
        if savepoint.transaction_id != self.transaction_id:
            raise TransactionStateError(
                f"savepoint belongs to transaction "
                f"{savepoint.transaction_id}, not {self.transaction_id}")
        rolled_back = [key for key in self._writes
                       if key not in savepoint.writes]
        self._manager.store.clear_dirty(self.transaction_id, rolled_back)
        self._writes = dict(savepoint.writes)
        for key, value in self._writes.items():
            self._manager.store.register_dirty(self.transaction_id, key,
                                               value)

    # -- completion ---------------------------------------------------------------

    def commit(self, timestamp: float = 0.0) -> Optional[LogRecord]:
        """Atomically install all writes; returns the commit log record.

        Read-only transactions return ``None`` (nothing to log or replicate).
        """
        self._require_active()
        if self._writes and self._manager.fenced:
            # The membership plane fenced this copy while the transaction
            # was in flight: the deposed master must not durably commit.
            self._manager.fenced_rejections += 1
            self.abort(reason="copy fenced before commit")
            raise FencedError(self._manager.name, self._manager.epoch,
                              reason=self._manager.fence_reason)
        record = self._manager._commit(self, timestamp=timestamp)
        self.state = TransactionState.COMMITTED
        return record

    def abort(self, reason: str = "") -> None:
        """Discard all writes and release locks."""
        if self.state is TransactionState.ABORTED:
            return
        self._require_active()
        self._manager._abort(self, reason=reason)
        self.state = TransactionState.ABORTED

    def __repr__(self) -> str:
        return (f"<Transaction {self.transaction_id} {self.state.value} "
                f"isolation={self.isolation.value} writes={len(self._writes)}>")


class TransactionManager:
    """Creates and completes transactions for one partition copy."""

    def __init__(self, store: RecordStore, wal: WriteAheadLog,
                 name: str = "copy",
                 default_isolation: IsolationLevel = IsolationLevel.READ_COMMITTED):
        self.store = store
        self.wal = wal
        self.name = name
        self.default_isolation = default_isolation
        self.locks = LockManager()
        self._next_transaction_id = 1
        self._next_commit_seq = 1
        self.commits = 0
        self.aborts = 0
        self.read_only_commits = 0
        #: Promotion epoch stamped into this copy's commits (0 until the
        #: membership plane performs a promotion involving this copy).
        self.epoch = 0
        #: While fenced, write transactions are rejected with
        #: :class:`~repro.storage.errors.FencedError` (reads still serve).
        self.fenced = False
        self.fence_reason = "fenced"
        self.fenced_rejections = 0

    # -- epoch fencing ---------------------------------------------------------

    def promote_epoch(self, epoch: int) -> None:
        """This copy is the master of ``epoch``: stamp commits, lift fences."""
        if epoch < self.epoch:
            raise ValueError(
                f"epoch cannot move backwards ({epoch} < {self.epoch})")
        self.epoch = epoch
        self.fenced = False
        self.fence_reason = "fenced"

    def fence(self, epoch: int, reason: str = "deposed by promotion") -> None:
        """A newer epoch deposed this copy: reject its in-flight writes."""
        self.epoch = max(self.epoch, epoch)
        self.fenced = True
        self.fence_reason = reason

    def self_fence(self, reason: str = "lease lost") -> None:
        """The copy lost quorum contact and fences itself pre-emptively."""
        self.fenced = True
        self.fence_reason = reason

    def unfence(self) -> None:
        """Lift a self-imposed fence (quorum contact regained, same epoch)."""
        self.fenced = False
        self.fence_reason = "fenced"

    # -- lifecycle ------------------------------------------------------------

    def begin(self, isolation: Optional[IsolationLevel] = None) -> Transaction:
        """Start a new transaction at the given (or default) isolation level."""
        isolation = isolation or self.default_isolation
        transaction = Transaction(
            manager=self,
            transaction_id=self._next_transaction_id,
            isolation=isolation,
            snapshot_seq=self.store.last_applied_seq,
        )
        self._next_transaction_id += 1
        return transaction

    def run(self, body: Callable[[Transaction], Any],
            isolation: Optional[IsolationLevel] = None,
            timestamp: float = 0.0) -> Any:
        """Run ``body(transaction)`` and commit; aborts and re-raises on error."""
        transaction = self.begin(isolation)
        try:
            result = body(transaction)
        except BaseException:
            if transaction.is_active:
                transaction.abort(reason="exception in transaction body")
            raise
        transaction.commit(timestamp=timestamp)
        return result

    def _commit(self, transaction: Transaction,
                timestamp: float = 0.0) -> Optional[LogRecord]:
        writes = transaction._writes
        try:
            if not writes:
                self.read_only_commits += 1
                self.commits += 1
                return None
            commit_seq = self._next_commit_seq
            self._next_commit_seq += 1
            operations = tuple(WriteOperation(key, value)
                               for key, value in writes.items())
            record = self.wal.append(
                transaction_id=transaction.transaction_id,
                commit_seq=commit_seq,
                operations=operations,
                origin=self.name,
                timestamp=timestamp,
                epoch=self.epoch,
            )
            for operation in operations:
                self.store.apply_version(RecordVersion(
                    key=operation.key,
                    value=operation.value,
                    commit_seq=commit_seq,
                    transaction_id=transaction.transaction_id,
                    origin=self.name,
                    epoch=self.epoch,
                ))
            self.commits += 1
            return record
        finally:
            self.store.clear_dirty(transaction.transaction_id, list(writes))
            self.locks.release_all(transaction.transaction_id)

    def _abort(self, transaction: Transaction, reason: str = "") -> None:
        self.aborts += 1
        self.store.clear_dirty(transaction.transaction_id,
                               transaction.write_keys)
        self.locks.release_all(transaction.transaction_id)

    # -- replication apply -------------------------------------------------------

    def apply_log_record(self, record: LogRecord) -> LogRecord:
        """Apply a master's commit record to this (slave) copy.

        The master's commit sequence number is preserved, which is the
        mechanism that gives every slave exactly the master's serialisation
        order (section 3.2 of the paper).
        """
        for operation in record.operations:
            self.store.apply_version(RecordVersion(
                key=operation.key,
                value=operation.value,
                commit_seq=record.commit_seq,
                transaction_id=record.transaction_id,
                origin=record.origin,
                epoch=record.epoch,
            ))
        self._next_commit_seq = max(self._next_commit_seq,
                                    record.commit_seq + 1)
        return self.wal.append_record(record)

    @property
    def last_commit_seq(self) -> int:
        return self._next_commit_seq - 1

    def __repr__(self) -> str:
        return (f"<TransactionManager {self.name!r} commits={self.commits} "
                f"aborts={self.aborts}>")
