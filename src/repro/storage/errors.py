"""Exceptions raised by the storage element substrate."""


class StorageError(Exception):
    """Base class for storage-level failures."""


class RecordNotFound(StorageError, KeyError):
    """A read addressed a key that holds no committed record."""

    def __init__(self, key):
        super().__init__(f"no record for key {key!r}")
        self.key = key


class WriteConflict(StorageError):
    """Two concurrent transactions tried to write the same key.

    The storage element resolves write/write conflicts by aborting the later
    writer immediately (no-wait locking), which keeps reads fast -- the
    behaviour the paper's READ_COMMITTED choice is meant to protect.
    """

    def __init__(self, key, holder, requester):
        super().__init__(
            f"write conflict on {key!r}: held by transaction {holder}, "
            f"requested by transaction {requester}")
        self.key = key
        self.holder = holder
        self.requester = requester


class TransactionAborted(StorageError):
    """The transaction was aborted and cannot be used any further."""

    def __init__(self, transaction_id, reason=""):
        message = f"transaction {transaction_id} aborted"
        if reason:
            message = f"{message}: {reason}"
        super().__init__(message)
        self.transaction_id = transaction_id
        self.reason = reason


class TransactionStateError(StorageError):
    """An operation was attempted on a finished (committed/aborted) transaction."""


class IsolationError(StorageError):
    """An operation is not permitted under the transaction's isolation level."""


class StorageElementUnavailable(StorageError):
    """The storage element is down (crashed, failed over, or isolated)."""

    def __init__(self, element_name, reason="unavailable"):
        super().__init__(f"storage element {element_name!r} is {reason}")
        self.element_name = element_name
        self.reason = reason


class FencedError(StorageError):
    """A write reached a copy fenced at a newer epoch.

    Raised by the transaction manager when the membership plane has deposed
    this copy's mastership (a newer epoch exists, or the copy self-fenced
    after losing quorum contact): the in-flight write must not commit here.
    The pipeline maps it to the ``FENCED`` result code so the retry stage
    re-locates and lands the write on the new master.
    """

    def __init__(self, copy_name, epoch, reason="fenced"):
        super().__init__(
            f"copy {copy_name!r} is {reason} at epoch {epoch}")
        self.copy_name = copy_name
        self.epoch = epoch
        self.reason = reason
