"""The in-RAM multi-version record store backing a partition copy.

Every committed write creates a new :class:`~repro.storage.records.RecordVersion`
tagged with the commit sequence number; the version chain supports committed
reads, snapshot reads, staleness measurement (how many versions behind a
slave copy is) and multi-master conflict detection (divergent chains).

Only the *latest* version of each record counts towards RAM usage: old
versions exist for analysis and would be garbage-collected by a real engine.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.storage.errors import RecordNotFound
from repro.storage.records import TOMBSTONE, RecordVersion, record_size


class RecordStore:
    """MVCC key -> versioned record store for one partition copy."""

    def __init__(self, name: str = "store"):
        self.name = name
        self._versions: Dict[str, List[RecordVersion]] = {}
        self._dirty: Dict[str, Dict[int, Any]] = {}
        self._live_bytes = 0
        self._last_applied_seq = 0
        self._last_applied_epoch = 0

    # -- committed state --------------------------------------------------------

    @property
    def last_applied_seq(self) -> int:
        """Highest commit sequence number applied to this copy."""
        return self._last_applied_seq

    @property
    def last_applied_epoch(self) -> int:
        """Promotion epoch of the newest version applied to this copy."""
        return self._last_applied_epoch

    @property
    def last_applied_position(self) -> tuple:
        """Recency watermark ordered across promotion epochs."""
        return (self._last_applied_epoch, self._last_applied_seq)

    def apply_version(self, version: RecordVersion) -> None:
        """Install a committed version (from a local commit or replication)."""
        chain = self._versions.setdefault(version.key, [])
        previous = chain[-1] if chain else None
        chain.append(version)
        # The watermark orders across promotion epochs: a new master's
        # commit numbering can overlap the deposed master's unshipped tail,
        # so (epoch, seq) -- not seq alone -- defines recency.
        if version.position > self.last_applied_position:
            self._last_applied_epoch = version.epoch
            self._last_applied_seq = version.commit_seq
        # RAM accounting: replace the previous latest version's footprint.
        if previous is not None and not previous.is_delete:
            self._live_bytes -= previous.size()
        if not version.is_delete:
            self._live_bytes += version.size()

    def latest(self, key: str) -> Optional[RecordVersion]:
        """Latest committed version of ``key`` (may be a tombstone), or None."""
        chain = self._versions.get(key)
        return chain[-1] if chain else None

    def read_committed(self, key: str) -> Any:
        """Value of the latest committed, non-deleted version of ``key``."""
        version = self.latest(key)
        if version is None or version.is_delete:
            raise RecordNotFound(key)
        return version.value

    def get(self, key: str, default: Any = None) -> Any:
        """Like :meth:`read_committed` but returning ``default`` when absent."""
        version = self.latest(key)
        if version is None or version.is_delete:
            return default
        return version.value

    def as_of(self, key: str, commit_seq: int) -> Any:
        """Value of ``key`` as of a commit sequence number (snapshot read)."""
        chain = self._versions.get(key, [])
        chosen = None
        for version in chain:
            if version.commit_seq <= commit_seq:
                chosen = version
            else:
                break
        if chosen is None or chosen.is_delete:
            raise RecordNotFound(key)
        return chosen.value

    def versions(self, key: str) -> List[RecordVersion]:
        """Full committed version chain of ``key`` (oldest first)."""
        return list(self._versions.get(key, []))

    def contains(self, key: str) -> bool:
        version = self.latest(key)
        return version is not None and not version.is_delete

    def keys(self) -> Iterable[str]:
        """Keys with a live (non-deleted) committed record."""
        for key, chain in self._versions.items():
            if chain and not chain[-1].is_delete:
                yield key

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    @property
    def live_bytes(self) -> int:
        """Approximate RAM used by the latest versions of live records."""
        return self._live_bytes

    # -- uncommitted (dirty) state ----------------------------------------------

    def register_dirty(self, transaction_id: int, key: str, value: Any) -> None:
        """Expose an uncommitted write (READ_UNCOMMITTED visibility)."""
        self._dirty.setdefault(key, {})[transaction_id] = value

    def clear_dirty(self, transaction_id: int, keys: Iterable[str]) -> None:
        for key in keys:
            writers = self._dirty.get(key)
            if not writers:
                continue
            writers.pop(transaction_id, None)
            if not writers:
                del self._dirty[key]

    def dirty_value(self, key: str) -> Optional[Any]:
        """Most recently registered uncommitted value for ``key``, if any."""
        writers = self._dirty.get(key)
        if not writers:
            return None
        # Later registrations win; dict preserves insertion order.
        return list(writers.values())[-1]

    # -- snapshots (checkpoint / recovery) ---------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Copy of the committed live state, used by checkpointing."""
        return {key: self.read_committed(key) for key in self.keys()}

    def restore(self, snapshot: Dict[str, Any], commit_seq: int) -> None:
        """Replace the whole store with a checkpoint image (crash recovery).

        All version history and dirty state is discarded; the restored
        records carry the checkpoint's ``commit_seq``.
        """
        self._versions.clear()
        self._dirty.clear()
        self._live_bytes = 0
        self._last_applied_seq = 0
        self._last_applied_epoch = 0
        for key, value in snapshot.items():
            self.apply_version(RecordVersion(
                key=key, value=value, commit_seq=commit_seq,
                transaction_id=0, origin=f"{self.name}:restore"))
        self._last_applied_seq = commit_seq

    # -- introspection -------------------------------------------------------------

    def estimated_average_record_size(self) -> float:
        """Mean live record size in bytes (0.0 when empty)."""
        count = len(self)
        if count == 0:
            return 0.0
        return self._live_bytes / count

    def __repr__(self) -> str:
        return (f"<RecordStore {self.name!r} records={len(self)} "
                f"bytes={self._live_bytes}>")


def staleness(master: RecordStore, slave: RecordStore) -> int:
    """How many commits the slave copy lags behind the master copy."""
    return max(0, master.last_applied_seq - slave.last_applied_seq)
