"""Record values, versions and size accounting.

Records are attribute maps (LDAP-entry-like dictionaries keyed by attribute
name).  The store keeps every committed version of a record, tagged with the
commit sequence number that created it, which is what makes snapshot reads,
staleness measurement and multi-master conflict detection possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional


class _Tombstone:
    """Sentinel marking a deleted record version."""

    _instance: Optional["_Tombstone"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<TOMBSTONE>"

    def __bool__(self) -> bool:
        return False


TOMBSTONE = _Tombstone()
"""Value stored for a deleted record (so deletions replicate like writes)."""


@dataclass(frozen=True)
class RecordVersion:
    """One committed version of a record.

    Attributes
    ----------
    key:
        The record's primary key within its data partition.
    value:
        The attribute map, or :data:`TOMBSTONE` when this version is a delete.
    commit_seq:
        The commit sequence number (monotonically increasing per partition
        copy) that created this version.
    transaction_id:
        Identifier of the committing transaction (for audit/conflict reports).
    origin:
        Name of the replica where the write was originally accepted; used by
        multi-master conflict detection to distinguish divergent histories.
    epoch:
        Promotion epoch of the mastership that committed this version
        (0 until the membership plane performs its first promotion).
        Version recency is ordered by ``(epoch, commit_seq)`` so a new
        master's commits supersede a deposed master's unshipped tail even
        when their sequence numbers overlap.
    """

    key: str
    value: Any
    commit_seq: int
    transaction_id: int
    origin: str = ""
    epoch: int = 0

    @property
    def position(self) -> tuple:
        """Recency ordering key across promotion epochs."""
        return (self.epoch, self.commit_seq)

    @property
    def is_delete(self) -> bool:
        return self.value is TOMBSTONE

    def size(self) -> int:
        return record_size(self.value)


def record_size(value: Any) -> int:
    """Approximate in-RAM size, in bytes, of a record value.

    The estimate only needs to be consistent, not exact: the capacity planner
    (section 3.5 of the paper) works from an *average subscriber profile
    size*, and this function is what defines that average for synthetic
    profiles.
    """
    if value is TOMBSTONE or value is None:
        return 16
    if isinstance(value, Mapping):
        total = 64
        for attribute, attribute_value in value.items():
            total += 24 + len(str(attribute)) + _value_size(attribute_value)
        return total
    return 24 + _value_size(value)


def _value_size(value: Any) -> int:
    if isinstance(value, str):
        return 49 + len(value)
    if isinstance(value, bytes):
        return 33 + len(value)
    if isinstance(value, (int, float, bool)):
        return 28
    if isinstance(value, (list, tuple, set, frozenset)):
        return 56 + sum(_value_size(item) for item in value)
    if isinstance(value, Mapping):
        return record_size(value)
    return 48


def merge_attributes(base: Optional[Dict[str, Any]],
                     changes: Mapping[str, Any]) -> Dict[str, Any]:
    """Return ``base`` updated with ``changes`` (None values delete attributes).

    This is the record-level "modify" primitive used by LDAP Modify
    operations and by attribute-level conflict merging.
    """
    result: Dict[str, Any] = dict(base or {})
    for attribute, attribute_value in changes.items():
        if attribute_value is None:
            result.pop(attribute, None)
        else:
            result[attribute] = attribute_value
    return result
