"""Transaction isolation levels (ISO/IEC 9075, the paper's reference [13]).

The paper fixes the isolation level of intra-SE transactions at
READ_COMMITTED "to prevent locking from delaying reads on subscription data",
and notes that anything spanning multiple SEs only gets READ_UNCOMMITTED.
The two stronger levels are implemented as well so the trade-off can be
measured (they acquire read locks / snapshots and therefore conflict more).
"""

from __future__ import annotations

import enum


class IsolationLevel(enum.Enum):
    """SQL-standard isolation levels supported by a storage element."""

    READ_UNCOMMITTED = "read_uncommitted"
    READ_COMMITTED = "read_committed"
    REPEATABLE_READ = "repeatable_read"
    SERIALIZABLE = "serializable"

    @property
    def allows_dirty_reads(self) -> bool:
        """Dirty reads see data written by transactions not yet committed."""
        return self is IsolationLevel.READ_UNCOMMITTED

    @property
    def uses_snapshot(self) -> bool:
        """Snapshot-based levels pin reads to the transaction's start time."""
        return self in (IsolationLevel.REPEATABLE_READ,
                        IsolationLevel.SERIALIZABLE)

    @property
    def takes_read_locks(self) -> bool:
        """Serializable transactions lock what they read (no phantom writes)."""
        return self is IsolationLevel.SERIALIZABLE

    @classmethod
    def default_intra_element(cls) -> "IsolationLevel":
        """The paper's choice for transactions within one storage element."""
        return cls.READ_COMMITTED

    @classmethod
    def default_cross_element(cls) -> "IsolationLevel":
        """The paper's (lack of a) guarantee for cross-SE transactions."""
        return cls.READ_UNCOMMITTED
