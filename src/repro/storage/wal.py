"""Commit log (write-ahead log) of a partition copy.

The commit log serves three purposes in the reproduction, mirroring its roles
in the paper's architecture:

* it is the unit of **durability**: a checkpoint marks everything up to a log
  sequence number (LSN) as safe on disk, anything after it is lost if the
  storage element crashes (section 3.1's periodic dump, footnote 6);
* it is the **replication stream**: the master ships log records, in LSN
  order, to the slave copies, which is what guarantees the identical
  serialisation order the paper requires (section 3.2);
* it is the **audit trail** used by the consistency-restoration process after
  a multi-master partition incident (section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


@dataclass(frozen=True)
class WriteOperation:
    """A single key write (or delete) inside a committed transaction."""

    key: str
    value: Any

    def __repr__(self) -> str:
        return f"WriteOperation({self.key!r})"


@dataclass(frozen=True)
class LogRecord:
    """One committed transaction in the commit log."""

    lsn: int
    transaction_id: int
    commit_seq: int
    operations: Tuple[WriteOperation, ...]
    origin: str = ""
    timestamp: float = 0.0
    #: Promotion epoch of the mastership that committed the transaction
    #: (0 until the membership plane performs its first promotion).
    epoch: int = 0

    @property
    def keys(self) -> Tuple[str, ...]:
        return tuple(operation.key for operation in self.operations)

    @property
    def position(self) -> Tuple[int, int]:
        """Recency ordering key across promotion epochs."""
        return (self.epoch, self.commit_seq)

    def __repr__(self) -> str:
        return (f"<LogRecord lsn={self.lsn} tx={self.transaction_id} "
                f"keys={list(self.keys)}>")


@dataclass
class WriteAheadLog:
    """Append-only commit log with a durability watermark."""

    name: str = "wal"
    _records: List[LogRecord] = field(default_factory=list)
    _durable_lsn: int = 0
    _next_lsn: int = 1
    #: Synchronous callbacks run after every append; this is the commit hook
    #: the replication multiplexer wakes on (instead of polling the log).
    _append_listeners: List[Callable[[LogRecord], None]] = field(
        default_factory=list, repr=False, compare=False)

    # -- append ---------------------------------------------------------------

    def append(self, transaction_id: int, commit_seq: int,
               operations: Tuple[WriteOperation, ...],
               origin: str = "", timestamp: float = 0.0,
               epoch: int = 0) -> LogRecord:
        """Append a committed transaction and return its log record."""
        record = LogRecord(
            lsn=self._next_lsn,
            transaction_id=transaction_id,
            commit_seq=commit_seq,
            operations=tuple(operations),
            origin=origin,
            timestamp=timestamp,
            epoch=epoch,
        )
        self._next_lsn += 1
        self._records.append(record)
        self._notify(record)
        return record

    def append_record(self, record: LogRecord) -> LogRecord:
        """Append a pre-built record (replication apply), renumbering its LSN."""
        copy = LogRecord(
            lsn=self._next_lsn,
            transaction_id=record.transaction_id,
            commit_seq=record.commit_seq,
            operations=record.operations,
            origin=record.origin,
            timestamp=record.timestamp,
            epoch=record.epoch,
        )
        self._next_lsn += 1
        self._records.append(copy)
        self._notify(copy)
        return copy

    # -- commit listeners -------------------------------------------------------

    def subscribe(self, listener: Callable[[LogRecord], None]) -> None:
        """Run ``listener(record)`` after every append (idempotent)."""
        if listener not in self._append_listeners:
            self._append_listeners.append(listener)

    def unsubscribe(self, listener: Callable[[LogRecord], None]) -> None:
        """Stop notifying ``listener`` (no-op when not subscribed)."""
        if listener in self._append_listeners:
            self._append_listeners.remove(listener)

    def _notify(self, record: LogRecord) -> None:
        for listener in tuple(self._append_listeners):
            listener(record)

    # -- reading ----------------------------------------------------------------

    @property
    def records(self) -> List[LogRecord]:
        return list(self._records)

    @property
    def last_lsn(self) -> int:
        # An empty log is not necessarily a fresh log: retention may have
        # truncated every record (all durable and shipped), and a crash
        # cuts back to the durable prefix.  In both cases the durability
        # watermark is the highest surviving LSN; only a never-written
        # log reports 0.
        return self._records[-1].lsn if self._records else self._durable_lsn

    def since(self, lsn: int) -> List[LogRecord]:
        """Records with LSN strictly greater than ``lsn`` (oldest first).

        O(result) rather than O(log length): LSNs are dense and ascending
        (append numbers sequentially, truncation drops a prefix, a crash
        drops a suffix), so the cut-off is found by index arithmetic.  The
        replication channels call this on every shipping round and every
        ``lag()`` sample, which made the old full scan the dominant cost of
        metrics sampling on large logs.
        """
        records = self._records
        if not records or lsn >= records[-1].lsn:
            return []
        first_lsn = records[0].lsn
        if lsn < first_lsn:
            return list(records)
        index = lsn - first_lsn + 1
        if 0 < index <= len(records) and records[index - 1].lsn == lsn:
            return records[index:]
        # Defensive fallback for a non-dense log (not produced today).
        return [record for record in records if record.lsn > lsn]

    def record_at(self, lsn: int) -> Optional[LogRecord]:
        for record in self._records:
            if record.lsn == lsn:
                return record
        return None

    def __len__(self) -> int:
        return len(self._records)

    # -- durability --------------------------------------------------------------

    @property
    def durable_lsn(self) -> int:
        """Highest LSN known to be safe on persistent storage."""
        return self._durable_lsn

    def mark_durable(self, lsn: int) -> None:
        """Advance the durability watermark (checkpoint completed)."""
        if lsn < self._durable_lsn:
            raise ValueError(
                f"durable LSN cannot move backwards ({lsn} < {self._durable_lsn})")
        self._durable_lsn = min(lsn, max(self.last_lsn, self._durable_lsn))

    def undurable_records(self) -> List[LogRecord]:
        """Committed records that would be lost if the element crashed now."""
        return self.since(self._durable_lsn)

    def truncate_through(self, lsn: int) -> int:
        """Drop records with LSN <= ``lsn`` (already checkpointed); returns count."""
        before = len(self._records)
        self._records = [record for record in self._records if record.lsn > lsn]
        return before - len(self._records)

    def crash(self) -> List[LogRecord]:
        """Simulate losing the volatile tail of the log; returns what was lost."""
        lost = self.undurable_records()
        self._records = [record for record in self._records
                         if record.lsn <= self._durable_lsn]
        return lost

    def __repr__(self) -> str:
        return (f"<WriteAheadLog {self.name!r} records={len(self._records)} "
                f"durable_lsn={self._durable_lsn}>")
