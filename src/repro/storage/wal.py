"""Commit log (write-ahead log) of a partition copy.

The commit log serves three purposes in the reproduction, mirroring its roles
in the paper's architecture:

* it is the unit of **durability**: a checkpoint marks everything up to a log
  sequence number (LSN) as safe on disk, anything after it is lost if the
  storage element crashes (section 3.1's periodic dump, footnote 6);
* it is the **replication stream**: the master ships log records, in LSN
  order, to the slave copies, which is what guarantees the identical
  serialisation order the paper requires (section 3.2);
* it is the **audit trail** used by the consistency-restoration process after
  a multi-master partition incident (section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass(frozen=True)
class WriteOperation:
    """A single key write (or delete) inside a committed transaction."""

    key: str
    value: Any

    def __repr__(self) -> str:
        return f"WriteOperation({self.key!r})"


@dataclass(frozen=True)
class LogRecord:
    """One committed transaction in the commit log."""

    lsn: int
    transaction_id: int
    commit_seq: int
    operations: Tuple[WriteOperation, ...]
    origin: str = ""
    timestamp: float = 0.0

    @property
    def keys(self) -> Tuple[str, ...]:
        return tuple(operation.key for operation in self.operations)

    def __repr__(self) -> str:
        return (f"<LogRecord lsn={self.lsn} tx={self.transaction_id} "
                f"keys={list(self.keys)}>")


@dataclass
class WriteAheadLog:
    """Append-only commit log with a durability watermark."""

    name: str = "wal"
    _records: List[LogRecord] = field(default_factory=list)
    _durable_lsn: int = 0
    _next_lsn: int = 1

    # -- append ---------------------------------------------------------------

    def append(self, transaction_id: int, commit_seq: int,
               operations: Tuple[WriteOperation, ...],
               origin: str = "", timestamp: float = 0.0) -> LogRecord:
        """Append a committed transaction and return its log record."""
        record = LogRecord(
            lsn=self._next_lsn,
            transaction_id=transaction_id,
            commit_seq=commit_seq,
            operations=tuple(operations),
            origin=origin,
            timestamp=timestamp,
        )
        self._next_lsn += 1
        self._records.append(record)
        return record

    def append_record(self, record: LogRecord) -> LogRecord:
        """Append a pre-built record (replication apply), renumbering its LSN."""
        copy = LogRecord(
            lsn=self._next_lsn,
            transaction_id=record.transaction_id,
            commit_seq=record.commit_seq,
            operations=record.operations,
            origin=record.origin,
            timestamp=record.timestamp,
        )
        self._next_lsn += 1
        self._records.append(copy)
        return copy

    # -- reading ----------------------------------------------------------------

    @property
    def records(self) -> List[LogRecord]:
        return list(self._records)

    @property
    def last_lsn(self) -> int:
        return self._records[-1].lsn if self._records else 0

    def since(self, lsn: int) -> List[LogRecord]:
        """Records with LSN strictly greater than ``lsn`` (oldest first)."""
        return [record for record in self._records if record.lsn > lsn]

    def record_at(self, lsn: int) -> Optional[LogRecord]:
        for record in self._records:
            if record.lsn == lsn:
                return record
        return None

    def __len__(self) -> int:
        return len(self._records)

    # -- durability --------------------------------------------------------------

    @property
    def durable_lsn(self) -> int:
        """Highest LSN known to be safe on persistent storage."""
        return self._durable_lsn

    def mark_durable(self, lsn: int) -> None:
        """Advance the durability watermark (checkpoint completed)."""
        if lsn < self._durable_lsn:
            raise ValueError(
                f"durable LSN cannot move backwards ({lsn} < {self._durable_lsn})")
        self._durable_lsn = min(lsn, max(self.last_lsn, self._durable_lsn))

    def undurable_records(self) -> List[LogRecord]:
        """Committed records that would be lost if the element crashed now."""
        return self.since(self._durable_lsn)

    def truncate_through(self, lsn: int) -> int:
        """Drop records with LSN <= ``lsn`` (already checkpointed); returns count."""
        before = len(self._records)
        self._records = [record for record in self._records if record.lsn > lsn]
        return before - len(self._records)

    def crash(self) -> List[LogRecord]:
        """Simulate losing the volatile tail of the log; returns what was lost."""
        lost = self.undurable_records()
        self._records = [record for record in self._records
                         if record.lsn <= self._durable_lsn]
        return lost

    def __repr__(self) -> str:
        return (f"<WriteAheadLog {self.name!r} records={len(self._records)} "
                f"durable_lsn={self._durable_lsn}>")
