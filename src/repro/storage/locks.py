"""Key-level locking for intra-storage-element transactions.

The paper's design keeps reads fast by choosing READ_COMMITTED isolation, so
reads never block behind writers.  Writers take exclusive key locks; a
conflicting writer is aborted immediately (*no-wait*) rather than queued,
which keeps the lock manager free of deadlocks and keeps latency bounded --
the provisioning system is expected to retry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Set

from repro.storage.errors import WriteConflict


class LockMode(enum.Enum):
    """Lock modes supported on a record key."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class _LockEntry:
    mode: LockMode
    holders: Set[int] = field(default_factory=set)


class LockManager:
    """A no-wait key lock table.

    Shared locks are compatible with each other; an exclusive lock is only
    compatible with locks held by the same transaction (lock upgrade).
    Conflicts raise :class:`WriteConflict` immediately.
    """

    def __init__(self):
        self._locks: Dict[str, _LockEntry] = {}
        self._held_by_tx: Dict[int, Set[str]] = {}
        self.conflicts = 0

    def acquire(self, transaction_id: int, key: str,
                mode: LockMode = LockMode.EXCLUSIVE) -> None:
        """Acquire (or upgrade) a lock; raises :class:`WriteConflict` on conflict."""
        entry = self._locks.get(key)
        if entry is None:
            self._locks[key] = _LockEntry(mode=mode, holders={transaction_id})
            self._held_by_tx.setdefault(transaction_id, set()).add(key)
            return
        if entry.holders == {transaction_id}:
            # Sole holder: free to upgrade or re-acquire.
            if mode is LockMode.EXCLUSIVE:
                entry.mode = LockMode.EXCLUSIVE
            self._held_by_tx.setdefault(transaction_id, set()).add(key)
            return
        if mode is LockMode.SHARED and entry.mode is LockMode.SHARED:
            entry.holders.add(transaction_id)
            self._held_by_tx.setdefault(transaction_id, set()).add(key)
            return
        self.conflicts += 1
        holder = next(iter(entry.holders - {transaction_id}), None)
        raise WriteConflict(key, holder, transaction_id)

    def release_all(self, transaction_id: int) -> None:
        """Release every lock held by a transaction (commit or abort)."""
        keys = self._held_by_tx.pop(transaction_id, set())
        for key in keys:
            entry = self._locks.get(key)
            if entry is None:
                continue
            entry.holders.discard(transaction_id)
            if not entry.holders:
                del self._locks[key]

    def holders(self, key: str) -> Set[int]:
        entry = self._locks.get(key)
        return set(entry.holders) if entry else set()

    def mode(self, key: str) -> LockMode:
        entry = self._locks.get(key)
        if entry is None:
            raise KeyError(f"no lock held on {key!r}")
        return entry.mode

    def held_keys(self, transaction_id: int) -> Set[str]:
        return set(self._held_by_tx.get(transaction_id, set()))

    def __len__(self) -> int:
        return len(self._locks)

    def __repr__(self) -> str:
        return f"<LockManager locked_keys={len(self._locks)} conflicts={self.conflicts}>"
