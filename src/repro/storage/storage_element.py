"""The storage element (SE): the paper's unit of storage, ACID and failure.

A storage element is a shared-nothing group of two to four blades holding one
primary partition copy and one or two secondary copies in RAM.  Intra-element
redundancy means single-blade failures do not lose data or availability; the
interesting failures are whole-SE crashes (RAM contents gone, fall back to
the last disk dump) and site disasters.

The SE exposes:

* transactional access to each hosted partition copy
  (:class:`PartitionCopy` wraps store + WAL + transaction manager +
  checkpointer),
* a service-time model so the simulation layer can charge realistic
  processing delays per operation,
* crash / recovery with explicit accounting of lost transactions (the
  durability experiments read these counters).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim import units
from repro.storage.checkpoint import CheckpointPolicy, Checkpointer
from repro.storage.engine import RecordStore
from repro.storage.errors import StorageElementUnavailable
from repro.storage.isolation import IsolationLevel
from repro.storage.partitioning import DataPartition
from repro.storage.transactions import TransactionManager
from repro.storage.wal import LogRecord, WriteAheadLog


class ReplicaRole(enum.Enum):
    """Role of a partition copy hosted on a storage element."""

    PRIMARY = "primary"
    SECONDARY = "secondary"


@dataclass
class ServiceTimeModel:
    """Per-operation processing times of a storage element.

    The defaults are derived from the paper's throughput figures: an SE that
    sustains its share of 1M LDAP operations per second per LDAP server has
    per-operation engine costs in the tens of microseconds; commit adds log
    and replication bookkeeping.
    """

    read_time: float = 30 * units.MICROSECOND
    write_time: float = 60 * units.MICROSECOND
    commit_time: float = 100 * units.MICROSECOND
    sync_commit_penalty: float = 5 * units.MILLISECOND

    def transaction_time(self, reads: int, writes: int,
                         synchronous_commit: bool = False) -> float:
        """Engine time for a transaction with the given operation counts."""
        total = self.operation_time(reads, writes)
        if writes:
            total += self.commit_charge(synchronous_commit)
        return total

    def operation_time(self, reads: int, writes: int) -> float:
        """Per-operation engine time, excluding the commit bookkeeping.

        Coalesced multi-record transactions charge this per record and
        :meth:`commit_charge` once for the whole group.
        """
        return reads * self.read_time + writes * self.write_time

    def commit_charge(self, synchronous_commit: bool = False) -> float:
        """The commit bookkeeping cost of one (possibly multi-record) txn."""
        total = self.commit_time
        if synchronous_commit:
            total += self.sync_commit_penalty
        return total

    def scaled(self, factor: float) -> "ServiceTimeModel":
        """A copy with every time multiplied by ``factor`` (e.g. dump penalty)."""
        return ServiceTimeModel(
            read_time=self.read_time * factor,
            write_time=self.write_time * factor,
            commit_time=self.commit_time * factor,
            sync_commit_penalty=self.sync_commit_penalty,
        )


class PartitionCopy:
    """One copy (primary or secondary) of a data partition on an SE."""

    def __init__(self, partition: DataPartition, role: ReplicaRole,
                 element_name: str,
                 checkpoint_policy: Optional[CheckpointPolicy] = None,
                 isolation: IsolationLevel = IsolationLevel.READ_COMMITTED):
        self.partition = partition
        self.role = role
        self.element_name = element_name
        name = f"{element_name}:{partition.name}:{role.value}"
        self.store = RecordStore(name=name)
        self.wal = WriteAheadLog(name=name)
        self.transactions = TransactionManager(
            self.store, self.wal, name=name, default_isolation=isolation)
        self.checkpointer = Checkpointer(
            self.store, self.wal, policy=checkpoint_policy)

    @property
    def is_primary(self) -> bool:
        return self.role is ReplicaRole.PRIMARY

    def promote(self) -> None:
        """Turn a secondary copy into the primary (failover)."""
        self.role = ReplicaRole.PRIMARY

    def demote(self) -> None:
        self.role = ReplicaRole.SECONDARY

    def __repr__(self) -> str:
        return (f"<PartitionCopy {self.partition.name} {self.role.value} "
                f"on {self.element_name} records={len(self.store)}>")


class StorageElement:
    """A limited-size, shared-nothing storage element.

    Parameters
    ----------
    name:
        Unique element name, e.g. ``"se-spain-dc1-0"``.
    site:
        The :class:`repro.net.topology.Site` hosting the element (opaque to
        this module; used by the network layer).
    blades:
        Number of blades in the element (the paper uses two to four).
    ram_bytes:
        RAM available for subscriber data (the paper's ~200 GB per SE).
    subscriber_capacity:
        Nominal subscribers an SE can hold (the paper's 2 million for a
        2-blade SE); used by the capacity planner and admission checks.
    """

    def __init__(self, name: str, site=None, blades: int = 2,
                 ram_bytes: int = 200 * units.GIB,
                 subscriber_capacity: int = 2_000_000,
                 service_times: Optional[ServiceTimeModel] = None,
                 checkpoint_policy: Optional[CheckpointPolicy] = None,
                 isolation: IsolationLevel = IsolationLevel.READ_COMMITTED):
        if blades < 2:
            raise ValueError("a storage element needs at least two blades")
        self.name = name
        self.site = site
        self.blades = blades
        self.ram_bytes = ram_bytes
        self.subscriber_capacity = subscriber_capacity
        self.service_times = service_times or ServiceTimeModel()
        self.checkpoint_policy = checkpoint_policy or CheckpointPolicy()
        self.isolation = isolation
        self._copies: Dict[int, PartitionCopy] = {}
        self._failed_blades = 0
        self._available = True
        self.crashes = 0
        self.lost_transactions = 0
        self.total_downtime = 0.0
        self._down_since: Optional[float] = None

    # -- copies ---------------------------------------------------------------

    def add_copy(self, partition: DataPartition,
                 role: ReplicaRole) -> PartitionCopy:
        """Host a copy of ``partition`` with the given role."""
        if partition.index in self._copies:
            raise ValueError(
                f"{self.name} already hosts a copy of {partition.name}")
        copy = PartitionCopy(
            partition, role, element_name=self.name,
            checkpoint_policy=self.checkpoint_policy,
            isolation=self.isolation)
        self._copies[partition.index] = copy
        return copy

    def copy_of(self, partition: DataPartition) -> PartitionCopy:
        try:
            return self._copies[partition.index]
        except KeyError:
            raise KeyError(
                f"{self.name} hosts no copy of {partition.name}") from None

    def hosts(self, partition: DataPartition) -> bool:
        return partition.index in self._copies

    @property
    def copies(self) -> List[PartitionCopy]:
        return [self._copies[index] for index in sorted(self._copies)]

    @property
    def primary_copies(self) -> List[PartitionCopy]:
        return [copy for copy in self.copies if copy.is_primary]

    # -- availability ------------------------------------------------------------

    @property
    def available(self) -> bool:
        return self._available

    def require_available(self) -> None:
        if not self._available:
            raise StorageElementUnavailable(self.name, reason="crashed")

    def blade_failure(self) -> bool:
        """One blade fails.  Returns True if the whole element went down.

        Intra-element redundancy keeps the SE up until fewer than two healthy
        blades remain (data is mirrored across blade pairs).
        """
        self._failed_blades = min(self.blades, self._failed_blades + 1)
        if self.blades - self._failed_blades < 1:
            self.crash()
            return True
        return False

    def blade_repair(self) -> None:
        self._failed_blades = max(0, self._failed_blades - 1)

    @property
    def failed_blades(self) -> int:
        return self._failed_blades

    def crash(self, timestamp: float = 0.0) -> List[LogRecord]:
        """Whole-element crash: RAM is lost, state reverts to the last dump.

        Returns the commit-log records lost on this element.  Whether those
        transactions are lost *by the system* depends on replication, which
        is the durability experiment's job to assess.
        """
        if not self._available:
            return []
        self._available = False
        self.crashes += 1
        self._down_since = timestamp
        lost: List[LogRecord] = []
        for copy in self.copies:
            lost.extend(copy.checkpointer.crash_and_recover())
        self.lost_transactions += len(lost)
        return lost

    def recover(self, timestamp: float = 0.0) -> None:
        """Bring the element back with the state recovered from disk."""
        if self._available:
            return
        self._available = True
        self._failed_blades = 0
        if self._down_since is not None:
            self.total_downtime += max(0.0, timestamp - self._down_since)
            self._down_since = None

    # -- capacity -----------------------------------------------------------------

    @property
    def memory_used(self) -> int:
        return sum(copy.store.live_bytes for copy in self.copies)

    @property
    def memory_utilisation(self) -> float:
        if self.ram_bytes <= 0:
            return 0.0
        return self.memory_used / self.ram_bytes

    def subscriber_count(self) -> int:
        """Live records in the primary copies (each subscriber is one record)."""
        return sum(len(copy.store) for copy in self.primary_copies)

    def has_capacity_for(self, additional_subscribers: int = 1) -> bool:
        return (self.subscriber_count() + additional_subscribers
                <= self.subscriber_capacity)

    def __repr__(self) -> str:
        state = "up" if self._available else "down"
        return (f"<StorageElement {self.name!r} {state} blades={self.blades} "
                f"copies={len(self._copies)}>")
