"""Periodic RAM-to-disk checkpointing (the paper's section 3.1 decision 1).

Every storage element "saves data in RAM to local persistent storage on a
periodic basis".  Two quantities matter for the F-R trade-off the paper
describes:

* the **data-loss window**: a crash loses every transaction committed after
  the last completed dump (unless replication already shipped it elsewhere);
* the **throughput penalty**: dumping steals CPU/IO from the storage engine,
  so shorter periods cost more speed (footnote 6 also describes the extreme
  case of dumping each transaction synchronously before commit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.sim import units
from repro.storage.engine import RecordStore
from repro.storage.wal import LogRecord, WriteAheadLog


@dataclass
class CheckpointPolicy:
    """Configuration of the periodic dump.

    Parameters
    ----------
    period:
        Seconds between dumps.  The paper does not publish a figure; 15
        minutes is used as the default planning value.
    synchronous_commit:
        When True every commit is forced to disk before acknowledging
        (footnote 6's "100% guaranteed durability" mode).
    disk_bandwidth:
        Sustained sequential write bandwidth of the local disk, bytes/second.
    sync_write_latency:
        Extra latency added to every commit under ``synchronous_commit``.
    """

    period: float = 15 * units.MINUTE
    synchronous_commit: bool = False
    disk_bandwidth: float = 200 * units.MIB
    sync_write_latency: float = 5 * units.MILLISECOND

    def __post_init__(self):
        if self.period <= 0:
            raise ValueError("checkpoint period must be positive")
        if self.disk_bandwidth <= 0:
            raise ValueError("disk bandwidth must be positive")
        if self.sync_write_latency < 0:
            raise ValueError("sync write latency cannot be negative")

    # -- analytic F-R trade-off ----------------------------------------------

    def dump_duration(self, data_bytes: int) -> float:
        """Seconds one full dump of ``data_bytes`` takes."""
        return data_bytes / self.disk_bandwidth

    def throughput_penalty(self, data_bytes: int) -> float:
        """Fraction of engine capacity consumed by dumping (0.0 - 1.0).

        With synchronous commit the penalty is dominated by the per-commit
        disk write and is reported as 1.0 here only when dumps would overlap;
        the per-commit latency is accounted separately by the service-time
        model.
        """
        if data_bytes <= 0:
            return 0.0
        return min(1.0, self.dump_duration(data_bytes) / self.period)

    def expected_loss_window(self) -> float:
        """Mean age of the newest durable transaction at a random crash time."""
        if self.synchronous_commit:
            return 0.0
        return self.period / 2.0

    def worst_case_loss_window(self) -> float:
        if self.synchronous_commit:
            return 0.0
        return self.period


class Checkpointer:
    """Takes and restores checkpoints for one partition copy."""

    def __init__(self, store: RecordStore, wal: WriteAheadLog,
                 policy: Optional[CheckpointPolicy] = None):
        self.store = store
        self.wal = wal
        self.policy = policy or CheckpointPolicy()
        self._snapshot: Dict[str, Any] = {}
        self._snapshot_seq = 0
        self.checkpoints_taken = 0
        self.last_checkpoint_time: Optional[float] = None

    def checkpoint(self, timestamp: float = 0.0) -> int:
        """Dump the committed state to "disk"; returns the durable LSN."""
        self._snapshot = self.store.snapshot()
        self._snapshot_seq = self.store.last_applied_seq
        if self.policy.synchronous_commit:
            durable_lsn = self.wal.last_lsn
        else:
            durable_lsn = self.wal.last_lsn
        self.wal.mark_durable(durable_lsn)
        self.checkpoints_taken += 1
        self.last_checkpoint_time = timestamp
        return durable_lsn

    def sync_commit(self) -> None:
        """Force the log durable up to its tail (synchronous-commit mode)."""
        self.wal.mark_durable(self.wal.last_lsn)

    def crash_and_recover(self) -> List[LogRecord]:
        """Simulate an SE crash: revert to the last dump, return lost commits.

        Under synchronous commit nothing is lost (the log tail was already
        durable); otherwise every record after the durability watermark
        disappears along with the volatile RAM image.
        """
        lost = self.wal.crash()
        self.store.restore(self._snapshot, commit_seq=self._snapshot_seq)
        if not lost:
            return []
        # Records made durable individually (sync commits) are replayed.
        return lost

    @property
    def snapshot_seq(self) -> int:
        return self._snapshot_seq

    def undurable_commit_count(self) -> int:
        """Committed transactions currently exposed to loss on a crash."""
        return len(self.wal.undurable_records())

    def __repr__(self) -> str:
        return (f"<Checkpointer checkpoints={self.checkpoints_taken} "
                f"snapshot_seq={self._snapshot_seq}>")
