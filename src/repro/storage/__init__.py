"""Storage element substrate: RAM-resident record store with transactions.

The paper's UDR keeps all subscriber data in RAM across many limited-size
*storage elements* (SE).  Each SE:

* holds the **primary copy of one data partition** and secondary copies of
  one or two others (section 2.3),
* provides **ACID transactions local to the SE** at READ_COMMITTED isolation
  (section 3.2) -- cross-SE transactions get no guarantees,
* dumps its RAM contents to local disk **periodically** (section 3.1), so a
  crash loses the transactions committed after the last dump unless they were
  already replicated.

This package implements those mechanics as a deterministic, synchronous
functional layer: an MVCC record store, a lock manager, a transaction
manager, a write-ahead/commit log (which doubles as the replication stream),
checkpointing with an explicit data-loss window, data partitioning, and the
:class:`~repro.storage.storage_element.StorageElement` that ties them
together.
"""

from repro.storage.errors import (
    IsolationError,
    RecordNotFound,
    StorageElementUnavailable,
    StorageError,
    TransactionAborted,
    TransactionStateError,
    WriteConflict,
)
from repro.storage.isolation import IsolationLevel
from repro.storage.records import TOMBSTONE, RecordVersion, record_size
from repro.storage.engine import RecordStore
from repro.storage.locks import LockManager, LockMode
from repro.storage.wal import LogRecord, WriteAheadLog, WriteOperation
from repro.storage.transactions import Transaction, TransactionManager
from repro.storage.checkpoint import CheckpointPolicy, Checkpointer
from repro.storage.partitioning import (
    DataPartition,
    PartitionLayout,
    PartitionScheme,
)
from repro.storage.storage_element import (
    PartitionCopy,
    ReplicaRole,
    ServiceTimeModel,
    StorageElement,
)

__all__ = [
    "CheckpointPolicy",
    "Checkpointer",
    "DataPartition",
    "IsolationError",
    "IsolationLevel",
    "LockManager",
    "LockMode",
    "LogRecord",
    "PartitionCopy",
    "PartitionLayout",
    "PartitionScheme",
    "RecordNotFound",
    "RecordStore",
    "RecordVersion",
    "ReplicaRole",
    "ServiceTimeModel",
    "StorageElement",
    "StorageElementUnavailable",
    "StorageError",
    "TOMBSTONE",
    "Transaction",
    "TransactionAborted",
    "TransactionManager",
    "TransactionStateError",
    "WriteAheadLog",
    "WriteConflict",
    "WriteOperation",
    "record_size",
]
