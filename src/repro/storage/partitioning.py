"""Subscriber data partitioning and copy placement (paper sections 2.3, 3.1).

The subscriber data space is split into partitions (about 200 GB each in the
paper, i.e. one storage element's worth of RAM), each partition further split
into sub-partitions for incremental growth.  Every storage element holds the
*primary* copy of one partition and *secondary* copies of one or two others,
arranged so that the UDR keeps serving 100% of the subscriber base as long as
one PoA and one SE survive.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class DataPartition:
    """One partition of the subscriber data space."""

    index: int
    sub_partitions: int = 8

    @property
    def name(self) -> str:
        return f"partition-{self.index}"

    def sub_partition_for(self, key: str) -> int:
        return stable_hash(key) % self.sub_partitions

    def __str__(self) -> str:
        return self.name


def stable_hash(key: str) -> int:
    """A hash that is stable across processes (unlike built-in ``hash``)."""
    digest = hashlib.md5(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class PartitionScheme:
    """Maps subscriber keys to data partitions."""

    def __init__(self, num_partitions: int, sub_partitions: int = 8):
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        if sub_partitions < 1:
            raise ValueError("need at least one sub-partition")
        self.partitions: List[DataPartition] = [
            DataPartition(index, sub_partitions)
            for index in range(num_partitions)]

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def partition_for_key(self, key: str) -> DataPartition:
        """The partition that owns ``key`` under hash placement."""
        return self.partitions[stable_hash(key) % self.num_partitions]

    def partition(self, index: int) -> DataPartition:
        return self.partitions[index]

    def __iter__(self):
        return iter(self.partitions)

    def __len__(self) -> int:
        return self.num_partitions

    def __repr__(self) -> str:
        return f"<PartitionScheme partitions={self.num_partitions}>"


@dataclass
class PartitionAssignment:
    """Where one partition's copies live."""

    partition: DataPartition
    primary_element: str
    secondary_elements: List[str] = field(default_factory=list)

    @property
    def all_elements(self) -> List[str]:
        return [self.primary_element] + list(self.secondary_elements)

    @property
    def replication_factor(self) -> int:
        return 1 + len(self.secondary_elements)


class PartitionLayout:
    """Round-robin placement of primary and secondary copies on elements.

    With ``replication_factor`` copies, element *i* holds the primary copy of
    partition *i* and secondary copies of the ``replication_factor - 1``
    preceding partitions -- the exact arrangement of the example in the
    paper's section 2.3 (three SEs, each primary of one partition and
    secondary of the other two).
    """

    def __init__(self, scheme: PartitionScheme, element_names: Sequence[str],
                 replication_factor: int = 3):
        if not element_names:
            raise ValueError("need at least one storage element")
        if replication_factor < 1:
            raise ValueError("replication factor must be at least 1")
        if replication_factor > len(element_names):
            raise ValueError(
                "replication factor cannot exceed the number of elements")
        if scheme.num_partitions != len(element_names):
            raise ValueError(
                "this layout assigns one primary partition per element; "
                f"got {scheme.num_partitions} partitions for "
                f"{len(element_names)} elements")
        self.scheme = scheme
        self.element_names = list(element_names)
        self.replication_factor = replication_factor
        self._assignments: Dict[int, PartitionAssignment] = {}
        count = len(self.element_names)
        for partition in scheme:
            primary = self.element_names[partition.index % count]
            secondaries = [
                self.element_names[(partition.index + offset) % count]
                for offset in range(1, replication_factor)]
            self._assignments[partition.index] = PartitionAssignment(
                partition=partition,
                primary_element=primary,
                secondary_elements=secondaries,
            )

    # -- queries -----------------------------------------------------------------

    def assignment(self, partition: DataPartition) -> PartitionAssignment:
        return self._assignments[partition.index]

    def assignment_for_key(self, key: str) -> PartitionAssignment:
        return self.assignment(self.scheme.partition_for_key(key))

    def primary_of(self, partition: DataPartition) -> str:
        return self.assignment(partition).primary_element

    def secondaries_of(self, partition: DataPartition) -> List[str]:
        return list(self.assignment(partition).secondary_elements)

    def copies_on(self, element_name: str) -> Dict[DataPartition, str]:
        """Partitions hosted on an element, mapped to 'primary'/'secondary'."""
        result: Dict[DataPartition, str] = {}
        for assignment in self._assignments.values():
            if assignment.primary_element == element_name:
                result[assignment.partition] = "primary"
            elif element_name in assignment.secondary_elements:
                result[assignment.partition] = "secondary"
        return result

    def assignments(self) -> List[PartitionAssignment]:
        return [self._assignments[index]
                for index in sorted(self._assignments)]

    def surviving_coverage(self, alive_elements: Sequence[str]) -> float:
        """Fraction of partitions with at least one copy on a live element.

        The paper claims the layout "can continue providing service for 100%
        of the subscriber base as long as one PoA and one SE are reachable";
        this method is what the availability experiments use to check that
        claim for arbitrary failure sets.
        """
        alive = set(alive_elements)
        covered = sum(
            1 for assignment in self._assignments.values()
            if any(element in alive for element in assignment.all_elements))
        return covered / len(self._assignments)

    def __repr__(self) -> str:
        return (f"<PartitionLayout partitions={len(self._assignments)} "
                f"rf={self.replication_factor}>")
