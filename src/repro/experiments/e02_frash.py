"""E02 — Figures 5 and 6: the FRASH trade-off graph and operating points.

Figure 5 is the set of restriction links between the FRASH characteristics;
figure 6 places blue (application FE) and red (provisioning) operating points
on those links according to the design decisions of section 3.  The
experiment evaluates both client classes under the paper's default
configuration and reports, per link, where each class sits and which
decisions put it there.
"""

from __future__ import annotations

from repro.core.config import ClientType, UDRConfig
from repro.core.frash import FrashGraph
from repro.experiments.runner import ExperimentResult


def run(config: UDRConfig = None) -> ExperimentResult:
    config = config or UDRConfig()
    graph = FrashGraph()
    both = graph.evaluate_both(config)
    fe_positions = both[ClientType.APPLICATION_FE]
    ps_positions = both[ClientType.PROVISIONING]
    rows = []
    for link in graph.links:
        fe = fe_positions[link.name]
        ps = ps_positions[link.name]
        rows.append([
            link.name,
            "CAP" if link.in_cap_scope else ("weak" if link.weak else ""),
            round(fe.position, 2),
            str(fe.favours()),
            round(ps.position, 2),
            str(ps.favours()),
        ])
    fe_fast = fe_positions["F-A"].position < 0.5
    ps_more_acid = (ps_positions["F-A"].position
                    > fe_positions["F-A"].position)
    pc_on_partition = ps_positions["R-A"].position > 0.5
    return ExperimentResult(
        experiment_id="E02",
        title="FRASH trade-off graph and operating points (figures 5/6)",
        paper_claim=("the design favours F on the F-A link (more for FE than "
                     "PS), favours consistency on the R-A (CAP) link, and the "
                     "H-F link is weak"),
        headers=["link", "kind", "FE position", "FE favours",
                 "PS position", "PS favours"],
        rows=rows,
        finding=(f"FE favours Fast on F-A: {fe_fast}; PS closer to ACID than "
                 f"FE: {ps_more_acid}; consistency favoured on partition "
                 f"(R-A): {pc_on_partition}"),
        notes={
            "fe_favours_fast": fe_fast,
            "ps_more_acid_than_fe": ps_more_acid,
            "pc_on_partition": pc_on_partition,
            "decision_count": len(graph.decisions_for(config)),
        },
    )
