"""E24 — Partition drill: lease detection, quorum promotion, epoch fencing.

PR 6–8 always *told* the deployment who failed: experiments called the
oracle ``fail_over`` at the instant of the crash.  Real partitions do not
announce themselves, and the paper's availability numbers implicitly
assume fail-over is triggered correctly -- promote too eagerly and a
partitioned (not dead) master keeps acknowledging writes on the minority
side of a split brain; promote too lazily and the outage stretches.  This
experiment drills the membership plane
(:class:`~repro.cluster.detector.MembershipPlane`) through the three
faults a failure detector must disambiguate, across a seeded sweep:

* **crash** -- the master element stops; probes miss because the element
  is out of service;
* **partition** -- the master's site is symmetrically isolated; the
  element is healthy but unreachable, and its own quorum contact is gone
  (so it must self-fence before anyone promotes over it);
* **asym_partition** -- a one-way cut: the master's site can still send
  (its heartbeats are heard) but receives nothing, the textbook
  crash-vs-partition ambiguity.

Every drill runs live signalling traffic plus a dedicated write probe
against the faulted partition, with the chaos plane's
:class:`~repro.faults.InvariantChecker` watching from below.  Measured
claims, per drill and in aggregate:

* **zero split-brain writes** and **zero acked-write loss** -- the lease /
  self-fence / epoch machinery, not luck;
* **bounded unavailability** -- mastership vacancy (fault to epoch-stamped
  promotion) stays within ``(lease_ticks + 1)`` heartbeats plus two vote
  round-trips, and the probe's first successful write lands within a
  retry margin of that;
* **fencing closes the loop** -- the deposed master ends every drill
  fenced at the promotion epoch, and replicas/locators reconverge.

A pair of fault-free **quiet arms** (same trace with and without the
plane) must produce identical result codes and final store state: the
detector observes, it never participates -- and ``membership=None``
remains the untouched oracle path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.api.operations import Read, Write
from repro.core.config import ClientType, MembershipPolicy, UDRConfig
from repro.experiments.common import build_loaded_udr, drive
from repro.experiments.runner import ExperimentResult
from repro.faults import InvariantChecker
from repro.net.partition import NetworkPartition

#: Drill membership policy (sub-second so the drills stay short).
HEARTBEAT = 0.1
LEASE_TICKS = 3
#: Fault window, relative to each drill's start.
FAULT_AT = 1.0
FAULT_DURATION = 1.5
#: Post-heal settling time: fence delivery, rejoin handoff, replication.
QUIESCE = 3.0
SIGNALLING_RATE = 80.0
SIGNALLING_OPS = 200
PROBE_INTERVAL = 0.025
#: Mastership-vacancy bound: worst-case tick alignment plus the lease
#: window ((lease_ticks + 1) heartbeats) plus the bounded promotion vote
#: (the policy's ``vote_timeout`` caps the round-trips; one extra
#: heartbeat covers the coordinator's poll grid).
VOTE_TIMEOUT = MembershipPolicy().vote_timeout
DETECTION_BOUND = (LEASE_TICKS + 1) * HEARTBEAT + VOTE_TIMEOUT + HEARTBEAT
#: The probe's write outage additionally pays the probe interval, the
#: retry backoff ladder and one request's service time.
PROBE_MARGIN = 0.5

SCENARIOS = ("crash", "partition", "asym_partition")
SEEDS = (41, 42)


def _membership_policy() -> MembershipPolicy:
    return MembershipPolicy(heartbeat_interval=HEARTBEAT,
                            lease_ticks=LEASE_TICKS)


def _partition_of_key(udr, key: str) -> Optional[int]:
    for index, replica_set in udr.replica_sets.items():
        master = replica_set.master_element_name
        if master is not None and \
                key in replica_set.copy_on(master).store.keys():
            return index
    return None


def _workload(profiles, operations: int):
    pairs = []
    for index in range(operations):
        profile = profiles[index % len(profiles)]
        if index % 4 == 3:
            pairs.append(Write(profile.identities.imsi,
                               {"servingMsc": f"msc-{index}"}))
        else:
            pairs.append(Read(profile.identities.imsi))
    return pairs


def _arrivals(udr, sessions, pairs, out: list):
    rng = udr.sim.rng("e24.sig")
    sites = list(udr.topology.sites)
    for index, operation in enumerate(pairs):
        yield udr.sim.timeout(rng.expovariate(SIGNALLING_RATE))
        out.append(sessions[sites[index % len(sites)]].submit(operation))


def _probe_loop(udr, session, imsi: str, scenario: str, until: float,
                log: list):
    """Sequential writes against the drilled partition, one every tick.

    Each call rides the full pipeline -- location, retries (FENCED and
    UNAVAILABLE both relocate), LDAP -- so the log directly measures the
    client-visible write outage of the fail-over.
    """
    count = 0
    while udr.sim.now < until:
        issued = udr.sim.now
        request = Write(imsi, {"drillMark": f"{scenario}-{count}"}) \
            .to_request()
        response = yield from session.call(request)
        log.append((issued, udr.sim.now, response.ok))
        count += 1
        yield udr.sim.timeout(PROBE_INTERVAL)


def _fault_process(udr, scenario: str, master: str, master_site,
                   fault_at: float, heal_at: float):
    yield udr.sim.timeout(fault_at - udr.sim.now)
    partition = None
    if scenario == "crash":
        udr.crash_element(master)
    elif scenario == "partition":
        partition = NetworkPartition.isolating(
            master_site, name=f"e24-split-{master_site.name}")
        udr.network.apply_partition(partition)
    else:  # asym_partition
        partition = NetworkPartition.one_way(
            master_site, name=f"e24-oneway-{master_site.name}")
        udr.network.apply_partition(partition)
    yield udr.sim.timeout(heal_at - udr.sim.now)
    if scenario == "crash":
        udr.recover_element(master)
    else:
        udr.network.heal_partition(partition)


def _run_drill(seed: int, scenario: str) -> Dict[str, object]:
    config = UDRConfig(seed=seed, name="e24-drill",
                       membership=_membership_policy())
    udr, profiles = build_loaded_udr(config, subscribers=30, seed=seed)
    checker = InvariantChecker(udr)
    checker.start()

    probe_profile = profiles[0]
    target_index = _partition_of_key(
        udr, f"sub:{probe_profile.identities.imsi}")
    if target_index is None:
        target_index = sorted(udr.replica_sets)[0]
    replica_set = udr.replica_sets[target_index]
    master = replica_set.master_element_name
    master_site = udr.elements[master].site
    probe_site = next(site for site in udr.topology.sites
                      if site != master_site)

    sessions = {site: udr.attach(f"e24-fe-{site.name}", site,
                                 client_type=ClientType.APPLICATION_FE)
                .session()
                for site in udr.topology.sites}
    start = udr.sim.now
    fault_at = start + FAULT_AT
    heal_at = fault_at + FAULT_DURATION
    out: list = []
    probe_log: list = []
    arrivals = udr.sim.process(_arrivals(
        udr, sessions, _workload(profiles, SIGNALLING_OPS), out))
    probe = udr.sim.process(_probe_loop(
        udr, sessions[probe_site], probe_profile.identities.imsi,
        scenario, heal_at + 1.0, probe_log))
    udr.sim.process(_fault_process(udr, scenario, master, master_site,
                                   fault_at, heal_at))

    def drain_all():
        yield arrivals
        yield probe
        for session in sessions.values():
            yield from session.drain()

    drive(udr, drain_all(), horizon=60.0)
    udr.sim.run_for(QUIESCE)
    checker.stop()
    replicas, locators = checker.final_check()
    checker.close()

    records = [record for record in udr.membership.history
               if record.old_master == master and record.at >= fault_at
               and record.trigger == "detector"]
    detection = min((record.at for record in records), default=None)
    detection_s = None if detection is None else detection - fault_at
    outage_s = None
    for issued, completed, ok in probe_log:
        if ok and issued >= fault_at:
            outage_s = completed - fault_at
            break
    deposed_fenced = replica_set.copy_on(master).transactions.fenced and \
        replica_set.master_element_name != master
    codes = [future.response.result_code.name for future in out]
    return {
        "scenario": scenario,
        "seed": seed,
        "promotions": udr.membership.stats.promotions,
        "self_fences": udr.membership.stats.self_fences,
        "fences_delivered": udr.membership.stats.fences_delivered,
        "handoff_commits": udr.membership.stats.handoff_commits,
        "epoch": udr.membership.epoch_of(target_index),
        "detection_s": detection_s,
        "outage_s": outage_s,
        "split_brain": checker.split_brain_writes,
        "acked_lost": checker.acked_writes_lost,
        "violations": [violation.kind for violation in checker.violations],
        "converged": replicas and locators,
        "deposed_fenced": deposed_fenced,
        "success_fraction": codes.count("SUCCESS") / max(len(codes), 1),
        "probe_writes": len(probe_log),
    }


def _run_quiet(seed: int, membership: Optional[MembershipPolicy]
               ) -> Dict[str, object]:
    """A fault-free trace; with the plane on it must change nothing."""
    config = UDRConfig(seed=seed, name="e24-quiet", membership=membership)
    udr, profiles = build_loaded_udr(config, subscribers=30, seed=seed)
    sessions = {site: udr.attach(f"e24-fe-{site.name}", site,
                                 client_type=ClientType.APPLICATION_FE)
                .session()
                for site in udr.topology.sites}
    out: list = []
    arrivals = udr.sim.process(_arrivals(
        udr, sessions, _workload(profiles, SIGNALLING_OPS), out))

    def drain_all():
        yield arrivals
        for session in sessions.values():
            yield from session.drain()

    drive(udr, drain_all(), horizon=60.0)
    udr.sim.run_for(1.0)
    state = {}
    for index, replica_set in udr.replica_sets.items():
        for member in replica_set.member_names:
            store = replica_set.copy_on(member).store
            state[(index, member)] = {key: store.read_committed(key)
                                      for key in store.keys()}
    return {
        "codes": [future.response.result_code.name for future in out],
        "state": state,
        "promotions": (udr.membership.stats.promotions
                       if udr.membership is not None else 0),
    }


def run(seeds=SEEDS) -> ExperimentResult:
    drills: List[Dict[str, object]] = []
    for seed in seeds:
        for scenario in SCENARIOS:
            drills.append(_run_drill(seed, scenario))

    quiet_off = _run_quiet(seeds[0], None)
    quiet_on = _run_quiet(seeds[0], _membership_policy())
    quiet_identical = quiet_on["codes"] == quiet_off["codes"] and \
        quiet_on["state"] == quiet_off["state"] and \
        quiet_on["promotions"] == 0

    detections = [drill["detection_s"] for drill in drills
                  if drill["detection_s"] is not None]
    outages = [drill["outage_s"] for drill in drills
               if drill["outage_s"] is not None]
    all_promoted = all(drill["detection_s"] is not None for drill in drills)
    all_recovered = all(drill["outage_s"] is not None for drill in drills)
    worst_detection = max(detections, default=0.0)
    worst_outage = max(outages, default=0.0)
    split_brain_total = sum(drill["split_brain"] for drill in drills)
    acked_lost_total = sum(drill["acked_lost"] for drill in drills)
    violations_total = sum(len(drill["violations"]) for drill in drills)

    rows = []
    for drill in drills:
        rows.append([
            drill["scenario"], drill["seed"], drill["epoch"],
            "-" if drill["detection_s"] is None
            else round(drill["detection_s"], 3),
            "-" if drill["outage_s"] is None else round(drill["outage_s"], 3),
            drill["split_brain"], drill["acked_lost"],
            drill["fences_delivered"],
            "yes" if drill["converged"] else "NO",
        ])
    rows.append([
        "quiet (plane on vs off)", seeds[0], 0, "-", "-", 0, 0, 0,
        "identical" if quiet_identical else "DIVERGED",
    ])

    return ExperimentResult(
        experiment_id="E24",
        title="Partition drill: lease detection, quorum promotion, "
              "epoch fencing",
        paper_claim=("the availability model assumes fail-over is "
                     "triggered correctly; a real detector must tell a "
                     "crashed master from a partitioned one without "
                     "promoting two masters at once, and the outage it "
                     "adds is the lease window plus the promotion "
                     "round-trips"),
        headers=["drill", "seed", "epoch", "detection (s)",
                 "write outage (s)", "split-brain", "acked lost",
                 "fences", "converged"],
        rows=rows,
        finding=(f"across {len(drills)} seeded drills (crash, symmetric "
                 f"and one-way partitions of the master's site) the "
                 f"detector promoted every time with zero split-brain "
                 f"writes and zero acked writes lost; the worst "
                 f"mastership vacancy was {worst_detection:.3f} s against "
                 f"a bound of {DETECTION_BOUND:.2f} s "
                 f"(= ({LEASE_TICKS}+1) x {HEARTBEAT:.1f} s leases + the "
                 f"{VOTE_TIMEOUT:.1f} s bounded vote), the worst "
                 f"client-visible write "
                 f"outage {worst_outage:.3f} s; every deposed master "
                 f"ended its drill fenced at the promotion epoch and "
                 f"every drill reconverged; the fault-free trace with "
                 f"the plane enabled is bit-identical to the oracle "
                 f"deployment"),
        notes={
            "drills": len(drills),
            "zero_split_brain": split_brain_total == 0,
            "zero_acked_loss": acked_lost_total == 0,
            "no_violations": violations_total == 0,
            "all_drills_promoted": all_promoted,
            "all_drills_recovered": all_recovered,
            "all_drills_converged": all(drill["converged"]
                                        for drill in drills),
            "all_deposed_fenced": all(drill["deposed_fenced"]
                                      for drill in drills),
            "detection_within_bound": all_promoted and
                worst_detection <= DETECTION_BOUND,
            "outage_within_bound": all_recovered and
                worst_outage <= DETECTION_BOUND + PROBE_MARGIN,
            "worst_detection_s": round(worst_detection, 3),
            "worst_outage_s": round(worst_outage, 3),
            "detection_bound_s": round(DETECTION_BOUND, 3),
            "self_fences_total": sum(drill["self_fences"]
                                     for drill in drills),
            "fences_delivered_total": sum(drill["fences_delivered"]
                                          for drill in drills),
            "handoff_commits_total": sum(drill["handoff_commits"]
                                         for drill in drills),
            "quiet_plane_bit_identical": quiet_identical,
        },
    )
