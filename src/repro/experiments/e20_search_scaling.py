"""E20 — Tree-accelerated search: DIT interval index vs full scan.

The paper's UDR serves "indexed single-subscriber" operations at one
million per second (section 3.5), but a directory is more than point
lookups: provisioning campaigns, auditing, and bulk exports issue *scoped*
searches (BASE / ONE_LEVEL / SUBTREE) with attribute filters.  A naive
implementation touches every record in the directory per search; this PR
gives the store an XPath-accelerator-style DIT index (pre/post interval
labels over the tree, so a whole scope is one range scan over a sorted
array) plus attribute secondary indexes with a selectivity-ordered filter
planner, and keyset-paged result streaming.

Two measurement parts:

* **Part A -- scaling sweep** of the standalone
  :class:`~repro.directory.dit.DirectoryCatalog`: the same conjunctive
  filter evaluated indexed (interval range scan + postings intersection,
  smallest first) and brute-force (every record touched) at directory
  sizes 10^3..10^6.  Brute force is capped at 10^5 entries -- beyond that
  the scan arm alone would dominate the benchmark suite's budget, which
  is itself the point.  By default the sweep reports the *deterministic*
  cost model (records the filter is evaluated on), so the generated
  EXPERIMENTS.md stays byte-stable; ``measure_wall_clock=True`` (the
  benchmark's mode) times both arms for real and gates on the measured
  ratio.
* **Part B -- end-to-end simulated runs** through a deployed UDR:
  the same scoped search served by the DIT index, by the full-scan
  fallback (``search_index_enabled=False``), and keyset-paged; every arm
  must return the bit-identical result set of a brute-force reference
  derived independently of the search path.

The PR's acceptance bar: indexed subtree search >= 10x faster than the
scan at 10^5 entries, and paged + unpaged + scan results all identical to
brute force.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.api.operations import Search
from repro.core.config import ClientType, UDRConfig
from repro.directory.dit import DirectoryCatalog
from repro.experiments.common import build_loaded_udr, drive
from repro.experiments.runner import ExperimentResult
from repro.ldap.filters import FilterPlanner, parse_filter
from repro.ldap.operations import SearchScope
from repro.ldap.schema import SubscriberSchema

#: Directory sizes of the wall-clock sweep (Part A).
DEFAULT_SIZES: Tuple[int, ...] = (1_000, 10_000, 100_000, 1_000_000)
#: Largest size at which the brute-force arm still runs.
BRUTE_FORCE_CAP = 100_000
#: Timing repetitions per arm (best-of, to shed scheduler noise).
TIMING_ROUNDS = 3

_REGIONS = ("spain", "brazil", "mexico", "argentina", "chile")
_ORGANISATIONS = tuple(f"org-{index:02d}" for index in range(10))
_STATUSES = ("active", "active", "active", "suspended")

#: The sweep's conjunctive filter: both conjuncts are indexed, and their
#: selectivities differ by 2x so the planner's ordering matters.
_SWEEP_FILTER = ("(&(objectClass=udrSubscriber)"
                 "(homeRegion=spain)(organisation=org-03))")


def _synthetic_base(count: int):
    """Deterministic ``(key, record, partition)`` triples plus a flat view.

    No RNG: regions cycle over the index and organisations over blocks of
    five, so all 50 region/organisation combinations appear with uniform
    frequency at every size and results are reproducible across runs.
    """
    triples = []
    flat: Dict[str, Tuple[object, dict]] = {}
    for index in range(count):
        imsi = f"214{index:012d}"
        record = {
            "imsi": imsi,
            "homeRegion": _REGIONS[index % len(_REGIONS)],
            "organisation": _ORGANISATIONS[
                (index // len(_REGIONS)) % len(_ORGANISATIONS)],
            "subscriberStatus": _STATUSES[index % len(_STATUSES)],
        }
        key = f"sub:{imsi}"
        triples.append((key, record, index % 4))
        dn = SubscriberSchema.subscriber_dn(imsi)
        flat[key] = (dn, SubscriberSchema.ldap_entry(record, dn))
    return triples, flat


def _indexed_search(catalog: DirectoryCatalog, flat, parsed, planner):
    """The indexed plan: interval scope scan + postings intersection.

    Returns ``(matching ids, records touched)`` -- "touched" counts the
    entries the full filter was actually evaluated on after pruning, the
    deterministic cost the default report is built from.
    """
    scoped = catalog.scope_candidates(SubscriberSchema.BASE_DN,
                                      SearchScope.SUBTREE)
    ids, _comparisons = scoped
    candidates = planner.plan(parsed).candidates()
    if candidates is not None:
        ids = [entry_id for entry_id in ids if entry_id in candidates]
    return (sorted(entry_id for entry_id in ids
                   if parsed.matches(flat[entry_id][1])), len(ids))


def _brute_search(flat, parsed):
    """The scan plan: every record fetched, scope + filter on each."""
    base = SubscriberSchema.BASE_DN
    return sorted(key for key, (dn, entry) in flat.items()
                  if dn.is_descendant_of(base) and parsed.matches(entry))


def _best_of(callable_, rounds: int = TIMING_ROUNDS):
    """(best wall-clock seconds, last result) of ``rounds`` runs."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        # This helper deliberately reads the real clock: it only runs when
        # the benchmark passes measure_wall_clock=True, while the registry/
        # EXPERIMENTS.md path uses the deterministic records-touched cost
        # model instead.
        # reprolint: disable=DET001 -- wall-clock timing is the measurement
        start = time.perf_counter()
        result = callable_()
        # reprolint: disable=DET001 -- wall-clock timing is the measurement
        best = min(best, time.perf_counter() - start)
    return best, result


def _run_part_a(sizes: Tuple[int, ...], measure_wall_clock: bool):
    """One sweep row per directory size.

    Deterministic mode reports records touched (byte-stable tables for the
    generated EXPERIMENTS.md); wall-clock mode times both arms for real.
    """
    rows = []
    parsed = parse_filter(_SWEEP_FILTER)
    speedup_at: Dict[int, float] = {}
    all_equal = True
    for size in sizes:
        triples, flat = _synthetic_base(size)
        catalog = DirectoryCatalog(SubscriberSchema.catalog_view,
                                   SubscriberSchema.INDEXED_ATTRIBUTES)
        catalog.bulk_load(triples)
        planner = FilterPlanner(catalog.attributes)
        if measure_wall_clock:
            indexed_s, (indexed_ids, _touched) = _best_of(
                lambda: _indexed_search(catalog, flat, parsed, planner))
            indexed_cell = f"{indexed_s * 1e3:.3f} ms"
        else:
            indexed_ids, touched = _indexed_search(catalog, flat, parsed,
                                                   planner)
            indexed_cell = f"{touched:,} touched"
        if size <= BRUTE_FORCE_CAP:
            if measure_wall_clock:
                brute_s, brute_ids = _best_of(
                    lambda: _brute_search(flat, parsed))
                speedup = brute_s / indexed_s if indexed_s else float("inf")
                scan_cell = f"{brute_s * 1e3:.3f} ms"
            else:
                brute_ids = _brute_search(flat, parsed)
                speedup = size / max(1, touched)
                scan_cell = f"{size:,} touched"
            speedup_at[size] = speedup
            equal = indexed_ids == brute_ids
            all_equal = all_equal and equal
            rows.append([size, indexed_cell, scan_cell, round(speedup, 1),
                         len(indexed_ids), "yes" if equal else "NO"])
        else:
            rows.append([size, indexed_cell, "(capped)", "-",
                         len(indexed_ids), "-"])
    return rows, speedup_at, all_equal


def _reference_result_set(profiles, filter_text: str) -> List[str]:
    """Brute-force reference: filter the generator's profiles directly.

    Built from the subscriber profiles -- never from the catalog, the DIT,
    or the search path -- so an index bug cannot hide in the reference.
    """
    parsed = parse_filter(filter_text)
    matches = []
    for profile in profiles:
        record = profile.to_record()
        entry = SubscriberSchema.ldap_entry(
            record, SubscriberSchema.subscriber_dn(profile.identities.imsi))
        if parsed.matches(entry):
            matches.append(entry["imsi"])
    return sorted(matches)


def _imsis(response) -> List[str]:
    return sorted(entry["imsi"] for entry in response.entries)


def _run_search(udr, operation: Search):
    """Submit one sessioned search on a provisioning client (master reads)."""
    client = udr.attach("e20-searcher", udr.topology.sites[0],
                        client_type=ClientType.PROVISIONING)
    session = client.session()

    def driver():
        future = session.submit(operation)
        response = yield from future.wait()
        return response

    return drive(udr, driver())


def _run_paged(udr, operation: Search):
    client = udr.attach("e20-pager", udr.topology.sites[0],
                        client_type=ClientType.PROVISIONING)
    session = client.session()

    def driver():
        pages = yield from session.search_pages(operation)
        return pages

    return drive(udr, driver())


def _run_part_b(subscribers: int, page_size: int, seed: int):
    """End-to-end rows through a deployed UDR (indexed, scan, paged)."""
    filter_text = (f"(&(objectClass=udrSubscriber)"
                   f"(homeRegion={_REGIONS[0]}))")

    indexed_udr, profiles = build_loaded_udr(
        UDRConfig(seed=seed, name="e20-indexed"), subscribers=subscribers,
        seed=seed)
    reference = _reference_result_set(profiles, filter_text)

    unpaged = _run_search(indexed_udr,
                          Search.scoped(filter_text,
                                        scope=SearchScope.SUBTREE))
    pages = _run_paged(indexed_udr,
                       Search.scoped(filter_text, scope=SearchScope.SUBTREE,
                                     page_size=page_size))
    paged_union = sorted(entry["imsi"] for page in pages
                         for entry in page.entries)
    indexed_count = indexed_udr.metrics.counter("ldap.search.indexed")
    relabels = indexed_udr.metrics.counter("directory.dit.relabels")

    scan_udr, _ = build_loaded_udr(
        UDRConfig(seed=seed, search_index_enabled=False, name="e20-scan"),
        subscribers=subscribers, seed=seed)
    scanned = _run_search(scan_udr,
                          Search.scoped(filter_text,
                                        scope=SearchScope.SUBTREE))
    scan_count = scan_udr.metrics.counter("ldap.search.scan")

    unpaged_ids = _imsis(unpaged)
    scanned_ids = _imsis(scanned)
    rows = [
        ["indexed (DIT)", unpaged.served_from, len(unpaged.entries), 1,
         "yes" if unpaged_ids == reference else "NO"],
        [f"indexed, paged ({page_size}/page)", "dit-index",
         len(paged_union), len(pages),
         "yes" if paged_union == reference else "NO"],
        ["full scan (index off)", scanned.served_from, len(scanned.entries),
         1, "yes" if scanned_ids == reference else "NO"],
    ]
    notes = {
        "e2e_result_count": len(reference),
        "paged_equals_unpaged": paged_union == unpaged_ids,
        "matches_bruteforce": (unpaged_ids == reference
                               and paged_union == reference
                               and scanned_ids == reference),
        "pages": len(pages),
        "counter_indexed": indexed_count,
        "counter_scan": scan_count,
        "counter_relabels": relabels,
    }
    return rows, notes


def run(sizes: Optional[Tuple[int, ...]] = None, subscribers: int = 60,
        page_size: int = 7, seed: int = 20,
        measure_wall_clock: bool = False) -> ExperimentResult:
    sizes = tuple(sizes) if sizes is not None else DEFAULT_SIZES
    part_a_rows, speedup_at, part_a_equal = _run_part_a(sizes,
                                                        measure_wall_clock)
    part_b_rows, part_b_notes = _run_part_b(subscribers, page_size, seed)

    sweep_label = ("A: wall-clock sweep" if measure_wall_clock
                   else "A: records-touched sweep")
    rows = [[sweep_label, "-", "-", "-", "-", "-"]]
    for size, indexed_cell, scan_cell, speedup, count, equal in part_a_rows:
        rows.append([f"  {size:,} entries", indexed_cell, scan_cell,
                     speedup, count, equal])
    rows.append(["B: end-to-end (simulated)", "-", "-", "-", "-", "-"])
    for path, served_from, count, pages, equal in part_b_rows:
        rows.append([f"  {path}", served_from, "-", pages, count, equal])

    gate_size = max(size for size in speedup_at) if speedup_at else None
    speedup_gate = speedup_at.get(gate_size, 0.0) if gate_size else 0.0
    arm = ("runs" if measure_wall_clock else "touches")
    ratio = (f"{speedup_gate:.0f}x faster than" if measure_wall_clock
             else f"{speedup_gate:.0f}x fewer records than")
    finding = (
        f"the pre/post interval DIT turns a SUBTREE scope into one range "
        f"scan and the selectivity-ordered postings intersection prunes "
        f"before any record is touched: at {gate_size:,} entries the "
        f"indexed search {arm} {ratio} the full "
        f"scan (brute force is capped there; the index keeps scaling to "
        f"{max(sizes):,}), while the end-to-end runs return "
        f"bit-identical result sets indexed, paged and scanned"
        if gate_size else
        "no size under the brute-force cap was measured")
    notes = {
        "sizes": list(sizes),
        "measure_wall_clock": measure_wall_clock,
        "speedup_1e5": round(speedup_gate, 1),
        "speedup_gate_size": gate_size,
        "part_a_sets_equal": part_a_equal,
        **part_b_notes,
    }
    return ExperimentResult(
        experiment_id="E20",
        title="Tree-accelerated search: DIT interval index vs full scan",
        paper_claim=("the UDR's capacity story (section 3.5) prices "
                     "indexed operations only; scoped searches must not "
                     "degrade to touching every record as the subscriber "
                     "base grows to millions"),
        headers=["part / directory size", "indexed", "full scan",
                 "speedup / pages", "results", "= brute force"],
        rows=rows,
        finding=finding,
        notes=notes,
    )
