"""E07 — Scale-out and the data-location stage (sections 3.4.2 and 3.5).

Provisioned identity-location maps must be copied to every new data-location
stage instance before its PoA can serve ("data availability (R) is affected
by the data location sync mechanism introduced to facilitate S"); cached maps
avoid the sync but pay a broadcast to "multiple or even all the SE in the
system" per cache miss; consistent hashing avoids both but replicates data
per identity namespace and cannot honour selective placement.

The experiment scales the deployment out by one cluster under each location
mode and reports the PoA's unavailable time, the per-miss broadcast fan-out,
and the storage overhead factor.
"""

from __future__ import annotations

from repro.core.config import LocationMode, UDRConfig
from repro.directory.locator import CachedLocator, ConsistentHashLocator
from repro.directory.sync import MapSynchroniser
from repro.experiments.common import build_loaded_udr
from repro.experiments.runner import ExperimentResult


def _scale_out_unavailable_time(udr) -> float:
    """Simulated seconds the new PoA spends syncing before it can serve."""
    start = udr.sim.now
    poa, sync_process = udr.scale_out_new_cluster(udr.config.regions[0])
    if sync_process is None:
        return 0.0
    udr.sim.run_until_triggered(sync_process, limit=udr.sim.now + 24 * 3600.0)
    if not poa.can_serve():
        raise RuntimeError("map sync did not finish within a simulated day")
    return udr.sim.now - start


def run(subscribers: int = 80, seed: int = 29,
        projected_subscribers: int = 10_000_000) -> ExperimentResult:
    rows = []
    measurements = {}
    for mode in (LocationMode.PROVISIONED_MAPS, LocationMode.CACHED_MAPS,
                 LocationMode.CONSISTENT_HASH):
        config = UDRConfig(location_mode=mode, seed=seed)
        udr, _profiles = build_loaded_udr(config, subscribers=subscribers,
                                          seed=seed)
        unavailable = _scale_out_unavailable_time(udr)
        new_locator = udr.locators[udr.clusters[-1].name]
        if isinstance(new_locator, CachedLocator):
            miss_fanout = new_locator.fanout
        else:
            miss_fanout = 0
        if isinstance(new_locator, ConsistentHashLocator):
            storage_overhead = new_locator.storage_overhead_factor
            selective = "no"
        else:
            storage_overhead = 1
            selective = "yes"
        measurements[mode] = unavailable
        rows.append([
            mode.value,
            round(unavailable, 3),
            miss_fanout,
            storage_overhead,
            selective,
        ])
    # Projection: how long would the sync take at operator scale?
    synchroniser = MapSynchroniser()
    projected_entries = projected_subscribers * 4   # four identities each
    projection = synchroniser.estimate(projected_entries)
    rows.append([
        f"provisioned maps @ {projected_subscribers:,} subscribers "
        "(analytic)",
        round(projection.duration, 1),
        0,
        1,
        "yes",
    ])
    provisioned_blocked = measurements[LocationMode.PROVISIONED_MAPS] > 0
    others_free = (measurements[LocationMode.CACHED_MAPS] == 0
                   and measurements[LocationMode.CONSISTENT_HASH] == 0)
    return ExperimentResult(
        experiment_id="E07",
        title="Scale-out cost of the three data-location designs (F-R-S "
              "triangle)",
        paper_claim=("provisioned maps block the new PoA until synced; "
                     "cached maps trade that for per-miss broadcasts; "
                     "consistent hashing needs one data replica per identity "
                     "and loses selective placement"),
        headers=["location mode", "new PoA unavailable (s)",
                 "SEs queried per cache miss", "data copies per subscriber",
                 "selective placement"],
        rows=rows,
        finding=(f"only the provisioned-map design makes the new PoA "
                 f"unavailable (here {measurements[LocationMode.PROVISIONED_MAPS]:.3f} s; "
                 f"{projection.duration:.0f} s at {projected_subscribers:,} "
                 f"subscribers); the alternatives shift the cost to misses "
                 f"or to storage"),
        notes={
            "provisioned_blocks_poa": provisioned_blocked,
            "alternatives_do_not_block": others_free,
            "projected_sync_seconds": projection.duration,
        },
    )
