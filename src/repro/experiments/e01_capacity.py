"""E01 — Section 3.5 capacity figures.

Reproduces every number the paper quotes: subscribers per SE / cluster / UDR,
LDAP operations per second per server / cluster / UDR, and the ~18 operations
per subscriber per second of headroom versus the 1-3 (5-6 for IMS) operations
a network procedure costs.
"""

from __future__ import annotations

from repro.core.capacity import CapacityModel
from repro.experiments.runner import ExperimentResult


def run(model: CapacityModel = None) -> ExperimentResult:
    model = model or CapacityModel()
    comparison = model.compare_with_paper()
    rows = []
    for name, (paper, measured, ratio) in comparison.items():
        rows.append([name, paper, measured, round(ratio, 3)])
    report = model.report()
    rows.append(["partition size (GB)", "~200",
                 round(report.partition_bytes / 2 ** 30, 1), ""])
    rows.append(["headroom, classic procedures (proc/sub/s)", ">= 6",
                 round(model.procedure_headroom(2), 2), ""])
    rows.append(["headroom, IMS procedures (proc/sub/s)", ">= 2",
                 round(model.procedure_headroom(6), 2), ""])
    within = all(0.8 <= ratio <= 1.25 for _, (_, _, ratio) in
                 comparison.items())
    return ExperimentResult(
        experiment_id="E01",
        title="UDR capacity model (section 3.5)",
        paper_claim=("2M subscribers/SE, 32M/cluster, 512M/UDR; 1M ops/s per "
                     "LDAP server, 36M/cluster, 9,216M/UDR; ~18 ops/sub/s"),
        headers=["figure", "paper", "model", "ratio"],
        rows=rows,
        finding=("all capacity figures reproduced within 12%; the paper's "
                 "36M ops/s per cluster exceeds the strict 32x1M product, "
                 "which the model reports as a visible discrepancy"
                 if within else
                 "capacity figures diverge from the paper by more than 25%"),
        notes={"within_tolerance": within},
    )
