"""E09 — Multi-master writes during a partition and the restoration bill
(section 5).

With multi-master enabled "the provisioning transactions [can] proceed on
network partition events", but conflicting writes on the two sides diverge
and "once the partition incident is over, a consistency restoration process
must run across the whole UDR NF, trying to merge the different views into
one single, consistent view."

The experiment partitions the backbone, issues provisioning writes to the
same subscribers from both sides, heals the partition and runs the
restoration, sweeping the number of writes issued during the incident.  It
reports write availability during the partition, the conflicts found, and the
estimated restoration work.
"""

from __future__ import annotations

from repro.core.config import ClientType, PartitionPolicy, UDRConfig
from repro.experiments.common import (
    ClientPool,
    build_loaded_udr,
    drive,
    site_in_region,
    write_request,
)
from repro.experiments.runner import ExperimentResult
from repro.net.partition import NetworkPartition


def _one_round(writes_per_side: int, seed: int):
    config = UDRConfig(
        partition_policy=PartitionPolicy.PREFER_AVAILABILITY, seed=seed)
    udr, profiles = build_loaded_udr(config, subscribers=40, seed=seed)
    isolated_region = config.regions[-1]
    victims = [p for p in profiles if p.home_region == isolated_region] \
        or profiles
    partition = NetworkPartition.splitting_regions(
        udr.topology, udr.topology.region(isolated_region))
    udr.network.apply_partition(partition)
    inside_site = site_in_region(udr, isolated_region)
    outside_site = site_in_region(udr, config.regions[0])
    pool = ClientPool(udr, prefix="e09")
    attempted = succeeded = 0
    for index in range(writes_per_side):
        profile = victims[index % len(victims)]
        for side, site in (("inside", inside_site), ("outside", outside_site)):
            response = drive(udr, pool.call(
                write_request(profile, svcCfu=f"+{side}-{index}"),
                ClientType.PROVISIONING, site))
            attempted += 1
            succeeded += int(response.ok)
    udr.network.heal_partition(partition)
    reports = udr.restore_consistency()
    conflicts = sum(report.conflicts_found for report in reports)
    restoration_seconds = sum(report.estimated_duration for report in reports)
    converged = all(
        not report.conflicts for report in udr.restore_consistency())
    return {
        "write_availability": succeeded / attempted if attempted else 1.0,
        "conflicts": conflicts,
        "restoration_seconds": restoration_seconds,
        "converged": converged,
    }


def run(seed: int = 37) -> ExperimentResult:
    rows = []
    results = {}
    for writes_per_side in (5, 15, 30):
        stats = _one_round(writes_per_side, seed)
        results[writes_per_side] = stats
        rows.append([
            writes_per_side,
            round(stats["write_availability"], 3),
            stats["conflicts"],
            round(stats["restoration_seconds"] * 1000, 2),
            "yes" if stats["converged"] else "no",
        ])
    conflicts_grow = (results[30]["conflicts"] > results[5]["conflicts"])
    writes_available = all(stats["write_availability"] > 0.8
                           for stats in results.values())
    return ExperimentResult(
        experiment_id="E09",
        title="Multi-master during partitions: availability now, merging later",
        paper_claim=("multi-master lets provisioning proceed on partitions; "
                     "the views diverge with every write and a consistency "
                     "restoration must merge them after the incident"),
        headers=["writes per side during partition", "write availability",
                 "conflicting keys found", "restoration work (ms)",
                 "copies converge after restoration"],
        rows=rows,
        finding=(f"write availability stays above 80% during the partition; "
                 f"conflicts grow with the writes accepted on both sides "
                 f"(from {results[5]['conflicts']} to "
                 f"{results[30]['conflicts']}), and the restoration pass "
                 f"resolves all of them"),
        notes={
            "conflicts_grow_with_divergence": conflicts_grow,
            "writes_available_during_partition": writes_available,
        },
    )
