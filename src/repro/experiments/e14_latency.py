"""E14 — Response-time budget: the 10 ms target (section 2.3, requirement 4).

"It must be fast, with a target average response time of 10 ms (excluding
network delays) for index-based single subscriber queries."  The experiment
measures the latency distribution of index-based single-subscriber reads in
three situations: served at the subscriber's home region (local copy), served
from another region with slave reads allowed (nearest copy), and forced to
the remote master (PS read policy).  The UDR-internal processing time is also
reported separately, since the paper's target explicitly excludes network
delays.
"""

from __future__ import annotations

from repro.core.config import ClientType, UDRConfig
from repro.experiments.common import (
    ClientPool,
    build_loaded_udr,
    drive,
    read_request,
    site_in_region,
)
from repro.experiments.runner import ExperimentResult
from repro.metrics.latency import LatencyRecorder
from repro.sim import units


def _measure_reads(udr, profiles, client_type, from_home: bool,
                   operations: int) -> LatencyRecorder:
    recorder = LatencyRecorder()
    pool = ClientPool(udr, prefix="e14")
    for index in range(operations):
        profile = profiles[index % len(profiles)]
        if from_home:
            site = site_in_region(udr, profile.home_region)
        else:
            away = next(region for region in udr.config.regions
                        if region != profile.home_region)
            site = site_in_region(udr, away)
        start = udr.sim.now
        response = drive(udr, pool.call(read_request(profile), client_type,
                                        site))
        if response.ok:
            recorder.record(udr.sim.now - start)
    return recorder


def run(subscribers: int = 40, operations: int = 60,
        seed: int = 43) -> ExperimentResult:
    udr, profiles = build_loaded_udr(UDRConfig(seed=seed),
                                     subscribers=subscribers, seed=seed)
    target_ms = units.to_milliseconds(units.TEN_MILLISECONDS)

    local = _measure_reads(udr, profiles, ClientType.APPLICATION_FE,
                           from_home=True, operations=operations)
    remote_slave = _measure_reads(udr, profiles, ClientType.APPLICATION_FE,
                                  from_home=False, operations=operations // 2)
    remote_master = _measure_reads(udr, profiles, ClientType.PROVISIONING,
                                   from_home=False, operations=operations // 2)

    # Processing-only cost (excluding network delays), as the paper defines
    # its target: LDAP server time plus storage engine time.
    server = udr.points_of_access[0].ldap_pool.servers[0]
    element = next(iter(udr.elements.values()))
    processing_ms = units.to_milliseconds(
        server.service_time()
        + element.service_times.transaction_time(reads=1, writes=0))

    def row(label, recorder):
        return [label,
                round(recorder.mean() * 1000, 3),
                round(recorder.p95() * 1000, 3),
                round(recorder.within_target(units.TEN_MILLISECONDS), 3)]

    rows = [
        ["UDR processing only (no network)", round(processing_ms, 4), "-",
         1.0],
        row("FE read, subscriber's home region", local),
        row("FE read from another region (slave allowed)", remote_slave),
        row("read forced to remote master (PS policy)", remote_master),
    ]
    return ExperimentResult(
        experiment_id="E14",
        title="Index-based single-subscriber read latency vs the 10 ms target",
        paper_claim=("average response time of 10 ms excluding network "
                     "delays; keeping data and PoA close to the front-ends "
                     "is what protects that budget"),
        headers=["scenario", "mean latency (ms)", "p95 latency (ms)",
                 "fraction within 10 ms"],
        rows=rows,
        finding=(f"processing-only latency is {processing_ms:.3f} ms, far "
                 f"inside the target; home-region reads average "
                 f"{local.mean() * 1000:.1f} ms, while crossing the backbone "
                 f"to the master costs {remote_master.mean() * 1000:.1f} ms "
                 f"-- the reason the paper insists on local PoAs and "
                 f"selective placement"),
        notes={
            "processing_within_target": processing_ms <= target_ms,
            "local_mean_ms": local.mean() * 1000,
            "remote_master_mean_ms": remote_master.mean() * 1000,
        },
    )
