"""E08 — Selective (home-region) placement vs random sharding (H-R link).

"The more distributed data are the lower the chances that one LDAP read/write
operation issued by an application front-end finds the subscriber data in a
close location. [...] if the data of a subscriber can be pinned to a location
close to the application front-ends in the home region of the subscription,
chances of having to surf the IP back-bone to obtain that subscriber's data
decrease enormously."

The experiment loads the same subscriber base under home-region placement and
under random placement, drives FE procedures from each subscriber's current
region (with a configurable roaming share), and reports the fraction of UDR
messages that crossed the backbone, the mean procedure latency, and the
operation availability over a lossy backbone.
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import ClientType, PlacementMode, UDRConfig
from repro.experiments.common import (
    ClientPool,
    build_loaded_udr,
    drive,
    read_request,
    site_in_region,
    write_request,
)
from repro.experiments.runner import ExperimentResult
from repro.net.network import LinkClass
from repro.sim import units
from repro.workloads.mobility import RoamingModel


def _measure(placement: PlacementMode, subscribers: int, operations: int,
             roaming_probability: float, seed: int) -> Dict[str, float]:
    config = UDRConfig(placement=placement, seed=seed)
    udr, profiles = build_loaded_udr(config, subscribers=subscribers,
                                     seed=seed)
    roaming = RoamingModel(config.regions, roaming_probability)
    placed = roaming.place_population(profiles, udr.sim.rng("e08.roaming"))
    rng = udr.sim.rng("e08.ops")
    pool = ClientPool(udr, prefix="e08")
    latencies = []
    succeeded = 0
    for index in range(operations):
        profile = placed[index % len(placed)]
        site = site_in_region(udr, profile.current_region)
        request = read_request(profile) if rng.random() < 0.8 else \
            write_request(profile, servingMsc=f"msc-{index}")
        start = udr.sim.now
        response = drive(udr, pool.call(
            request, ClientType.APPLICATION_FE, site))
        if response.ok:
            succeeded += 1
            latencies.append(udr.sim.now - start)
    stats = udr.network.stats
    return {
        "backbone_fraction": stats.backbone_fraction(),
        "mean_latency_ms": units.to_milliseconds(
            sum(latencies) / len(latencies)) if latencies else 0.0,
        "availability": succeeded / operations if operations else 1.0,
        "backbone_messages": stats.messages[LinkClass.BACKBONE],
    }


def run(subscribers: int = 60, operations: int = 60,
        roaming_probability: float = 0.05, seed: int = 31) -> ExperimentResult:
    home = _measure(PlacementMode.HOME_REGION, subscribers, operations,
                    roaming_probability, seed)
    random_placement = _measure(PlacementMode.RANDOM, subscribers, operations,
                                roaming_probability, seed)
    rows = [
        ["home-region (selective) placement",
         round(home["backbone_fraction"], 3),
         round(home["mean_latency_ms"], 2),
         round(home["availability"], 3)],
        ["random placement",
         round(random_placement["backbone_fraction"], 3),
         round(random_placement["mean_latency_ms"], 2),
         round(random_placement["availability"], 3)],
    ]
    backbone_reduction = (
        random_placement["backbone_fraction"]
        / max(home["backbone_fraction"], 1e-9))
    return ExperimentResult(
        experiment_id="E08",
        title="Selective placement vs random sharding (H-R link)",
        paper_claim=("pinning data to the home region keeps FE traffic off "
                     "the backbone, which both speeds it up and raises its "
                     "availability; random distribution does the opposite"),
        headers=["placement policy", "backbone message fraction",
                 "mean FE latency (ms)", "operation availability"],
        rows=rows,
        finding=(f"random placement pushes {backbone_reduction:.1f}x more of "
                 f"the traffic onto the backbone and raises mean latency from "
                 f"{home['mean_latency_ms']:.1f} ms to "
                 f"{random_placement['mean_latency_ms']:.1f} ms"),
        notes={
            "backbone_fraction_home": home["backbone_fraction"],
            "backbone_fraction_random": random_placement["backbone_fraction"],
            "latency_ratio": (random_placement["mean_latency_ms"]
                              / max(home["mean_latency_ms"], 1e-9)),
        },
    )
