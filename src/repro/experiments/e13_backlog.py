"""E13 — Provisioning backlog and the 30-second batch glitch (sections 3.3, 4.1).

Two of the paper's operational worries about provisioning:

* "long delays in processing provisioning transactions might cause a back-log
  of operations to grow at the PS" -- reproduced by driving the same steady
  provisioning flow against a healthy UDR and against one whose backbone
  latency is inflated, and comparing backlog depth;
* "a network glitch as short as 30 seconds may cause a batch that's been
  running for hours to fail" -- reproduced by running a batch while a
  30-second partition hits the region whose subscribers are being provisioned
  and counting the failed parts (manual interventions).
"""

from __future__ import annotations

from repro.core.config import UDRConfig
from repro.experiments.common import build_loaded_udr, drive, site_in_region
from repro.experiments.runner import ExperimentResult
from repro.faults.failures import PartitionIncident
from repro.faults.injector import FaultInjector, FaultSchedule
from repro.net.network import LinkClass
from repro.net.partition import NetworkPartition
from repro.provisioning.batch import BatchRun
from repro.provisioning.operations import ChangeServices, CreateSubscription
from repro.provisioning.system import ProvisioningSystem
from repro.subscriber.generator import SubscriberGenerator


def _steady_flow_backlog(latency_factor: float, operations: int, seed: int):
    config = UDRConfig(seed=seed)
    udr, profiles = build_loaded_udr(config, subscribers=40, seed=seed)
    udr.network.set_latency_factor(LinkClass.BACKBONE, latency_factor)
    # Provision subscribers homed away from the PS so every write crosses the
    # backbone and feels the inflation.
    remote = [p for p in profiles if p.home_region != config.regions[0]] \
        or profiles
    ps = ProvisioningSystem("e13-ps", udr,
                            site_in_region(udr, config.regions[0]))
    ops = [ChangeServices(remote[i % len(remote)],
                          changes={"svcBarPremium": bool(i % 2)})
           for i in range(operations)]
    drive(udr, ps.steady_flow(ops, rate_per_second=8.0),
          horizon=7200.0)
    return {
        "peak_backlog": ps.backlog.peak_depth,
        "success_ratio": ps.success_ratio(),
    }


def _batch_with_glitch(batch_size: int, glitch_duration: float, seed: int):
    config = UDRConfig(seed=seed)
    udr, _profiles = build_loaded_udr(config, subscribers=20, seed=seed)
    target_region = config.regions[-1]
    generator = SubscriberGenerator((target_region,), seed=seed + 1)
    operations = [CreateSubscription(profile)
                  for profile in generator.generate(batch_size)]
    ps = ProvisioningSystem("e13-batch-ps", udr,
                            site_in_region(udr, config.regions[0]))
    if glitch_duration > 0:
        partition = NetworkPartition.splitting_regions(
            udr.topology, udr.topology.region(target_region))
        schedule = FaultSchedule().add_partition(
            PartitionIncident(partition=partition, start=5.0,
                              duration=glitch_duration))
        FaultInjector(udr, schedule).start()
    report = drive(udr, BatchRun(ps, operations, pacing=1.0).run(),
                   horizon=7200.0)
    return report


def run(operations: int = 40, batch_size: int = 40,
        seed: int = 41) -> ExperimentResult:
    healthy = _steady_flow_backlog(latency_factor=1.0, operations=operations,
                                   seed=seed)
    congested = _steady_flow_backlog(latency_factor=40.0,
                                     operations=operations, seed=seed)
    clean_batch = _batch_with_glitch(batch_size, glitch_duration=0.0,
                                     seed=seed)
    glitched_batch = _batch_with_glitch(batch_size, glitch_duration=30.0,
                                        seed=seed)
    rows = [
        ["steady flow, healthy backbone", healthy["peak_backlog"],
         round(healthy["success_ratio"], 3), "-"],
        ["steady flow, 40x backbone latency", congested["peak_backlog"],
         round(congested["success_ratio"], 3), "-"],
        ["batch, no glitch", "-", round(clean_batch.success_ratio, 3),
         clean_batch.manual_interventions],
        ["batch, 30 s partition glitch", "-",
         round(glitched_batch.success_ratio, 3),
         glitched_batch.manual_interventions],
    ]
    return ExperimentResult(
        experiment_id="E13",
        title="Provisioning backlog growth and batch failure on a 30 s glitch",
        paper_claim=("processing delays grow a back-log at the PS; a 30 s "
                     "network glitch leaves failed batch parts that have to "
                     "be applied manually"),
        headers=["scenario", "peak backlog depth", "success ratio",
                 "manual interventions"],
        rows=rows,
        finding=(f"the congested backbone grows the backlog from "
                 f"{healthy['peak_backlog']} to {congested['peak_backlog']}; "
                 f"the 30 s glitch turns a clean batch into one with "
                 f"{glitched_batch.manual_interventions} parts to re-apply by "
                 f"hand"),
        notes={
            "backlog_grows_under_latency":
                congested["peak_backlog"] >= healthy["peak_backlog"],
            "glitch_causes_manual_interventions":
                glitched_batch.manual_interventions > 0,
            "clean_batch_succeeds": clean_batch.success_ratio == 1.0,
        },
    )
