"""E12 — PACELC classification (section 3.6).

"We argue that the UDR NF described in this paper is PA/EL for transactions
coming from application front-ends but PC/EC for transactions coming from PS
instances."  The experiment classifies both client classes under the paper's
default configuration and under the section 5 evolutions (multi-master,
quorum durability), showing how each knob moves the verdict.
"""

from __future__ import annotations

from repro.core.config import ClientType, PartitionPolicy, ReplicationMode, UDRConfig
from repro.core.pacelc import classify_both
from repro.experiments.runner import ExperimentResult


def run() -> ExperimentResult:
    configurations = [
        ("paper default", UDRConfig()),
        ("multi-master on partition",
         UDRConfig(partition_policy=PartitionPolicy.PREFER_AVAILABILITY)),
        ("dual-in-sequence durability",
         UDRConfig(replication_mode=ReplicationMode.DUAL_IN_SEQUENCE)),
        ("quorum durability, no slave reads",
         UDRConfig(replication_mode=ReplicationMode.QUORUM,
                   fe_reads_from_slave=False)),
    ]
    rows = []
    default_labels = {}
    for label, config in configurations:
        verdicts = classify_both(config)
        fe = verdicts[ClientType.APPLICATION_FE]
        ps = verdicts[ClientType.PROVISIONING]
        if label == "paper default":
            default_labels = {"fe": fe.label, "ps": ps.label}
        rows.append([label, fe.label, ps.label])
    matches_paper = default_labels == {"fe": "PA/EL", "ps": "PC/EC"}
    return ExperimentResult(
        experiment_id="E12",
        title="PACELC classification of the UDR (section 3.6)",
        paper_claim="PA/EL for application FE transactions, PC/EC for PS "
                    "transactions",
        headers=["configuration", "application FE", "provisioning system"],
        rows=rows,
        finding=(f"default design classified as "
                 f"{default_labels.get('fe')} (FE) / "
                 f"{default_labels.get('ps')} (PS); "
                 f"matches the paper: {matches_paper}"),
        notes={"matches_paper": matches_paper},
    )
