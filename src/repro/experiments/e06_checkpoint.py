"""E06 — Periodic disk dump period sweep (section 3.1 and footnote 6).

Saving RAM to disk protects against element failures but "the storage engine
is slightly slowed down"; dumping every transaction synchronously would give
100% durability but "slow down storage elements too much".  The experiment
sweeps the dump period and reports, for each setting, the throughput penalty
and the expected / worst-case data-loss window, plus the synchronous-commit
extreme, quantifying the F-R slider.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult
from repro.sim import units
from repro.storage.checkpoint import CheckpointPolicy
from repro.storage.storage_element import ServiceTimeModel


def run(data_bytes: int = 200 * units.GIB,
        write_rate_per_second: float = 2_000.0) -> ExperimentResult:
    periods = [1 * units.MINUTE, 5 * units.MINUTE, 15 * units.MINUTE,
               60 * units.MINUTE]
    service = ServiceTimeModel()
    rows = []
    for period in periods:
        policy = CheckpointPolicy(period=period)
        penalty = policy.throughput_penalty(data_bytes)
        expected_loss_seconds = policy.expected_loss_window()
        rows.append([
            f"{period / units.MINUTE:.0f} min dumps",
            round(penalty * 100, 2),
            round(units.to_milliseconds(
                service.transaction_time(reads=0, writes=1)), 3),
            round(expected_loss_seconds / units.MINUTE, 1),
            round(expected_loss_seconds * write_rate_per_second),
        ])
    sync_policy = CheckpointPolicy(synchronous_commit=True)
    rows.append([
        "synchronous commit",
        "n/a (per-commit disk write)",
        round(units.to_milliseconds(service.transaction_time(
            reads=0, writes=1, synchronous_commit=True)), 3),
        0.0,
        0,
    ])
    async_commit = service.transaction_time(reads=0, writes=1)
    sync_commit = service.transaction_time(reads=0, writes=1,
                                           synchronous_commit=True)
    slowdown = sync_commit / async_commit
    return ExperimentResult(
        experiment_id="E06",
        title="Disk dump period vs speed and data-loss window (F-R link)",
        paper_claim=("periodic dumps cost little speed; per-commit disk "
                     "writes would slow the storage elements down too much"),
        headers=["policy", "throughput penalty %", "commit latency (ms)",
                 "expected loss window (min)", "expected commits lost"],
        rows=rows,
        finding=(f"longer dump periods shrink the throughput penalty but grow "
                 f"the loss window linearly; synchronous commit removes the "
                 f"window at {slowdown:.0f}x the commit latency"),
        notes={"sync_commit_slowdown": slowdown,
               "expected_loss_window_unavailable": sync_policy.expected_loss_window()},
    )
