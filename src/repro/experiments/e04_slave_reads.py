"""E04 — Read-from-slave: latency win versus stale reads (section 3.3.2).

"Read operations on slave copies are allowed [for application front-ends].
[...] there's a certain chance that a read operation on a slave replica gets
stale data."  The experiment reads each subscriber from a site *outside* the
subscriber's home region (where only a slave copy can be local), immediately
after a write to that subscriber, under two configurations: slave reads
allowed (the paper's FE policy) and forbidden (the PS policy).  It reports
mean read latency and the fraction of stale reads.
"""

from __future__ import annotations

from repro.core.config import ClientType, UDRConfig
from repro.experiments.common import (
    ClientPool,
    build_loaded_udr,
    drive,
    read_request,
    site_in_region,
    write_request,
)
from repro.experiments.runner import ExperimentResult
from repro.sim import units


def _measure(allow_slave_reads: bool, subscribers: int, operations: int,
             seed: int):
    config = UDRConfig(fe_reads_from_slave=allow_slave_reads, seed=seed)
    udr, profiles = build_loaded_udr(config, subscribers=subscribers,
                                     seed=seed)
    pool = ClientPool(udr, prefix="e04")
    latencies = []
    for index in range(operations):
        profile = profiles[index % len(profiles)]
        home_site = site_in_region(udr, profile.home_region)
        away_region = next(region for region in config.regions
                           if region != profile.home_region)
        away_site = site_in_region(udr, away_region)
        # A write lands on the master (home region), then the read comes from
        # the away region before replication has necessarily caught up.
        drive(udr, pool.call(
            write_request(profile, servingMsc=f"msc-{index}"),
            ClientType.APPLICATION_FE, home_site))
        start = udr.sim.now
        response = drive(udr, pool.call(
            read_request(profile), ClientType.APPLICATION_FE, away_site))
        if response.ok:
            latencies.append(udr.sim.now - start)
    consistency = udr.metrics.consistency(ClientType.APPLICATION_FE.value)
    mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
    return {
        "mean_latency_ms": units.to_milliseconds(mean_latency),
        "stale_fraction": consistency.stale_read_fraction(),
        "slave_read_fraction": consistency.slave_read_fraction(),
        "mean_staleness_versions": consistency.mean_staleness(),
    }


def run(subscribers: int = 40, operations: int = 40,
        seed: int = 17) -> ExperimentResult:
    with_slaves = _measure(True, subscribers, operations, seed)
    without_slaves = _measure(False, subscribers, operations, seed)
    rows = [
        ["slave reads allowed (FE policy)",
         round(with_slaves["mean_latency_ms"], 2),
         round(with_slaves["slave_read_fraction"], 3),
         round(with_slaves["stale_fraction"], 3)],
        ["master-only reads (PS policy)",
         round(without_slaves["mean_latency_ms"], 2),
         round(without_slaves["slave_read_fraction"], 3),
         round(without_slaves["stale_fraction"], 3)],
    ]
    latency_win = (without_slaves["mean_latency_ms"]
                   / max(with_slaves["mean_latency_ms"], 1e-9))
    return ExperimentResult(
        experiment_id="E04",
        title="Reading from slave copies: latency vs staleness (F-A link)",
        paper_claim=("slave reads keep FE packet exchanges on the local "
                     "network (faster) at the price of occasionally stale "
                     "data; the PS must not take that risk"),
        headers=["read policy", "mean read latency (ms)",
                 "reads served by slaves", "stale read fraction"],
        rows=rows,
        finding=(f"local slave reads are {latency_win:.1f}x faster than "
                 f"forcing reads to the remote master, and "
                 f"{with_slaves['stale_fraction']:.1%} of them returned stale "
                 f"data under write-then-read traffic"),
        notes={
            "latency_win_factor": latency_win,
            "stale_fraction_with_slaves": with_slaves["stale_fraction"],
            "stale_fraction_master_only": without_slaves["stale_fraction"],
        },
    )
