"""Shared building blocks for the simulation-based experiments."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.api.operations import Read, Write
from repro.api.qos import QoSProfile
from repro.api.session import Session
from repro.core.config import ClientType, UDRConfig
from repro.core.udr import UDRNetworkFunction
from repro.frontends.hlr_fe import HlrFrontEnd
from repro.frontends.procedures import ProcedureCatalogue
from repro.ldap.operations import ModifyRequest, SearchRequest
from repro.provisioning.operations import ChangeServices, CreateSubscription
from repro.provisioning.system import ProvisioningSystem
from repro.subscriber.generator import SubscriberGenerator
from repro.subscriber.profile import SubscriberProfile


def build_loaded_udr(config: Optional[UDRConfig] = None,
                     subscribers: int = 90,
                     seed: int = 11) -> Tuple[UDRNetworkFunction,
                                              List[SubscriberProfile]]:
    """A started deployment with a home-region-consistent subscriber base."""
    config = config or UDRConfig(seed=seed)
    udr = UDRNetworkFunction(config)
    udr.start()
    generator = SubscriberGenerator(config.regions, seed=seed)
    profiles = generator.generate(subscribers)
    udr.load_subscriber_base(profiles)
    return udr, profiles


def percentile(sorted_values, fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[index]


def drive(udr: UDRNetworkFunction, generator, horizon: float = 3600.0):
    """Run one client generator to completion and return its value."""
    process = udr.sim.process(generator)
    udr.sim.run_until_triggered(process, limit=udr.sim.now + horizon)
    if not process.triggered:
        raise RuntimeError("operation did not finish within the horizon")
    if not process.ok:
        raise process.exception
    return process.value


def site_in_region(udr: UDRNetworkFunction, region: str):
    for site in udr.topology.sites:
        if site.region.name == region:
            return site
    raise KeyError(f"no site in region {region!r}")


def home_site_of(udr: UDRNetworkFunction, profile: SubscriberProfile):
    return site_in_region(udr, profile.current_region or profile.home_region)


def read_request(profile: SubscriberProfile) -> SearchRequest:
    """One subscriber read, built through the typed operation layer."""
    return Read(profile.identities.imsi).to_request()


def write_request(profile: SubscriberProfile, **changes) -> ModifyRequest:
    """One subscriber update, built through the typed operation layer."""
    return Write(profile.identities.imsi, changes=dict(changes)).to_request()


class ClientPool:
    """Lazily attached sessions, one per ``(client type, site)``.

    The experiments issue all traffic through the session API -- the legacy
    ``udr.execute``/``udr.submit`` shims count ``api.legacy_calls``, which
    CI gates at zero for experiment code -- and a pool per experiment keeps
    attachment names (and so the ``api.client.<name>.*`` metric scopes)
    stable across a run.  ``qos`` (optional) becomes every attachment's
    default profile.
    """

    def __init__(self, udr: UDRNetworkFunction, prefix: str = "exp",
                 qos: Optional[QoSProfile] = None):
        self.udr = udr
        self.prefix = prefix
        self.qos = qos
        self._sessions: Dict[Tuple[ClientType, object], Session] = {}

    def session(self, client_type: ClientType, site) -> Session:
        key = (client_type, site)
        if key not in self._sessions:
            client = self.udr.attach(
                f"{self.prefix}-{client_type.value}@{site.name}", site,
                client_type=client_type, qos=self.qos)
            self._sessions[key] = client.session()
        return self._sessions[key]

    def call(self, request, client_type: ClientType, site):
        """Generator: one request through the matching session, inline."""
        response = yield from self.session(client_type, site).call(request)
        return response

    def submit(self, request, client_type: ClientType, site,
               qos: Optional[QoSProfile] = None):
        """Issue one request without waiting; returns its ResponseFuture."""
        return self.session(client_type, site).submit(request, qos)


def run_fe_sample(udr: UDRNetworkFunction, profiles, operations: int,
                  rng_name: str = "exp.fe",
                  from_home_region: bool = True) -> Dict[str, float]:
    """Issue ``operations`` FE reads/updates and return outcome statistics."""
    rng = udr.sim.rng(rng_name)
    pool = ClientPool(udr, prefix=rng_name)
    succeeded = 0
    for index in range(operations):
        profile = profiles[index % len(profiles)]
        site = home_site_of(udr, profile) if from_home_region \
            else udr.topology.sites[index % len(udr.topology.sites)]
        if rng.random() < 0.8:
            request = read_request(profile)
        else:
            request = write_request(profile, servingMsc=f"msc-{index}")
        response = drive(udr, pool.call(request, ClientType.APPLICATION_FE,
                                        site))
        succeeded += int(response.ok)
    return {"attempted": operations, "succeeded": succeeded,
            "availability": succeeded / operations if operations else 1.0}


def run_ps_sample(udr: UDRNetworkFunction, profiles, operations: int,
                  ps_site=None) -> Dict[str, float]:
    """Issue ``operations`` provisioning writes and return outcome statistics."""
    ps_site = ps_site or udr.topology.sites[0]
    ps = ProvisioningSystem("exp-ps", udr, ps_site)
    for index in range(operations):
        profile = profiles[index % len(profiles)]
        drive(udr, ps.provision(ChangeServices(
            profile, changes={"svcBarPremium": bool(index % 2)})))
    return {"attempted": ps.operations_attempted,
            "succeeded": ps.operations_succeeded,
            "availability": ps.success_ratio(),
            "manual_interventions": ps.manual_interventions}


def fresh_profiles(udr: UDRNetworkFunction, count: int,
                   seed: int = 4242) -> List[SubscriberProfile]:
    """Profiles not present in the loaded base (for provisioning creates)."""
    generator = SubscriberGenerator(udr.config.regions, seed=seed)
    return generator.generate(count)


def run_front_end_traffic(udr: UDRNetworkFunction, profiles,
                          rate_per_second: float, duration: float,
                          name: str = "exp-fe") -> HlrFrontEnd:
    """Attach one HLR-FE per region and drive Poisson traffic on each."""
    front_ends = []
    by_region: Dict[str, List[SubscriberProfile]] = {}
    for profile in profiles:
        by_region.setdefault(profile.current_region or profile.home_region,
                             []).append(profile)
    for region, group in by_region.items():
        try:
            site = site_in_region(udr, region)
        except KeyError:
            site = udr.topology.sites[0]
        front_end = HlrFrontEnd(f"{name}-{region}", udr, site)
        udr.sim.process(front_end.traffic_driver(
            group, rate_per_second=rate_per_second, duration=duration))
        front_ends.append(front_end)
    udr.sim.run(until=udr.sim.now + duration + 60.0)
    combined = HlrFrontEnd(f"{name}-combined", udr, udr.topology.sites[0])
    combined.procedures_attempted = sum(fe.procedures_attempted
                                        for fe in front_ends)
    combined.procedures_succeeded = sum(fe.procedures_succeeded
                                        for fe in front_ends)
    return combined
