"""E10 — Data-location lookup cost: O(log N) maps vs O(1) alternatives (H-F link).

"A state-full data location stage's processing cost typically grows as
O(log N) [...] this impact is very small and can be neglected in most
calculations, hence the link has been represented with a dotted line."
The experiment measures the comparison count of identity-location-map lookups
as the subscriber count grows, next to the (constant) cost of consistent-hash
lookups and of the per-PoA location cache's fast path, confirming the growth
law, the "weak link" verdict, and that repeated resolutions of the same
identities collapse to O(1) once the read-through cache is warm.

The population is built incrementally -- each size extends the previous
one's identity-location map -- so every identity string is materialised
exactly once across the whole sweep.
"""

from __future__ import annotations

import math

from repro.core.location_cache import PoALocationCache
from repro.directory.consistent_hash import ConsistentHashRing
from repro.directory.identity_map import IdentityLocationMap
from repro.experiments.runner import ExperimentResult


def run(population_sizes=(1_000, 10_000, 100_000, 1_000_000),
        lookups_per_size: int = 200) -> ExperimentResult:
    locations = [f"se-{i}" for i in range(16)]
    ring = ConsistentHashRing(locations, virtual_nodes=64)
    index = IdentityLocationMap("imsi")
    rows = []
    map_costs = []
    loaded = 0
    for size in population_sizes:
        index.bulk_load(("%012d" % i, locations[i % 16])
                        for i in range(loaded, size))
        loaded = size
        index.reset_counters()
        step = max(1, size // lookups_per_size)
        probes = ["%012d" % i for i in range(0, size, step)]
        for identity in probes:
            index.locate(identity)
        ring.lookups = ring.comparisons = 0
        for identity in probes:
            ring.locate(f"imsi:{identity}")
        # The per-PoA cache fast path, exercised as the pipeline uses it:
        # a read-through miss consults the map and remembers the answer,
        # every repeat is an O(1) hit.
        cache = PoALocationCache(f"poa-e10-{size}")
        for _ in range(2):
            for identity in probes:
                if cache.get("imsi", identity) is None:
                    cache.store("imsi", identity, index.get(identity))
        repeat_hit_ratio = cache.stats.hits / len(probes)
        map_cost = index.average_lookup_cost()
        map_costs.append((size, map_cost))
        rows.append([
            size,
            round(map_cost, 2),
            round(math.log2(size), 2),
            round(ring.average_lookup_cost(), 2),
            round(repeat_hit_ratio, 2),
        ])
    # Growth law check: cost ratio across two decades of N tracks log2 ratio.
    smallest, largest = map_costs[0], map_costs[-1]
    measured_ratio = largest[1] / smallest[1]
    expected_ratio = math.log2(largest[0]) / math.log2(smallest[0])
    logarithmic = abs(measured_ratio - expected_ratio) / expected_ratio < 0.3
    weak_link = largest[1] < 64  # tens of comparisons even at 10^6 subscribers
    cache_fast_path = all(row[4] == 1.0 for row in rows)
    return ExperimentResult(
        experiment_id="E10",
        title="Data-location lookup cost vs subscriber count (H-F weak link)",
        paper_claim=("stateful maps cost O(log N) per lookup; the impact is "
                     "very small and can be neglected; hashing would be O(1) "
                     "but cannot support multiple identities or selective "
                     "placement"),
        headers=["subscribers", "map comparisons/lookup", "log2(N)",
                 "hash ring comparisons/lookup", "PoA cache repeat hit ratio"],
        rows=rows,
        finding=(f"map lookup cost grows as log2(N) (ratio {measured_ratio:.2f} "
                 f"vs expected {expected_ratio:.2f}); hash lookups stay flat; "
                 f"even at 10^6 subscribers the map needs ~{largest[1]:.0f} "
                 f"comparisons, supporting the 'weak link' verdict; warm "
                 f"per-PoA cache hits resolve repeats at O(1)"),
        notes={"logarithmic_growth": logarithmic, "weak_link": weak_link,
               "cache_fast_path": cache_fast_path},
    )
