"""E10 — Data-location lookup cost: O(log N) maps vs O(1) hashing (H-F link).

"A state-full data location stage's processing cost typically grows as
O(log N) [...] this impact is very small and can be neglected in most
calculations, hence the link has been represented with a dotted line."
The experiment measures the comparison count of identity-location-map lookups
as the subscriber count grows, next to the (constant) cost of consistent-hash
lookups, confirming both the growth law and the "weak link" verdict.
"""

from __future__ import annotations

import math

from repro.directory.consistent_hash import ConsistentHashRing
from repro.directory.identity_map import IdentityLocationMap
from repro.experiments.runner import ExperimentResult


def run(population_sizes=(1_000, 10_000, 100_000, 1_000_000),
        lookups_per_size: int = 200) -> ExperimentResult:
    ring = ConsistentHashRing([f"se-{i}" for i in range(16)], virtual_nodes=64)
    rows = []
    map_costs = []
    for size in population_sizes:
        index = IdentityLocationMap("imsi")
        index.bulk_load((f"{i:012d}", f"se-{i % 16}") for i in range(size))
        step = max(1, size // lookups_per_size)
        for i in range(0, size, step):
            index.locate(f"{i:012d}")
        ring.lookups = ring.comparisons = 0
        for i in range(0, size, step):
            ring.locate(f"imsi:{i:012d}")
        map_cost = index.average_lookup_cost()
        map_costs.append((size, map_cost))
        rows.append([
            size,
            round(map_cost, 2),
            round(math.log2(size), 2),
            round(ring.average_lookup_cost(), 2),
        ])
    # Growth law check: cost ratio across two decades of N tracks log2 ratio.
    smallest, largest = map_costs[0], map_costs[-1]
    measured_ratio = largest[1] / smallest[1]
    expected_ratio = math.log2(largest[0]) / math.log2(smallest[0])
    logarithmic = abs(measured_ratio - expected_ratio) / expected_ratio < 0.3
    weak_link = largest[1] < 64  # tens of comparisons even at 10^6 subscribers
    return ExperimentResult(
        experiment_id="E10",
        title="Data-location lookup cost vs subscriber count (H-F weak link)",
        paper_claim=("stateful maps cost O(log N) per lookup; the impact is "
                     "very small and can be neglected; hashing would be O(1) "
                     "but cannot support multiple identities or selective "
                     "placement"),
        headers=["subscribers", "map comparisons/lookup", "log2(N)",
                 "hash ring comparisons/lookup"],
        rows=rows,
        finding=(f"map lookup cost grows as log2(N) (ratio {measured_ratio:.2f} "
                 f"vs expected {expected_ratio:.2f}); hash lookups stay flat; "
                 f"even at 10^6 subscribers the map needs ~{largest[1]:.0f} "
                 f"comparisons, supporting the 'weak link' verdict"),
        notes={"logarithmic_growth": logarithmic, "weak_link": weak_link},
    )
