"""Shared result container and helpers for the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.metrics.report import format_markdown_table, format_table


@dataclass
class ExperimentResult:
    """One experiment's reproduced table plus its verdict."""

    experiment_id: str
    title: str
    paper_claim: str
    headers: List[str]
    rows: List[Sequence]
    finding: str = ""
    notes: Dict[str, object] = field(default_factory=dict)

    def to_table(self) -> str:
        header = (f"[{self.experiment_id}] {self.title}\n"
                  f"paper: {self.paper_claim}\n")
        table = format_table(self.headers, self.rows)
        footer = f"\nfinding: {self.finding}" if self.finding else ""
        return header + table + footer

    def to_markdown(self) -> str:
        lines = [f"### {self.experiment_id} — {self.title}", "",
                 f"*Paper claim*: {self.paper_claim}", ""]
        lines.append(format_markdown_table(self.headers, self.rows))
        if self.finding:
            lines.extend(["", f"*Measured*: {self.finding}"])
        return "\n".join(lines)

    def row_dicts(self) -> List[Dict[str, object]]:
        return [dict(zip(self.headers, row)) for row in self.rows]

    def __repr__(self) -> str:
        return (f"<ExperimentResult {self.experiment_id} rows={len(self.rows)}>")
