"""Experiment harnesses: one module per figure / quantitative claim.

Every experiment builds the system it needs, runs it, and returns an
:class:`~repro.experiments.runner.ExperimentResult` whose rows are the table
the paper (or its prose) implies.  The benchmark suite under ``benchmarks/``
runs each experiment and prints its table; ``EXPERIMENTS.md`` records the
paper-vs-measured comparison.

Index (see DESIGN.md section 4 for the full mapping):

========  ==========================================================
E01       Section 3.5 capacity figures
E02       Figures 5/6 FRASH trade-off graph and operating points
E03       Partition behaviour: FE vs PS availability under PC
E04       Read-from-slave latency vs staleness
E05       Durability: async vs dual-in-sequence vs quorum
E06       Checkpoint period sweep (F-R trade-off)
E07       Scale-out: provisioned vs cached vs hashed location
E08       Selective placement vs random sharding (H-R link)
E09       Multi-master divergence and consistency restoration
E10       Data-location lookup cost: O(log N) maps vs hashing
E11       Availability model vs the five-nines budget
E12       PACELC classification
E13       Provisioning backlog and the 30-second batch glitch
E14       Response-time budget vs the 10 ms target
E15       Batched pipelining throughput vs admission-wave size
========  ==========================================================
"""

from repro.experiments.runner import ExperimentResult

__all__ = ["ExperimentResult"]
