"""E05 — Durability versus latency across replication modes (sections 3.1, 4.2, 5).

Under asynchronous replication "a transaction committed on the master with
ACID guarantees might not be durable if a severe failure prevents the
transaction from being replicated to at least one slave"; section 5 proposes
dual-in-sequence replication and compares it with Cassandra-style quorum
commits whose "latency increase would be too high".

The experiment provisions a burst of writes under each replication mode, then
crashes the master element immediately (before checkpointing) and counts how
many committed transactions no surviving copy holds.  It reports, per mode,
the provisioning write latency and the transactions lost.
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import ClientType, ReplicationMode, UDRConfig
from repro.experiments.common import (
    ClientPool,
    build_loaded_udr,
    drive,
    write_request,
)
from repro.experiments.runner import ExperimentResult
from repro.sim import units


def _measure(mode: ReplicationMode, writes: int, seed: int,
             replication_interval: float) -> Dict[str, float]:
    config = UDRConfig(replication_mode=mode, seed=seed,
                       replication_interval=replication_interval)
    udr, profiles = build_loaded_udr(config, subscribers=90, seed=seed)
    # All writes target subscribers homed on one element so a single crash
    # threatens every one of them.
    locator = next(iter(udr.locators.values()))
    target_element = locator.locate("imsi", profiles[0].identities.imsi)
    victims = [p for p in profiles
               if locator.locate("imsi", p.identities.imsi) == target_element]
    ps_site = udr.elements[target_element].site
    pool = ClientPool(udr, prefix="e05")
    latencies = []
    expected_values = {}
    for index in range(writes):
        profile = victims[index % len(victims)]
        start = udr.sim.now
        response = drive(udr, pool.call(
            write_request(profile, svcCfu=f"+99{index:07d}"),
            ClientType.PROVISIONING, ps_site))
        if response.ok:
            latencies.append(udr.sim.now - start)
            # The latest committed value per key is what durability is about.
            expected_values[profile.key] = f"+99{index:07d}"
    # Crash the master before the async channels' next shipping round.
    replica_set = udr._replica_set_of_element(target_element)
    udr.elements[target_element].crash(timestamp=udr.sim.now)
    lost = 0
    for key, expected_value in expected_values.items():
        survived = False
        for name in replica_set.slave_names():
            value = replica_set.copy_on(name).store.get(key)
            if isinstance(value, dict) and value.get("svcCfu") == expected_value:
                survived = True
                break
        if not survived:
            lost += 1
    mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
    return {
        "mean_latency_ms": units.to_milliseconds(mean_latency),
        "committed": len(expected_values),
        "lost": lost,
    }


def run(writes: int = 20, seed: int = 23) -> ExperimentResult:
    # A long async shipping interval makes the exposure window visible with a
    # small number of operations; dual and quorum replicate on the commit
    # path, so the interval does not matter for them.
    results = {
        ReplicationMode.ASYNCHRONOUS: _measure(
            ReplicationMode.ASYNCHRONOUS, writes, seed,
            replication_interval=30.0),
        ReplicationMode.DUAL_IN_SEQUENCE: _measure(
            ReplicationMode.DUAL_IN_SEQUENCE, writes, seed,
            replication_interval=30.0),
        ReplicationMode.QUORUM: _measure(
            ReplicationMode.QUORUM, writes, seed, replication_interval=30.0),
    }
    rows = []
    for mode, stats in results.items():
        rows.append([
            mode.value,
            round(stats["mean_latency_ms"], 2),
            stats["committed"],
            stats["lost"],
        ])
    async_stats = results[ReplicationMode.ASYNCHRONOUS]
    dual_stats = results[ReplicationMode.DUAL_IN_SEQUENCE]
    quorum_stats = results[ReplicationMode.QUORUM]
    latency_penalty_dual = (dual_stats["mean_latency_ms"]
                            / max(async_stats["mean_latency_ms"], 1e-9))
    return ExperimentResult(
        experiment_id="E05",
        title="Durability vs latency: async, dual-in-sequence, quorum",
        paper_claim=("async replication can lose the latest commits on a "
                     "master crash; synchronous schemes close the window at "
                     "the price of (backbone) latency, quorum being the most "
                     "expensive"),
        headers=["replication mode", "write latency (ms)",
                 "committed writes", "writes lost after master crash"],
        rows=rows,
        finding=(f"async lost {async_stats['lost']} of "
                 f"{async_stats['committed']} commits; dual-in-sequence and "
                 f"quorum lost {dual_stats['lost']} and "
                 f"{quorum_stats['lost']} at {latency_penalty_dual:.1f}x+ the "
                 f"write latency"),
        notes={
            "async_lost": async_stats["lost"],
            "dual_lost": dual_stats["lost"],
            "quorum_lost": quorum_stats["lost"],
            "dual_latency_penalty": latency_penalty_dual,
        },
    )
