"""E19 — Overload armor: admission quotas, deadlines and shed under a flood.

The paper's capacity story (sections 2.3/4.1) assumes the UDR is *offered*
no more than it can drain; a real provisioning campaign does not read the
capacity plan.  This experiment sweeps the offered flood load from half the
measured drain capacity to 4x it and compares three arms on the same seeded
arrival trace (same deployment name, so the network latency streams match):

* **raw (PR 6)** -- sourceless dispatcher tickets, no sessions, no QoS:
  exactly the pre-armor behaviour.  Under overload the queue grows without
  bound, every wave is full of flood writes, and signalling drowns;
* **sessions, no QoS** -- the equivalence arm: quota off, shed off, empty
  profiles.  Result codes and signalling p99 must match the raw arm
  bit-for-bit (the armor is pay-for-what-you-arm);
* **armored** -- the full control loop.  The flood client carries a
  token-bucket :class:`~repro.core.config.RateLimit` (half the drain
  capacity, small burst), ``Priority.BULK`` and a deadline budget; the
  deployment arms :class:`~repro.core.config.ShedPolicy`.  Over-quota work
  is answered ``BUSY`` at ``session.submit`` before it can queue, queued
  flood that outlives its budget is expired *at the deadline* by the
  dispatcher's early-wake timeout (never later than one sim tick past it),
  and sustained depth trips shed mode (bulk deferred from wave membership,
  reads allowed onto slaves).

**Goodput** counts only useful answers: ``SUCCESS`` completions within
:data:`GOOD_LATENCY` of submission.  An overloaded system that eventually
answers everything late has throughput but no goodput -- which is why the
raw arm collapses past saturation while the armored arm holds.

The acceptance bar (the PR's gate): at the 2x-capacity point the armored
arm's goodput is >= 1.5x the raw arm's, its signalling p99 stays within
1.5x of the uncontended (no-flood) run, no expired ticket is answered later
than ``deadline + one sim tick``, and the no-QoS arm is bit-identical to
raw at every load point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.api.operations import Read, Write
from repro.api.qos import DEADLINE_TICK, QoSProfile
from repro.core.config import (
    ClientType,
    DispatchMode,
    Priority,
    RateLimit,
    ShedPolicy,
    UDRConfig,
)
from repro.experiments.common import (
    build_loaded_udr,
    drive,
    percentile,
    site_in_region,
)
from repro.experiments.runner import ExperimentResult

#: Virtual seconds the whole simulated run may take before we give up.
HORIZON = 7200.0
SIGNALLING_RATE = 100.0
#: A completion slower than this is not goodput: the serving front-end has
#: long since timed out the subscriber-facing procedure it was part of.
GOOD_LATENCY = 0.25
#: The deployment's linger budget: e16's throughput-tuned setting at
#: saturation.  Bulk-only waves shorter than the linger hide entirely
#: inside it from signalling's point of view, which is what lets the
#: armored arm hold signalling at the uncontended latency.
LINGER_TICKS = 50
#: The armored flood's completion budget (ticks of DEADLINE_TICK) -- one
#: linger window: flood the dispatcher cannot board promptly is answered
#: at its deadline instead of stretching the queue.
FLOOD_DEADLINE_TICKS = 50
#: The armored flood's admission quota, as a fraction of drain capacity:
#: the rest stays reserved for signalling and wave-formation headroom.
FLOOD_QUOTA_FRACTION = 0.25


def _home_site(udr, profile):
    try:
        return site_in_region(udr,
                              profile.current_region or profile.home_region)
    except KeyError:
        return udr.topology.sites[0]


def _workload(udr, profiles, signalling_ops: int, flood_ops: int):
    """(operation, site) streams: live signalling plus a provisioning flood."""
    signalling = []
    for index in range(signalling_ops):
        profile = profiles[index % len(profiles)]
        site = _home_site(udr, profile)
        if index % 3 == 2:
            signalling.append((Write(profile.identities.imsi,
                                     {"servingMsc": f"msc-{index}"}), site))
        else:
            signalling.append((Read(profile.identities.imsi), site))
    ps_site = udr.topology.sites[0]
    flood = [(Write(profiles[(index * 7) % len(profiles)].identities.imsi,
                    {"svcBarPremium": bool(index % 2)}), ps_site)
             for index in range(flood_ops)]
    return signalling, flood


def _build(seed: int, armored: bool):
    """One deployment per run; every arm shares the name (latency streams).

    The shed policy trips at a queue depth just past what signalling alone
    sustains, so any flood backlog flips the deployment into degrade mode
    -- bulk deferred out of signalling's waves, reads allowed onto slaves
    -- and hysteresis holds it there until admission has squeezed the
    queue back down.
    """
    config = UDRConfig(
        seed=seed, dispatch_mode=DispatchMode.DISPATCHER,
        batch_linger_ticks=LINGER_TICKS, name="e19-flood",
        shed_policy=ShedPolicy(alpha=0.5, trip_depth=8.0, clear_depth=2.0)
        if armored else None)
    return build_loaded_udr(config, subscribers=60, seed=seed)


def _arrivals(udr, stream: str, rate: float, pairs, submit, out: list):
    """Generator: Poisson arrivals of ``pairs`` through ``submit``."""
    rng = udr.sim.rng(stream)
    for operation, site in pairs:
        yield udr.sim.timeout(rng.expovariate(rate))
        out.append(submit(operation, site))


def _collect(start: float, sig_out, flood_out) -> Dict[str, object]:
    """Outcome statistics of one run (both handle kinds quack alike)."""
    def code(handle):
        return handle.response.result_code.name

    completions = [handle.completed_at for handle in sig_out + flood_out
                   if handle.completed_at is not None]
    elapsed = max(completions) - start if completions else 0.0
    good = sum(1 for handle in sig_out + flood_out
               if code(handle) == "SUCCESS"
               and handle.latency <= GOOD_LATENCY)
    sig_latencies = sorted(handle.latency * 1000.0 for handle in sig_out)
    flood_codes = [code(handle) for handle in flood_out]
    offered = len(flood_codes)
    return {
        "goodput": good / elapsed if elapsed else 0.0,
        "sig_p50_ms": percentile(sig_latencies, 0.50),
        "sig_p99_ms": percentile(sig_latencies, 0.99),
        "rejected_fraction": (flood_codes.count("BUSY") / offered
                              if offered else 0.0),
        "expired_fraction": (flood_codes.count("TIME_LIMIT_EXCEEDED")
                             / offered if offered else 0.0),
        "codes": [code(handle) for handle in sig_out] + flood_codes,
    }


def _late_expiries(futures) -> int:
    """Expired answers later than ``deadline + one sim tick`` (must be 0)."""
    late = 0
    for future in futures:
        if future.response is None or future.deadline is None:
            continue
        if future.response.result_code.name != "TIME_LIMIT_EXCEEDED":
            continue
        if future.completed_at > future.deadline + DEADLINE_TICK + 1e-9:
            late += 1
    return late


def _measure_capacity(seed: int, operations: int = 160) -> float:
    """Drain rate of a standing flood queue: the capacity the sweep is
    offered multiples of."""
    config = UDRConfig(seed=seed, dispatch_mode=DispatchMode.DISPATCHER,
                       batch_linger_ticks=LINGER_TICKS, name="e19-capacity")
    udr, profiles = build_loaded_udr(config, subscribers=60, seed=seed)
    _signalling, flood = _workload(udr, profiles, 0, operations)
    start = udr.sim.now
    tickets = [udr.dispatcher.submit(operation.to_request(),
                                     ClientType.PROVISIONING, site)
               for operation, site in flood]

    def wait_all():
        yield udr.sim.all_of([ticket.event for ticket in tickets])

    drive(udr, wait_all(), horizon=HORIZON)
    return operations / (max(t.completed_at for t in tickets) - start)


def _run_raw(signalling_ops: int, flood_ops: int,
             seed: int) -> Dict[str, object]:
    """The PR 6 baseline: sourceless QoS-less dispatcher tickets."""
    udr, profiles = _build(seed, armored=False)
    signalling, flood = _workload(udr, profiles, signalling_ops, flood_ops)
    sig_out: list = []
    flood_out: list = []
    sig_proc = udr.sim.process(_arrivals(
        udr, "e19.sig", SIGNALLING_RATE, signalling,
        lambda op, site: udr.dispatcher.submit(
            op.to_request(), ClientType.APPLICATION_FE, site), sig_out))
    flood_rate = flood_ops * SIGNALLING_RATE / max(signalling_ops, 1)
    flood_proc = udr.sim.process(_arrivals(
        udr, "e19.flood", flood_rate, flood,
        lambda op, site: udr.dispatcher.submit(
            op.to_request(), ClientType.PROVISIONING, site), flood_out))
    start = udr.sim.now

    def drain_all():
        yield udr.sim.all_of([sig_proc, flood_proc])
        if sig_out or flood_out:
            yield udr.sim.all_of([ticket.event
                                  for ticket in sig_out + flood_out])

    drive(udr, drain_all(), horizon=HORIZON)
    return _collect(start, sig_out, flood_out)


def _run_sessions(signalling_ops: int, flood_ops: int, seed: int,
                  flood_qos: Optional[QoSProfile]) -> Dict[str, object]:
    """The sessioned arms.

    ``flood_qos=None`` is the pure-equivalence arm (quota off, shed off,
    empty profiles -- must match the raw arm bit-for-bit); an armored
    profile also arms the deployment's shed policy.
    """
    udr, profiles = _build(seed, armored=flood_qos is not None)
    signalling, flood = _workload(udr, profiles, signalling_ops, flood_ops)
    sig_clients = {site: udr.attach(f"hlr-fe-{site.name}", site)
                   for site in udr.topology.sites}
    sig_sessions = {site: client.session()
                    for site, client in sig_clients.items()}
    ps_client = udr.attach("bulk-ps", udr.topology.sites[0],
                           client_type=ClientType.PROVISIONING,
                           qos=flood_qos)
    ps_session = ps_client.session()
    sig_out: list = []
    flood_out: list = []
    sig_proc = udr.sim.process(_arrivals(
        udr, "e19.sig", SIGNALLING_RATE, signalling,
        lambda op, site: sig_sessions[site].submit(op), sig_out))
    flood_rate = flood_ops * SIGNALLING_RATE / max(signalling_ops, 1)
    flood_proc = udr.sim.process(_arrivals(
        udr, "e19.flood", flood_rate, flood,
        lambda op, _site: ps_session.submit(op), flood_out))
    start = udr.sim.now

    def drain_all():
        yield udr.sim.all_of([sig_proc, flood_proc])
        for session in list(sig_sessions.values()) + [ps_session]:
            yield from session.drain()

    drive(udr, drain_all(), horizon=HORIZON)
    stats = _collect(start, sig_out, flood_out)
    stats["late_expiries"] = _late_expiries(flood_out)
    stats["shed_activations"] = udr.metrics.counter(
        "dispatcher.shed.activations")
    stats["admission_rejected"] = udr.metrics.counter(
        "api.admission.rejected")
    return stats


def run(load_multipliers: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
        signalling_ops: int = 100, seed: int = 23) -> ExperimentResult:
    capacity = _measure_capacity(seed)
    window = signalling_ops / SIGNALLING_RATE
    flood_quota = RateLimit(
        rate_per_second=capacity * FLOOD_QUOTA_FRACTION,
        burst=8)
    armored_qos = QoSProfile(priority=Priority.BULK,
                             deadline_ticks=FLOOD_DEADLINE_TICKS,
                             rate_limit=flood_quota)

    # The uncontended reference: the armored deployment serving signalling
    # alone.  The 1.5x p99 bar is measured against this run.
    uncontended = _run_sessions(signalling_ops, 0, seed, armored_qos)

    rows = []
    equivalence_ok = True
    late_expiries = 0
    by_multiplier: Dict[float, Dict[str, Dict[str, object]]] = {}
    for multiplier in load_multipliers:
        flood_ops = int(round(multiplier * capacity * window))
        raw = _run_raw(signalling_ops, flood_ops, seed)
        plain = _run_sessions(signalling_ops, flood_ops, seed, None)
        armored = _run_sessions(signalling_ops, flood_ops, seed, armored_qos)
        equivalence_ok &= (plain["codes"] == raw["codes"]
                           and abs(plain["sig_p99_ms"] - raw["sig_p99_ms"])
                           < 1e-6)
        late_expiries += armored["late_expiries"]
        by_multiplier[multiplier] = {"raw": raw, "armored": armored}
        for label, stats in (("raw (PR 6)", raw),
                             ("sessions, no QoS", plain),
                             ("armored", armored)):
            rows.append([
                f"{multiplier:g}x", label,
                round(stats["goodput"], 1),
                round(stats["sig_p99_ms"], 1),
                round(stats["rejected_fraction"], 3),
                round(stats["expired_fraction"], 3),
                stats.get("shed_activations", "-"),
            ])

    two_x = by_multiplier.get(2.0) or by_multiplier[max(by_multiplier)]
    goodput_gain = (two_x["armored"]["goodput"]
                    / max(two_x["raw"]["goodput"], 1e-9))
    p99_ratio = (two_x["armored"]["sig_p99_ms"]
                 / max(uncontended["sig_p99_ms"], 1e-9))
    worst = by_multiplier[max(by_multiplier)]
    return ExperimentResult(
        experiment_id="E19",
        title="Overload armor: quotas + deadlines + shed vs an unbounded flood",
        paper_claim=("the UDR must hold its signalling latency budget "
                     "(section 2.3's 10 ms target) even when provisioning "
                     "is offered faster than the engineered drain rate "
                     "(section 4.1); admission control has to answer the "
                     "excess at the front door, not let it queue"),
        headers=["offered load", "arm", "goodput (ops/s)",
                 "signalling p99 (ms)", "rejected@admission",
                 "expired-in-queue", "shed trips"],
        rows=rows,
        finding=(f"drain capacity measures {capacity:.0f} ops/s; at 2x "
                 f"offered load the raw arm's goodput collapses to "
                 f"{two_x['raw']['goodput']:.0f} ops/s (signalling p99 "
                 f"{two_x['raw']['sig_p99_ms']:.0f} ms) while the armored "
                 f"arm holds {two_x['armored']['goodput']:.0f} ops/s "
                 f"({goodput_gain:.1f}x) with signalling p99 at "
                 f"{two_x['armored']['sig_p99_ms']:.1f} ms -- "
                 f"{p99_ratio:.2f}x the uncontended "
                 f"{uncontended['sig_p99_ms']:.1f} ms; the quota answers "
                 f"{two_x['armored']['rejected_fraction']:.0%} of the flood "
                 f"BUSY at admission and every queue expiry lands within "
                 f"one tick of its deadline"),
        notes={
            "capacity_ops": round(capacity, 1),
            "goodput_armored_at_2x": round(two_x["armored"]["goodput"], 1),
            "goodput_raw_at_2x": round(two_x["raw"]["goodput"], 1),
            "goodput_gain_at_2x": round(goodput_gain, 2),
            "goodput_gain_1_5x": goodput_gain >= 1.5,
            "sig_p99_uncontended_ms": round(uncontended["sig_p99_ms"], 1),
            "sig_p99_armored_at_2x_ms":
                round(two_x["armored"]["sig_p99_ms"], 1),
            "sig_p99_within_1_5x_uncontended": p99_ratio <= 1.5,
            "late_expiries": late_expiries,
            "expiry_within_one_tick": late_expiries == 0,
            "no_qos_bit_identical_to_raw": equivalence_ok,
            "rejected_fraction_at_4x":
                round(worst["armored"]["rejected_fraction"], 3),
            "expired_fraction_at_4x":
                round(worst["armored"]["expired_fraction"], 3),
            "shed_tripped_at_4x":
                worst["armored"]["shed_activations"] > 0,
        },
    )
