"""E18 — Session QoS: deadline + priority protect signalling under floods.

The session API (PR 5) moves QoS from the global config to the client:
``udr.attach(name, site, qos=...)`` gives each caller a typed handle whose
:class:`~repro.api.qos.QoSProfile` (priority class, retry policy,
**deadline ticks**) rides every operation through dispatcher wave formation
and the pipeline's retry stage.  This experiment measures what that buys in
the paper's nightmare scenario (section 3.3/4.1): a provisioning flood
arriving an order of magnitude faster than the UDR drains it, while live
signalling traffic must keep its latency budget.

Five runs over one seeded trace (same arrival processes, same deployment
name so the network latency streams match):

* **legacy** -- both streams enter as raw sourceless dispatcher tickets
  (what the deprecated ``udr.submit`` shim produced): no sessions, no QoS,
  the flood rides the default provisioning class and fills every wave it
  can;
* **session, no QoS** -- the same trace through sessions with empty
  profiles: the equivalence row (result codes must match legacy exactly);
* **session + priority** -- the flood attaches as ``Priority.BULK``
  (weight 1 vs signalling's 4), so wave membership starves it politely;
* **session + priority + deadline** (two budgets) -- flood operations
  also carry ``deadline_ticks``: whatever still sits in the dispatch
  queue past its budget is answered ``TIME_LIMIT_EXCEEDED`` at wave
  formation *without consuming a wave slot or a pipeline hop*, so the
  queue collapses to live work and signalling latency drops to the
  uncontended regime.

The acceptance bar (the PR's gate): signalling p99 with deadline+priority
QoS improves >= 2x over the undifferentiated legacy path, and the no-QoS
session run answers bit-identical result codes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.api.operations import Read, Write
from repro.api.qos import QoSProfile
from repro.core.config import (
    ClientType,
    DispatchMode,
    Priority,
    UDRConfig,
)
from repro.experiments.common import (
    build_loaded_udr,
    drive,
    percentile,
    site_in_region,
)
from repro.experiments.runner import ExperimentResult

#: Virtual seconds the whole simulated run may take before we give up.
HORIZON = 7200.0
SIGNALLING_RATE = 150.0
FLOOD_RATE = 2500.0


def _home_site(udr, profile):
    try:
        return site_in_region(udr,
                              profile.current_region or profile.home_region)
    except KeyError:
        return udr.topology.sites[0]


def _workload(udr, profiles, signalling_ops: int, flood_ops: int):
    """(operation, site) streams: live signalling plus a provisioning flood."""
    signalling = []
    for index in range(signalling_ops):
        profile = profiles[index % len(profiles)]
        site = _home_site(udr, profile)
        if index % 3 == 2:
            signalling.append((Write(profile.identities.imsi,
                                     {"servingMsc": f"msc-{index}"}), site))
        else:
            signalling.append((Read(profile.identities.imsi), site))
    ps_site = udr.topology.sites[0]
    flood = [(Write(profiles[(index * 7) % len(profiles)].identities.imsi,
                    {"svcBarPremium": bool(index % 2)}), ps_site)
             for index in range(flood_ops)]
    return signalling, flood


def _build(seed: int, linger_ticks: int):
    config = UDRConfig(seed=seed, dispatch_mode=DispatchMode.DISPATCHER,
                       batch_linger_ticks=linger_ticks, name="e18-mixed")
    return build_loaded_udr(config, subscribers=60, seed=seed)


def _arrivals(udr, stream: str, rate: float, pairs, submit, out: list):
    """Generator: Poisson arrivals of ``pairs`` through ``submit``."""
    rng = udr.sim.rng(stream)
    for operation, site in pairs:
        yield udr.sim.timeout(rng.expovariate(rate))
        out.append(submit(operation, site))


def _latency_ms(handle) -> float:
    # Legacy DispatchTickets and session ResponseFutures both expose the
    # client-perceived span; normalise to milliseconds.
    return handle.latency * 1000.0


def _collect(udr, sig_out, flood_out) -> Dict[str, object]:
    latencies = sorted(_latency_ms(handle) for handle in sig_out)
    sig_codes = [handle.response.result_code.name for handle in sig_out]
    flood_codes = [handle.response.result_code.name for handle in flood_out]
    expired = sum(1 for code in flood_codes
                  if code == "TIME_LIMIT_EXCEEDED")
    return {
        "p50_ms": percentile(latencies, 0.50),
        "p99_ms": percentile(latencies, 0.99),
        "sig_ok": sum(1 for code in sig_codes if code == "SUCCESS"),
        "flood_completed": len(flood_codes) - expired,
        "flood_expired": expired,
        "codes": sig_codes + flood_codes,
    }


def _wait_all(udr, session_like) -> None:
    drive(udr, session_like.drain(), horizon=HORIZON)


def _run_legacy(signalling_ops: int, flood_ops: int, seed: int,
                linger_ticks: int) -> Dict[str, object]:
    """The undifferentiated path: sourceless, QoS-less dispatcher tickets.

    This is exactly what the deprecated ``udr.submit`` shim did (minus its
    ``api.legacy_calls`` bookkeeping, which CI now gates at zero for
    experiment code): raw tickets with per-ticket events, no sessions, no
    priority override, no deadline -- the baseline every sessioned row is
    compared against.
    """
    udr, profiles = _build(seed, linger_ticks)
    signalling, flood = _workload(udr, profiles, signalling_ops, flood_ops)
    sig_out: list = []
    flood_out: list = []
    sig_proc = udr.sim.process(_arrivals(
        udr, "e18.sig", SIGNALLING_RATE, signalling,
        lambda op, site: udr.dispatcher.submit(op.to_request(),
                                               ClientType.APPLICATION_FE,
                                               site),
        sig_out))
    flood_proc = udr.sim.process(_arrivals(
        udr, "e18.flood", FLOOD_RATE, flood,
        lambda op, site: udr.dispatcher.submit(op.to_request(),
                                               ClientType.PROVISIONING, site),
        flood_out))
    drive(udr, _drain_events(udr, sig_proc, flood_proc, sig_out, flood_out),
          horizon=HORIZON)
    return _collect(udr, sig_out, flood_out)


def _drain_events(udr, sig_proc, flood_proc, sig_out, flood_out):
    """Generator: wait for both arrival processes, then every ticket."""
    yield udr.sim.all_of([sig_proc, flood_proc])
    yield udr.sim.all_of([ticket.event for ticket in sig_out + flood_out])


def _run_sessions(signalling_ops: int, flood_ops: int, seed: int,
                  linger_ticks: int,
                  flood_qos: Optional[QoSProfile]) -> Dict[str, object]:
    """The sessioned path; ``flood_qos=None`` is the pure-equivalence row."""
    udr, profiles = _build(seed, linger_ticks)
    signalling, flood = _workload(udr, profiles, signalling_ops, flood_ops)
    # One signalling client per site, mirroring real per-region front-ends;
    # one bulk provisioning client carrying the flood's QoS profile.
    sig_clients = {site: udr.attach(f"hlr-fe-{site.name}", site)
                   for site in udr.topology.sites}
    sig_sessions = {site: client.session()
                    for site, client in sig_clients.items()}
    ps_client = udr.attach("bulk-ps", udr.topology.sites[0],
                           client_type=ClientType.PROVISIONING,
                           qos=flood_qos)
    ps_session = ps_client.session()
    sig_out: list = []
    flood_out: list = []
    sig_proc = udr.sim.process(_arrivals(
        udr, "e18.sig", SIGNALLING_RATE, signalling,
        lambda op, site: sig_sessions[site].submit(op), sig_out))
    flood_proc = udr.sim.process(_arrivals(
        udr, "e18.flood", FLOOD_RATE, flood,
        lambda op, _site: ps_session.submit(op), flood_out))

    def drain_all():
        yield udr.sim.all_of([sig_proc, flood_proc])
        for session in list(sig_sessions.values()) + [ps_session]:
            yield from session.drain()

    drive(udr, drain_all(), horizon=HORIZON)
    return _collect(udr, sig_out, flood_out)


def run(deadline_budgets: Tuple[int, ...] = (100, 25),
        signalling_ops: int = 120, flood_ops: int = 600,
        linger_ticks: int = 5, seed: int = 21) -> ExperimentResult:
    legacy = _run_legacy(signalling_ops, flood_ops, seed, linger_ticks)
    no_qos = _run_sessions(signalling_ops, flood_ops, seed, linger_ticks,
                           flood_qos=None)
    # The priority-only run is its own row (not part of the deadline
    # sweep): it isolates how much the admission class buys without load
    # shedding, and anchors the finding text.
    priority_only = _run_sessions(
        signalling_ops, flood_ops, seed, linger_ticks,
        flood_qos=QoSProfile(priority=Priority.BULK))
    rows = [
        ["legacy shim", "-", "-", round(legacy["p50_ms"], 1),
         round(legacy["p99_ms"], 1), legacy["flood_completed"],
         legacy["flood_expired"]],
        ["session, no QoS", "-", "-", round(no_qos["p50_ms"], 1),
         round(no_qos["p99_ms"], 1), no_qos["flood_completed"],
         no_qos["flood_expired"]],
        ["session + QoS", "bulk", "-", round(priority_only["p50_ms"], 1),
         round(priority_only["p99_ms"], 1),
         priority_only["flood_completed"],
         priority_only["flood_expired"]],
    ]
    best_p99 = priority_only["p99_ms"]
    for deadline_ticks in deadline_budgets:
        qos = QoSProfile(priority=Priority.BULK,
                         deadline_ticks=deadline_ticks)
        result = _run_sessions(signalling_ops, flood_ops, seed, linger_ticks,
                               flood_qos=qos)
        rows.append(["session + QoS", "bulk", deadline_ticks,
                     round(result["p50_ms"], 1), round(result["p99_ms"], 1),
                     result["flood_completed"], result["flood_expired"]])
        best_p99 = min(best_p99, result["p99_ms"])
    improvement = legacy["p99_ms"] / best_p99 if best_p99 else 0.0
    priority_only_p99 = priority_only["p99_ms"]
    return ExperimentResult(
        experiment_id="E18",
        title="Session QoS: deadlines + priority under a provisioning flood",
        paper_claim=("live signalling must hold its latency budget while "
                     "provisioning arrives in bursts an order of magnitude "
                     "above the drain rate (sections 3.3/4.1); the paper "
                     "splits the clients, the session API splits their QoS"),
        headers=["path", "flood priority", "flood deadline (ticks)",
                 "signalling p50 (ms)", "signalling p99 (ms)",
                 "flood completed", "flood expired"],
        rows=rows,
        finding=(f"under a {FLOOD_RATE:g}/s provisioning flood the "
                 f"undifferentiated legacy path drags signalling p99 to "
                 f"{legacy['p99_ms']:.0f} ms; the bulk priority class alone "
                 f"({priority_only_p99:.0f} ms p99) cannot help while waves "
                 f"have spare capacity for flood writes, but adding a "
                 f"deadline budget expires the queued flood at wave "
                 f"formation -- zero pipeline hops -- and signalling p99 "
                 f"drops to {best_p99:.0f} ms ({improvement:.1f}x better, "
                 f"p50 from {legacy['p50_ms']:.0f} ms to single-digit ms)"),
        notes={
            "signalling_p99_legacy_ms": round(legacy["p99_ms"], 1),
            "signalling_p99_best_qos_ms": round(best_p99, 1),
            "signalling_p99_improvement": round(improvement, 2),
            "p99_improved_2x": improvement >= 2.0,
            "no_qos_codes_match_legacy": no_qos["codes"] == legacy["codes"],
            "no_qos_p99_matches_legacy":
                abs(no_qos["p99_ms"] - legacy["p99_ms"]) < 1e-6,
            "signalling_all_ok":
                legacy["sig_ok"] == signalling_ops
                and no_qos["sig_ok"] == signalling_ops,
        },
    )
