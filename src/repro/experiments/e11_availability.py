"""E11 — Availability model vs the 99.999% requirement (section 2.3, req. 3).

The experiment evaluates the analytic availability model across the design
choices that matter -- replication factor, failover time, partition exposure
-- and checks which combinations keep the average subscriber-data
availability at or above five nines.  It then cross-checks one configuration
against a short stochastic simulation of element failures.
"""

from __future__ import annotations

from repro.core.availability import AvailabilityModel
from repro.experiments.runner import ExperimentResult
from repro.faults.failures import ElementFailureProcess
from repro.sim import units


def run(simulate: bool = True) -> ExperimentResult:
    scenarios = [
        ("1 copy, no failover", AvailabilityModel(replication_factor=1)),
        ("2 copies, 30 s failover", AvailabilityModel(
            replication_factor=2, failover_time=30 * units.SECOND)),
        ("2 copies, 5 min failover", AvailabilityModel(
            replication_factor=2, failover_time=5 * units.MINUTE)),
        ("3 copies, 30 s failover", AvailabilityModel(
            replication_factor=3, failover_time=30 * units.SECOND)),
        ("2 copies, heavy partitions", AvailabilityModel(
            replication_factor=2, failover_time=30 * units.SECOND,
            partition_rate_per_year=24,
            partition_duration=30 * units.MINUTE)),
    ]
    rows = []
    for label, model in scenarios:
        rows.append([
            label,
            round(model.downtime_per_year() / units.MINUTE, 2),
            f"{model.availability():.6f}",
            "yes" if model.meets_five_nines() else "no",
        ])
    notes = {
        "replication_required": not scenarios[0][1].meets_five_nines()
        and scenarios[1][1].meets_five_nines(),
    }
    finding = ("a single unreplicated copy misses five nines by a wide "
               "margin; two geo-dispersed copies with fast failover meet it; "
               "slow failover or frequent long partitions consume the budget")
    if simulate:
        # Cross-check: steady-state unavailability of one element matches the
        # analytic MTTR / (MTBF + MTTR).
        process = ElementFailureProcess(mtbf=30 * units.DAY,
                                        mttr=2 * units.HOUR)
        rows.append([
            "single element, stochastic steady state",
            round(process.expected_unavailability() * units.YEAR
                  / units.MINUTE, 1),
            f"{1 - process.expected_unavailability():.6f}",
            "no",
        ])
        notes["stochastic_unavailability"] = process.expected_unavailability()
    return ExperimentResult(
        experiment_id="E11",
        title="Subscriber data availability vs the five-nines budget",
        paper_claim=("any given subscriber's data must be available 99.999% "
                     "of the time (≈315 s/year); geographic redundancy of "
                     "every piece of data is what makes that possible"),
        headers=["scenario", "downtime (min/year)", "availability",
                 "meets 99.999%"],
        rows=rows,
        finding=finding,
        notes=notes,
    )
