"""E17 — Replication multiplexing: event-driven site-pair shipping.

The paper's asynchronous log shipping (section 3.3.1 decision 2) was
reproduced literally: one background process per ``(partition, slave)``
channel polling on a fixed cadence, one network transfer per channel per
round.  That is P*(R-1) simulator wakeups per interval and as many
transfers -- even when many channels ship over the same backbone link, and
even when nothing committed at all.  The
:class:`~repro.replication.mux.ReplicationMux` collapses the fan-in: it
wakes *on commit* (a WAL append hook), aligns shipping to the same
replication-interval grid the polling loops ticked on (so replica freshness
is unchanged), and ships every channel of one ``(master site, slave site)``
link as a single transfer with one framing charge.

Three claims are measured:

* **fan-in** -- on a 24-partition, replication-factor-3 deployment
  (48 channels over 6 site links) a continuous commit stream needs >= 5x
  fewer simulator wakeups and network transfers at equal replica freshness
  (mean sampled lag);
* **adaptive lingering** -- re-running the e16 linger-vs-rate sweep with
  ``UDRConfig.adaptive_linger`` shows the EWMA controller within 5% of the
  *best* static budget at every arrival rate, with no per-rate retuning;
* **semantics** -- the E04 staleness and E05 lost-transaction experiments
  produce the same counts under identical seeds with the mux on and off
  (the grid alignment plus the replication-dedicated randomness streams
  make the two shipping modes byte-comparable).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.config import (
    AdaptiveLingerPolicy,
    ClientType,
    DispatchMode,
    UDRConfig,
)
from repro.api.qos import QoSProfile
from repro.core.udr import UDRNetworkFunction
from repro.experiments.common import (
    ClientPool,
    build_loaded_udr,
    drive,
    read_request,
    site_in_region,
    write_request,
)
from repro.experiments.runner import ExperimentResult

#: Virtual seconds the whole simulated run may take before we give up.
HORIZON = 7200.0


# -- scenario A: the shipping fan-in ------------------------------------------------


def _fanin_config(mux_enabled: bool, seed: int) -> UDRConfig:
    """24 partitions, replication factor 3: 48 channels over 6 site links."""
    return UDRConfig(seed=seed, storage_elements_per_site=8,
                     replication_factor=3, replication_mux=mux_enabled,
                     name=f"e17-fanin-{'mux' if mux_enabled else 'poll'}")


def _measure_fanin(mux_enabled: bool, seed: int, rate: float,
                   commits: int, sample_period: float) -> Dict[str, float]:
    """Drive a round-robin commit stream; count wakeups/transfers, sample lag.

    Commits go straight to the master copies (no operation traffic), so
    every network message of the run is a replication shipment and the
    commit schedule is identical between the two modes.
    """
    config = _fanin_config(mux_enabled, seed)
    udr = UDRNetworkFunction(config)
    udr.start()
    partitions = sorted(udr.replica_sets)
    lag_samples: List[int] = []

    def committer():
        rng = udr.sim.rng("e17.commits")
        for index in range(commits):
            yield udr.sim.timeout(rng.expovariate(rate))
            replica_set = udr.replica_sets[partitions[index % len(partitions)]]
            transaction = replica_set.master_copy.transactions.begin()
            transaction.write(f"e17:{index}", {"v": index})
            transaction.commit(timestamp=udr.sim.now)

    def sampler():
        while True:
            yield udr.sim.timeout(sample_period)
            lag_samples.append(sum(channel.lag().records
                                   for channel in udr.channels))

    process = udr.sim.process(committer(), name="e17-committer")
    udr.sim.process(sampler(), name="e17-lag-sampler")
    udr.sim.run_until_triggered(process, limit=HORIZON)
    # Quiesce long enough for the last window to drain in both modes even
    # if its shipment is *lost*: a backbone loss stalls for its 1 s
    # timeout before the retry, so the applied-record totals can only be
    # compared exactly past that window.
    udr.sim.run_for(2.5 + 10 * config.replication_interval)
    horizon = udr.sim.now
    wakeups = (udr.replication_mux.wakeups if mux_enabled
               else sum(channel.wakeups for channel in udr.channels))
    transfers = udr.network.stats.total_messages()
    payload_bytes = sum(udr.network.stats.bytes.values())
    applied = sum(channel.records_shipped for channel in udr.channels)
    udr.stop()
    return {
        "wakeups": wakeups,
        "transfers": transfers,
        "kbytes": payload_bytes / 1000.0,
        "mean_lag_records": (sum(lag_samples) / len(lag_samples)
                             if lag_samples else 0.0),
        "records_applied": applied,
        "horizon": horizon,
    }


# -- scenario B: adaptive lingering over the e16 sweep ------------------------------


def _sweep_workload(udr, profiles, operations: int):
    """The e16 mixed stream: FE reads/updates plus PS changes."""
    from repro.experiments.e16_dispatcher_latency import _workload
    return _workload(udr, profiles, operations)


def _run_sweep_point(arrival_rate: float, linger_ticks: int,
                     adaptive: Optional[AdaptiveLingerPolicy],
                     operations: int, seed: int) -> float:
    """Sustained ops/s of one dispatcher run (static or adaptive budget)."""
    label = "adaptive" if adaptive is not None else f"l{linger_ticks}"
    config = UDRConfig(seed=seed, dispatch_mode=DispatchMode.DISPATCHER,
                       batch_linger_ticks=linger_ticks,
                       adaptive_linger=adaptive, coalesce_writes=True,
                       name=f"e17-r{arrival_rate:g}-{label}")
    udr, profiles = build_loaded_udr(config, subscribers=48, seed=seed)
    items = _sweep_workload(udr, profiles, operations)
    pool = ClientPool(udr, prefix="e17")
    futures = []

    def arrivals():
        rng = udr.sim.rng("e17.arrivals")
        for item in items:
            yield udr.sim.timeout(rng.expovariate(arrival_rate))
            futures.append(pool.submit(
                item.request, item.client_type, item.client_site,
                qos=QoSProfile(priority=item.priority)))

    def wait_all():
        for future in futures:
            yield from future.wait()

    start = udr.sim.now
    drive(udr, arrivals(), horizon=HORIZON)
    drive(udr, wait_all(), horizon=HORIZON)
    elapsed = max(future.completed_at for future in futures) - start
    return operations / elapsed


# -- scenario C: E04/E05 semantics under identical seeds ----------------------------


def _stale_read_fraction(mux_enabled: bool, subscribers: int,
                         operations: int, seed: int) -> float:
    """The E04 write-then-remote-read loop; returns the stale fraction."""
    config = UDRConfig(seed=seed, replication_mux=mux_enabled,
                       name="e17-e04")
    udr, profiles = build_loaded_udr(config, subscribers=subscribers,
                                     seed=seed)
    pool = ClientPool(udr, prefix="e17")
    for index in range(operations):
        profile = profiles[index % len(profiles)]
        home_site = site_in_region(udr, profile.home_region)
        away_region = next(region for region in config.regions
                           if region != profile.home_region)
        away_site = site_in_region(udr, away_region)
        drive(udr, pool.call(
            write_request(profile, servingMsc=f"msc-{index}"),
            ClientType.APPLICATION_FE, home_site))
        drive(udr, pool.call(
            read_request(profile), ClientType.APPLICATION_FE, away_site))
    consistency = udr.metrics.consistency(ClientType.APPLICATION_FE.value)
    return consistency.stale_read_fraction()


def _lost_transactions(mux_enabled: bool, writes: int, seed: int) -> int:
    """The E05 master-crash exposure window; returns writes lost."""
    config = UDRConfig(seed=seed, replication_mux=mux_enabled,
                       replication_interval=30.0, name="e17-e05")
    udr, profiles = build_loaded_udr(config, subscribers=60, seed=seed)
    locator = next(iter(udr.locators.values()))
    target_element = locator.locate("imsi", profiles[0].identities.imsi)
    victims = [p for p in profiles
               if locator.locate("imsi", p.identities.imsi) == target_element]
    ps_site = udr.elements[target_element].site
    pool = ClientPool(udr, prefix="e17")
    expected_values = {}
    for index in range(writes):
        profile = victims[index % len(victims)]
        response = drive(udr, pool.call(
            write_request(profile, svcCfu=f"+88{index:07d}"),
            ClientType.PROVISIONING, ps_site))
        if response.ok:
            expected_values[profile.key] = f"+88{index:07d}"
    replica_set = udr._replica_set_of_element(target_element)
    udr.elements[target_element].crash(timestamp=udr.sim.now)
    lost = 0
    for key, expected in expected_values.items():
        if not any(
                isinstance(replica_set.copy_on(name).store.get(key), dict)
                and replica_set.copy_on(name).store.get(key).get("svcCfu")
                == expected
                for name in replica_set.slave_names()):
            lost += 1
    return lost


# -- the experiment -----------------------------------------------------------------


def run(commit_rate: float = 600.0, commits: int = 1200,
        arrival_rates: Tuple[float, ...] = (50.0, 150.0, 400.0),
        linger_budgets: Tuple[int, ...] = (0, 5, 50),
        sweep_operations: int = 240, seed: int = 17) -> ExperimentResult:
    # (a) the shipping fan-in, polling vs mux, identical commit schedule.
    polling = _measure_fanin(False, seed, commit_rate, commits,
                             sample_period=0.01)
    muxed = _measure_fanin(True, seed, commit_rate, commits,
                           sample_period=0.01)
    wakeup_reduction = polling["wakeups"] / max(1, muxed["wakeups"])
    transfer_reduction = polling["transfers"] / max(1, muxed["transfers"])
    freshness_preserved = (muxed["mean_lag_records"]
                           <= polling["mean_lag_records"] * 1.10 + 0.5)
    rows = [
        ["fan-in", "per-channel polling", polling["wakeups"],
         polling["transfers"], round(polling["kbytes"], 1),
         round(polling["mean_lag_records"], 2), ""],
        ["fan-in", "site-pair mux", muxed["wakeups"], muxed["transfers"],
         round(muxed["kbytes"], 1), round(muxed["mean_lag_records"], 2), ""],
    ]

    # (b) adaptive lingering over the e16 rate sweep.  A single 240-request
    # run is dominated by wave-phasing luck (an extra under-filled tail
    # wave swings throughput by ~10%), so every point is the mean of two
    # seeded runs -- statics and adaptive alike.
    adaptive_policy = AdaptiveLingerPolicy(min_ticks=min(linger_budgets),
                                           max_ticks=max(linger_budgets))
    sweep_seeds = (seed, seed + 12)

    def sweep_point(arrival_rate, ticks, policy):
        runs = [_run_sweep_point(arrival_rate, ticks, policy,
                                 sweep_operations, sweep_seed)
                for sweep_seed in sweep_seeds]
        return sum(runs) / len(runs)

    adaptive_ratios = {}
    for arrival_rate in arrival_rates:
        static_ops = {ticks: sweep_point(arrival_rate, ticks, None)
                      for ticks in linger_budgets}
        best_ticks, best_ops = max(static_ops.items(),
                                   key=lambda pair: pair[1])
        adaptive_ops = sweep_point(arrival_rate, 0, adaptive_policy)
        adaptive_ratios[arrival_rate] = adaptive_ops / best_ops
        rows.append([f"linger @{arrival_rate:g}/s",
                     f"best static ({best_ticks} ticks)", "", "", "", "",
                     round(best_ops, 1)])
        rows.append([f"linger @{arrival_rate:g}/s", "adaptive", "", "", "",
                     "", round(adaptive_ops, 1)])
    adaptive_within_5pct = all(ratio >= 0.95
                               for ratio in adaptive_ratios.values())

    # (c) E04/E05 semantics, mux on vs off under identical seeds.
    stale_poll = _stale_read_fraction(False, subscribers=36, operations=30,
                                      seed=seed)
    stale_mux = _stale_read_fraction(True, subscribers=36, operations=30,
                                     seed=seed)
    lost_poll = _lost_transactions(False, writes=12, seed=seed)
    lost_mux = _lost_transactions(True, writes=12, seed=seed)
    rows.append(["semantics", "E04 stale fraction (poll vs mux)", "", "", "",
                 f"{stale_poll:.3f} / {stale_mux:.3f}", ""])
    rows.append(["semantics", "E05 writes lost (poll vs mux)", "", "", "",
                 f"{lost_poll} / {lost_mux}", ""])

    return ExperimentResult(
        experiment_id="E17",
        title="Replication multiplexing: event-driven site-pair shipping",
        paper_claim=("asynchronous per-(partition, slave) shipping decouples "
                     "transaction latency from propagation (section 3.3.1); "
                     "aggregating the streams per site link keeps that "
                     "decoupling while removing the per-channel cadence "
                     "cost, and the dispatcher's linger budget should track "
                     "the arrival rate instead of being retuned per load"),
        headers=["scenario", "variant", "wakeups", "transfers", "kbytes",
                 "lag / semantics", "ops/s"],
        rows=rows,
        finding=(f"the mux ships the same {muxed['records_applied']} records "
                 f"with {wakeup_reduction:.1f}x fewer simulator wakeups and "
                 f"{transfer_reduction:.1f}x fewer network transfers at "
                 f"equal freshness ({muxed['mean_lag_records']:.2f} vs "
                 f"{polling['mean_lag_records']:.2f} mean records behind); "
                 f"adaptive lingering stays within "
                 f"{(1 - min(adaptive_ratios.values())) * 100:.1f}% of the "
                 f"best static budget at every rate; E04/E05 counts are "
                 f"unchanged"),
        notes={
            "wakeup_reduction": round(wakeup_reduction, 2),
            "transfer_reduction": round(transfer_reduction, 2),
            "records_applied_equal": polling["records_applied"]
            == muxed["records_applied"],
            "mean_lag_polling": round(polling["mean_lag_records"], 3),
            "mean_lag_mux": round(muxed["mean_lag_records"], 3),
            "freshness_preserved": freshness_preserved,
            "adaptive_ratios": {f"{rate:g}": round(ratio, 3)
                                for rate, ratio in adaptive_ratios.items()},
            "adaptive_within_5pct": adaptive_within_5pct,
            "e04_stale_fraction_polling": round(stale_poll, 4),
            "e04_stale_fraction_mux": round(stale_mux, 4),
            "e04_semantics_unchanged": stale_poll == stale_mux,
            "e05_lost_polling": lost_poll,
            "e05_lost_mux": lost_mux,
            "e05_semantics_unchanged": lost_poll == lost_mux,
        },
    )
