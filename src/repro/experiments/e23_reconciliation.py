"""E23 — Online reconciliation: silent corruption under live traffic.

The paper's replication story guarantees convergence only for *delivered*
updates; nothing in the protocol notices state that drifts without a log
record -- a flipped replica byte, a lost locator entry, a shipment
acknowledged but never applied.  Operators meet all three in production,
which is why UDC deployments pair replication with an audit/reconciliation
plane.  This experiment injects exactly those three
:class:`~repro.faults.SilentCorruption` kinds into a deployment serving
live dispatcher traffic and measures what PR 8's CDC plane does about
them, across three arms on the same seeded trace (same deployment name,
so the network latency streams match):

* **reconciliation off** -- ``UDRConfig.cdc = None``: the PR 7 code path,
  bit for bit.  The baseline for result codes, final state and signalling
  latency;
* **on, clean** -- CDC stream + audit history + reconciler, nothing
  injected.  Must repair *nothing*, and must leave result codes and final
  replica state identical to the off arm: the plane observes, it never
  participates;
* **on, corrupted** -- the same trace with a byte flip, a locator drop
  and a skipped shipment apply landed mid-run.  Every corruption must be
  detected and repaired within two reconciliation rounds of its
  injection, replicas and locators must converge to the master state by
  the end, and signalling p99 must stay within 1.1x the off arm -- the
  reconciler's digest/repair work may not tax the serving path.

Detection latency is measured from each injection's
:class:`~repro.faults.CorruptionReport` (``applied_at``) to the first
matching :class:`~repro.cdc.reconcile.RepairAction` (``detected_at``),
i.e. the real exposure window of the drifted state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.api.operations import Read, Write
from repro.core.config import CdcPolicy, ClientType, DispatchMode, UDRConfig
from repro.directory.errors import LocatorSyncInProgress, UnknownIdentity
from repro.directory.locator import ProvisionedLocator
from repro.experiments.common import (
    build_loaded_udr,
    drive,
    percentile,
    site_in_region,
)
from repro.experiments.runner import ExperimentResult
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    SilentCorruption,
    apply_corruption,
)

HORIZON = 600.0
SIGNALLING_RATE = 100.0
RECONCILE_INTERVAL = 0.5
#: A corruption must be repaired within this many reconciliation rounds of
#: landing (one full round may already be in flight when it lands).
DETECTION_ROUNDS_BOUND = 2
#: Reserved subscribers (never written by the signalling trace), one per
#: corruption kind: drift on their records cannot be masked by a later
#: legitimate overwrite, so detection is attributable.
RESERVED = 3


def _home_site(udr, profile):
    try:
        return site_in_region(udr,
                              profile.current_region or profile.home_region)
    except KeyError:
        return udr.topology.sites[0]


def _build(seed: int, cdc: Optional[CdcPolicy]):
    config = UDRConfig(seed=seed, dispatch_mode=DispatchMode.DISPATCHER,
                       name="e23-recon", cdc=cdc)
    return build_loaded_udr(config, subscribers=48, seed=seed)


def _workload(udr, profiles, operations: int):
    """A read-heavy signalling mix over the non-reserved subscribers."""
    pairs = []
    for index in range(operations):
        profile = profiles[index % len(profiles)]
        site = _home_site(udr, profile)
        if index % 4 == 3:
            pairs.append((Write(profile.identities.imsi,
                                {"servingMsc": f"msc-{index}"}), site))
        else:
            pairs.append((Read(profile.identities.imsi), site))
    return pairs


def _arrivals(udr, stream: str, rate: float, pairs, submit, out: list):
    rng = udr.sim.rng(stream)
    for operation, site in pairs:
        yield udr.sim.timeout(rng.expovariate(rate))
        out.append(submit(operation, site))


def _partition_of_key(udr, key: str) -> int:
    for index, replica_set in udr.replica_sets.items():
        master = replica_set.master_element_name
        if master is not None and \
                key in replica_set.copy_on(master).store.keys():
            return index
    raise KeyError(f"{key!r} on no master store")


def _slave_site(udr, index: int) -> str:
    replica_set = udr.replica_sets[index]
    slave = replica_set.slave_names()[0]
    return udr.elements[slave].site.name


def _skip_apply_later(udr, corruption: SilentCorruption, key: str,
                      reports: list):
    """Open a shipment window on the reserved record, then swallow it."""
    sim = udr.sim
    yield sim.timeout(corruption.at - sim.now)
    replica_set = udr.replica_sets[corruption.partition_index]
    copy = replica_set.copy_on(replica_set.master_element_name)
    tx = copy.transactions.begin()
    tx.write(key, {"reservedMark": "pre-skip"})
    tx.commit(timestamp=sim.now)
    # The mux's wake is a scheduled process: the window stays open until
    # the simulation advances, so the swallow is deterministic.
    reports.append(apply_corruption(udr, corruption,
                                    sim.rng("e23.corruption")))


def _replicas_converged(udr) -> bool:
    for replica_set in udr.replica_sets.values():
        master = replica_set.master_element_name
        if master is None:
            return False
        master_store = replica_set.copy_on(master).store
        truth = {key: master_store.read_committed(key)
                 for key in master_store.keys()}
        for slave in replica_set.slave_names():
            store = replica_set.copy_on(slave).store
            state = {key: store.read_committed(key)
                     for key in store.keys()}
            if state != truth:
                return False
    return True


def _locators_converged(udr) -> bool:
    for replica_set in udr.replica_sets.values():
        master = replica_set.master_element_name
        store = replica_set.copy_on(master).store
        for key in store.keys():
            record = store.get(key)
            if not isinstance(record, dict) or "imsi" not in record:
                continue
            for locator in udr.locators.values():
                if not isinstance(locator, ProvisionedLocator):
                    continue
                try:
                    locator.locate("imsi", record["imsi"])
                except UnknownIdentity:
                    return False
                except LocatorSyncInProgress:
                    continue
    return True


def _detection_latency(report, repairs) -> Optional[float]:
    """Injection -> first matching repair, or None when never repaired."""
    corruption = report.corruption
    for action in repairs:
        if action.detected_at < report.applied_at:
            continue
        if corruption.kind == "byte_flip":
            if action.kind == "value_restored" and \
                    action.key == report.key:
                return action.detected_at - report.applied_at
        elif corruption.kind == "locator_drop":
            if action.kind == "locator_registered" and any(
                    action.key == f"{identity_type}:{value}"
                    for identity_type, value in report.identities.items()):
                return action.detected_at - report.applied_at
        else:  # skip_apply
            if action.kind == "missing_versions" and \
                    action.element_name == report.element_name:
                return action.detected_at - report.applied_at
    return None


def _final_state(udr) -> Dict:
    state = {}
    for index, replica_set in udr.replica_sets.items():
        for member in replica_set.member_names:
            store = replica_set.copy_on(member).store
            state[(index, member)] = {key: store.read_committed(key)
                                      for key in store.keys()}
    return state


def _run_arm(seed: int, cdc: Optional[CdcPolicy], corrupt: bool,
             signalling_ops: int) -> Dict[str, object]:
    udr, profiles = _build(seed, cdc)
    working, reserved = profiles[:-RESERVED], profiles[-RESERVED:]
    pairs = _workload(udr, working, signalling_ops)
    clients = {site: udr.attach(f"hlr-fe-{site.name}", site,
                                client_type=ClientType.APPLICATION_FE)
               for site in udr.topology.sites}
    sessions = {site: client.session()
                for site, client in clients.items()}
    out: list = []
    arrivals = udr.sim.process(_arrivals(
        udr, "e23.sig", SIGNALLING_RATE, pairs,
        lambda op, site: sessions[site].submit(op), out))

    reports: list = []
    injector = None
    if corrupt:
        flip_key = f"sub:{reserved[0].identities.imsi}"
        drop_key = f"sub:{reserved[1].identities.imsi}"
        skip_key = f"sub:{reserved[2].identities.imsi}"
        flip_index = _partition_of_key(udr, flip_key)
        drop_index = _partition_of_key(udr, drop_key)
        skip_index = _partition_of_key(udr, skip_key)
        schedule = FaultSchedule() \
            .add_corruption(SilentCorruption(
                _slave_site(udr, flip_index), flip_index, "byte_flip",
                at=0.3, target_key=flip_key)) \
            .add_corruption(SilentCorruption(
                udr.elements[udr.replica_sets[drop_index]
                             .master_element_name].site.name,
                drop_index, "locator_drop", at=0.5, target_key=drop_key))
        injector = FaultInjector(udr, schedule)
        injector.start()
        udr.sim.process(_skip_apply_later(
            udr, SilentCorruption(_slave_site(udr, skip_index), skip_index,
                                  "skip_apply", at=0.7),
            skip_key, reports))

    start = udr.sim.now

    def drain_all():
        yield arrivals
        for session in sessions.values():
            yield from session.drain()

    drive(udr, drain_all(), horizon=HORIZON)
    # Let replication settle and the reconciler run its repair rounds.
    udr.sim.run_for(2.0 + 4 * RECONCILE_INTERVAL)
    if injector is not None:
        reports.extend(injector.corruption_reports)

    latencies = sorted(f.latency * 1000.0 for f in out)
    reconciler = getattr(udr, "reconciler", None)
    return {
        "codes": [f.response.result_code.name for f in out],
        "sig_p50_ms": percentile(latencies, 0.50),
        "sig_p99_ms": percentile(latencies, 0.99),
        "state": _final_state(udr),
        "reports": reports,
        "repairs": list(reconciler.repairs) if reconciler else [],
        "rounds": reconciler.rounds if reconciler else 0,
        "detected": udr.metrics.counter("reconciliation.detected"),
        "repaired": udr.metrics.counter("reconciliation.repaired"),
        "false_positives":
            udr.metrics.counter("reconciliation.false_positive"),
        "cdc_events": udr.metrics.counter("cdc.events"),
        "replicas_converged": _replicas_converged(udr),
        "locators_converged": _locators_converged(udr),
        "elapsed": udr.sim.now - start,
    }


def run(signalling_ops: int = 160, seed: int = 29) -> ExperimentResult:
    policy = CdcPolicy(reconcile_interval=RECONCILE_INTERVAL)
    off = _run_arm(seed, None, corrupt=False, signalling_ops=signalling_ops)
    clean = _run_arm(seed, policy, corrupt=False,
                     signalling_ops=signalling_ops)
    corrupted = _run_arm(seed, policy, corrupt=True,
                         signalling_ops=signalling_ops)

    applied = [report for report in corrupted["reports"] if report.applied]
    latencies = {report.corruption.kind:
                 _detection_latency(report, corrupted["repairs"])
                 for report in applied}
    all_applied = len(applied) == 3
    all_repaired = all(latency is not None for latency in latencies.values())
    bound = DETECTION_ROUNDS_BOUND * RECONCILE_INTERVAL + 0.1
    within_bound = all_repaired and all(
        latency <= bound for latency in latencies.values())
    p99_ratio = corrupted["sig_p99_ms"] / max(off["sig_p99_ms"], 1e-9)

    rows = []
    for label, arm in (("reconciliation off (PR 7 path)", off),
                       ("on, clean", clean),
                       ("on, corrupted", corrupted)):
        success = arm["codes"].count("SUCCESS") / max(len(arm["codes"]), 1)
        rows.append([
            label, round(success, 3), round(arm["sig_p50_ms"], 2),
            round(arm["sig_p99_ms"], 2), arm["rounds"], arm["detected"],
            arm["repaired"], arm["false_positives"],
        ])
    for kind in ("byte_flip", "locator_drop", "skip_apply"):
        latency = latencies.get(kind)
        rows.append([
            f"corruption: {kind}", "-", "-", "-", "-", "-",
            "repaired" if latency is not None else "MISSED",
            f"{latency:.2f} s" if latency is not None else "-",
        ])

    worst = max((latency for latency in latencies.values()
                 if latency is not None), default=0.0)
    return ExperimentResult(
        experiment_id="E23",
        title="Online reconciliation vs silent corruption under live traffic",
        paper_claim=("replication only converges what the commit logs "
                     "deliver; state that drifts without a log record -- "
                     "bit rot on a replica, a lost locator entry, a "
                     "shipment acknowledged but never applied -- stays "
                     "wrong forever unless an audit/reconciliation plane "
                     "closes the loop, and doing so must not tax the "
                     "latency-critical serving path"),
        headers=["arm / corruption", "success fraction", "sig p50 (ms)",
                 "sig p99 (ms)", "rounds", "detected", "repaired",
                 "false positives / latency"],
        rows=rows,
        finding=(f"all three injected corruption kinds are detected and "
                 f"repaired online, the slowest {worst:.2f} s after "
                 f"injection (bound: {DETECTION_ROUNDS_BOUND} rounds = "
                 f"{DETECTION_ROUNDS_BOUND * RECONCILE_INTERVAL:.1f} s); "
                 f"replicas and locators converge to master state by the "
                 f"end of the run; the clean reconciling arm repairs "
                 f"nothing and reproduces the off arm's result codes and "
                 f"final state exactly; signalling p99 with reconciliation "
                 f"running under corruption is "
                 f"{corrupted['sig_p99_ms']:.2f} ms vs "
                 f"{off['sig_p99_ms']:.2f} ms without the plane "
                 f"({p99_ratio:.2f}x)"),
        notes={
            "all_corruptions_applied": all_applied,
            "all_corruptions_repaired": all_repaired,
            "detection_within_bound": within_bound,
            "worst_detection_latency_s": round(worst, 3),
            "detection_bound_s": round(bound, 2),
            "replicas_converged_after_repair":
                corrupted["replicas_converged"],
            "locators_converged_after_repair":
                corrupted["locators_converged"],
            "clean_arm_repairs_nothing": clean["repaired"] == 0,
            "off_arm_bit_identical":
                clean["codes"] == off["codes"]
                and clean["state"] == off["state"],
            "sig_p99_off_ms": round(off["sig_p99_ms"], 2),
            "sig_p99_corrupted_ms": round(corrupted["sig_p99_ms"], 2),
            "sig_p99_ratio": round(p99_ratio, 3),
            "p99_within_1_1x_off": p99_ratio <= 1.1,
            "cdc_events_clean": clean["cdc_events"],
            "false_positives_corrupted": corrupted["false_positives"],
        },
    )
