"""E16 — Arrival-driven dispatch: linger budget vs arrival rate.

The ROADMAP's follow-up to batched pipelining (e15): real UDR traffic
arrives one request at a time from many front-ends, so waves must *form* at
the Point of Admission rather than being handed over pre-built.  The
:class:`~repro.core.dispatcher.BatchDispatcher` enqueues individual arrivals
and dispatches a wave when it fills to ``batch_max_size`` or the oldest
request has lingered ``batch_linger_ticks`` -- the linger budget is really
spent waiting, so the throughput/latency trade-off is emergent:

* at low arrival rates a large budget only adds latency (waves stay small
  no matter how long the dispatcher waits);
* near saturation the same budget lets waves fill, amortising the
  PoA/LDAP/locate hops and multiplying sustained ops/s;
* at full saturation the queue always holds a full wave, lingering never
  triggers, and dispatcher throughput must match explicit
  ``execute_batch`` at the same wave size (the acceptance bar: within 10%).

Cross-wave write coalescing (``UDRConfig.coalesce_writes``) rides along:
one multi-record intra-SE transaction per partition per wave.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.api.qos import QoSProfile
from repro.core.config import ClientType, DispatchMode, UDRConfig
from repro.core.pipeline import BatchItem
from repro.experiments.common import (
    ClientPool,
    build_loaded_udr,
    drive,
    home_site_of,
    percentile,
    read_request,
    write_request,
)
from repro.experiments.runner import ExperimentResult

#: Virtual seconds the whole simulated run may take before we give up.
HORIZON = 7200.0


def _workload(udr, profiles, operations: int) -> List[BatchItem]:
    """The e15 mixed-priority stream: reads + FE updates + PS changes."""
    ps_site = udr.topology.sites[0]
    items = []
    for index in range(operations):
        profile = profiles[index % len(profiles)]
        if index % 4 == 0:
            items.append(BatchItem(
                write_request(profile, svcBarPremium=bool(index % 8)),
                ClientType.PROVISIONING, ps_site))
        elif index % 4 == 1:
            items.append(BatchItem(
                write_request(profile, servingMsc=f"msc-{index}"),
                ClientType.APPLICATION_FE, home_site_of(udr, profile)))
        else:
            items.append(BatchItem(read_request(profile),
                                   ClientType.APPLICATION_FE,
                                   home_site_of(udr, profile)))
    return items


def _wait_all(udr, futures):
    """Generator: block until every submitted future has its response."""
    for future in futures:
        yield from future.wait()


def _run_dispatcher(arrival_rate: Optional[float], linger_ticks: int,
                    operations: int, seed: int, coalesce: bool = True
                    ) -> Tuple[float, float, float, float, List[str]]:
    """Drive a Poisson arrival stream through dispatcher mode.

    ``arrival_rate=None`` models full saturation: the whole workload is
    enqueued as a standing queue before the dispatcher wakes, so every wave
    is cut from the same globally priority-ordered backlog an explicit
    ``execute_batch`` would see.  Returns
    ``(ops_per_second, mean_wave_size, p50_ms, p99_ms, codes)``.
    """
    # The deployment name seeds the per-deployment rng streams (network
    # latency draws included), so the saturated run shares the explicit
    # baseline's name: identical wave structure then samples identical
    # latencies and the throughput comparison measures dispatch machinery,
    # not rng noise.
    name = ("e16-saturation" if arrival_rate is None
            else f"e16-r{arrival_rate:g}-l{linger_ticks}")
    config = UDRConfig(seed=seed, dispatch_mode=DispatchMode.DISPATCHER,
                       batch_linger_ticks=linger_ticks,
                       coalesce_writes=coalesce, name=name)
    udr, profiles = build_loaded_udr(config, subscribers=48, seed=seed)
    items = _workload(udr, profiles, operations)
    pool = ClientPool(udr, prefix="e16")
    futures = []

    def enqueue(item):
        futures.append(pool.submit(item.request, item.client_type,
                                   item.client_site,
                                   qos=QoSProfile(priority=item.priority)))

    def arrivals():
        rng = udr.sim.rng("e16.arrivals")
        for item in items:
            yield udr.sim.timeout(rng.expovariate(arrival_rate))
            enqueue(item)

    start = udr.sim.now
    if arrival_rate is None:
        # Standing queue: everything arrives before the dispatcher wakes.
        for item in items:
            enqueue(item)
    else:
        drive(udr, arrivals(), horizon=HORIZON)
    drive(udr, _wait_all(udr, futures), horizon=HORIZON)
    elapsed = max(future.completed_at for future in futures) - start
    latencies = sorted(future.latency for future in futures)
    waves = udr.metrics.counter("dispatcher.waves")
    mean_wave = (udr.metrics.counter("dispatcher.dispatched") / waves
                 if waves else 0.0)
    codes = [future.result().result_code.name for future in futures]
    return (operations / elapsed, mean_wave,
            percentile(latencies, 0.50) * 1000.0,
            percentile(latencies, 0.99) * 1000.0, codes)


def _run_explicit(operations: int, seed: int) -> float:
    """Throughput of the same workload as one explicit ``execute_batch``.

    Shares the saturated dispatcher run's deployment name (see
    :func:`_run_dispatcher`) so both sample the same latency streams.
    """
    config = UDRConfig(seed=seed, name="e16-saturation")
    udr, profiles = build_loaded_udr(config, subscribers=48, seed=seed)
    items = _workload(udr, profiles, operations)
    start = udr.sim.now
    # Mixed-client batches are a core-layer concern (sessions are
    # per-client); reach the pipeline directly rather than the deprecated
    # ``udr.execute_batch`` shim.
    drive(udr, udr.pipeline.execute_batch(items), horizon=HORIZON)
    return operations / (udr.sim.now - start)


def _run_sequential_codes(operations: int, seed: int) -> List[str]:
    """Result codes of the same workload executed one by one (DIRECT)."""
    config = UDRConfig(seed=seed, name="e16-sequential")
    udr, profiles = build_loaded_udr(config, subscribers=48, seed=seed)
    pool = ClientPool(udr, prefix="e16")
    codes = []
    for item in _workload(udr, profiles, operations):
        response = drive(udr, pool.call(item.request, item.client_type,
                                        item.client_site), horizon=HORIZON)
        codes.append(response.result_code.name)
    return codes


def run(arrival_rates=(50.0, 150.0, 400.0), linger_budgets=(0, 5, 50),
        operations: int = 160, seed: int = 17) -> ExperimentResult:
    rows = []
    saturation_rate = max(arrival_rates)
    saturation_ops = {}
    all_codes_sequential = True
    sequential_codes = _run_sequential_codes(operations, seed)
    for arrival_rate in arrival_rates:
        for linger_ticks in linger_budgets:
            ops, mean_wave, p50_ms, p99_ms, codes = _run_dispatcher(
                arrival_rate, linger_ticks, operations, seed)
            all_codes_sequential &= codes == sequential_codes
            if arrival_rate == saturation_rate:
                saturation_ops[linger_ticks] = ops
            rows.append([arrival_rate, linger_ticks, round(ops, 1),
                         round(mean_wave, 1), round(p50_ms, 1),
                         round(p99_ms, 1)])
    # The acceptance bar: at saturation (a standing queue, waves always
    # full) dispatcher throughput must be within 10% of an explicit
    # execute_batch at the same wave size.  Compare without coalescing,
    # which execute_batch does not use here either.
    explicit_ops = _run_explicit(operations, seed)
    dispatcher_saturated, _wave, _p50, _p99, _codes = _run_dispatcher(
        None, max(linger_budgets), operations, seed, coalesce=False)
    ratio = dispatcher_saturated / explicit_ops
    best_linger = max(saturation_ops, key=saturation_ops.get)
    return ExperimentResult(
        experiment_id="E16",
        title="Arrival-driven dispatch: linger budget vs arrival rate",
        paper_claim=("continuous per-request arrivals (the paper's telecom "
                     "front-end regime, sections 3.3/4.1) can recover the "
                     "amortisation of explicit batching when admission "
                     "lingers briefly for late arrivals; the cost is "
                     "tail latency at low load"),
        headers=["arrival rate (/s)", "linger (ticks)", "ops/s",
                 "mean wave", "p50 (ms)", "p99 (ms)"],
        rows=rows,
        finding=(f"at {saturation_rate:g}/s arrivals a linger budget of "
                 f"{best_linger} ticks sustains "
                 f"{saturation_ops[best_linger]:.0f} ops/s "
                 f"(vs {saturation_ops[min(linger_budgets)]:.0f} without "
                 f"lingering); fully saturated, the dispatcher reaches "
                 f"{dispatcher_saturated:.0f} ops/s vs {explicit_ops:.0f} "
                 f"for explicit execute_batch ({ratio:.2f}x)"),
        notes={
            "dispatcher_saturated_ops": round(dispatcher_saturated, 1),
            "explicit_batch_ops": round(explicit_ops, 1),
            "dispatcher_vs_explicit_ratio": round(ratio, 3),
            "within_10pct_of_explicit": ratio >= 0.9,
            "codes_match_sequential": all_codes_sequential,
            "linger_helps_at_saturation": saturation_ops[best_linger]
            >= saturation_ops[min(linger_budgets)],
        },
    )
