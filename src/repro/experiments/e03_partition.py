"""E03 — Partition behaviour under the default PC policy (sections 3.2, 4.1).

"On a network partition, while most transactions coming from application
front-ends proceed successfully since those transactions are composed of
mostly reads, transactions coming from a PS almost always fail since most
provisioning transactions involve writes to subscriber data."

The experiment isolates one region's sites from the backbone and, during the
incident, drives application-FE procedures from every region and provisioning
writes from the PS site (outside the isolated region, targeting subscribers
homed inside it).  It reports the operation availability of both client
classes with and without the partition.
"""

from __future__ import annotations

from repro.core.config import ClientType, PartitionPolicy, UDRConfig
from repro.experiments.common import (
    ClientPool,
    build_loaded_udr,
    drive,
    read_request,
    site_in_region,
    write_request,
)
from repro.experiments.runner import ExperimentResult
from repro.net.partition import NetworkPartition
from repro.provisioning.operations import ChangeServices
from repro.provisioning.system import ProvisioningSystem


def _fe_phase(udr, profiles, operations, rng_name):
    """FE traffic: 80% reads / 20% dynamic-state writes from the home region."""
    rng = udr.sim.rng(rng_name)
    pool = ClientPool(udr, prefix=rng_name)
    ok = 0
    for index in range(operations):
        profile = profiles[index % len(profiles)]
        site = site_in_region(udr, profile.home_region)
        if rng.random() < 0.8:
            request = read_request(profile)
        else:
            request = write_request(profile, servingMsc=f"msc-{index}")
        response = drive(udr, pool.call(
            request, ClientType.APPLICATION_FE, site))
        ok += int(response.ok)
    return ok / operations if operations else 1.0


def _ps_phase(udr, ps, profiles, operations):
    ok = 0
    for index in range(operations):
        profile = profiles[index % len(profiles)]
        outcome = drive(udr, ps.provision(ChangeServices(
            profile, changes={"svcBarPremium": bool(index % 2)})))
        ok += int(outcome.succeeded)
    return ok / operations if operations else 1.0


def run(partition_policy: PartitionPolicy = PartitionPolicy.PREFER_CONSISTENCY,
        subscribers: int = 60, operations: int = 40,
        seed: int = 13) -> ExperimentResult:
    config = UDRConfig(partition_policy=partition_policy, seed=seed)
    udr, profiles = build_loaded_udr(config, subscribers=subscribers,
                                     seed=seed)
    isolated_region = config.regions[-1]
    victims = [p for p in profiles if p.home_region == isolated_region]
    if not victims:
        victims = profiles
    ps_site = site_in_region(udr, config.regions[0])
    ps = ProvisioningSystem("e03-ps", udr, ps_site)

    # Baseline, no partition.
    fe_baseline = _fe_phase(udr, profiles, operations, "e03.fe.baseline")
    ps_baseline = _ps_phase(udr, ps, victims, operations // 2)

    # Partition the isolated region away and repeat.
    partition = NetworkPartition.splitting_regions(
        udr.topology, udr.topology.region(isolated_region))
    udr.network.apply_partition(partition)
    fe_partition = _fe_phase(udr, profiles, operations, "e03.fe.partition")
    ps_partition = _ps_phase(udr, ps, victims, operations // 2)
    udr.network.heal_partition(partition)

    rows = [
        ["application FE", round(fe_baseline, 3), round(fe_partition, 3)],
        ["provisioning (writes to isolated region)", round(ps_baseline, 3),
         round(ps_partition, 3)],
    ]
    fe_keeps_working = fe_partition >= 0.7
    ps_mostly_fails = ps_partition <= 0.3 \
        if partition_policy is PartitionPolicy.PREFER_CONSISTENCY else None
    return ExperimentResult(
        experiment_id="E03",
        title="Operation availability during a backbone partition "
              f"({partition_policy.value})",
        paper_claim=("FE transactions (mostly reads) proceed during a "
                     "partition; PS transactions (writes) almost always fail "
                     "under the default consistency-favouring policy"),
        headers=["client class", "availability (no partition)",
                 "availability (partition)"],
        rows=rows,
        finding=(f"FE availability during the partition: {fe_partition:.2f}; "
                 f"PS availability: {ps_partition:.2f} under "
                 f"{partition_policy.value}"),
        notes={
            "fe_keeps_working": fe_keeps_working,
            "ps_mostly_fails": ps_mostly_fails,
            "fe_partition_availability": fe_partition,
            "ps_partition_availability": ps_partition,
            "manual_interventions": ps.manual_interventions,
        },
    )
