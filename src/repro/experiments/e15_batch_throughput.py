"""E15 — Batched multi-request pipelining: throughput vs batch size.

The ROADMAP's batching item: carrying N requests through the PoA/LDAP/locate
stages together amortises the client-to-PoA transfers, the LDAP service
charge and the locator probes that dominate a single request's cost, so
operation throughput should grow with the admission-wave size while result
codes stay exactly those of sequential execution (the batch equivalence
property, pinned by ``tests/test_batch_equivalence.py``).

The experiment drives the same mixed-priority workload (signalling reads and
updates from application front-ends, provisioning changes from the PS site)
through ``execute_batch`` under increasing ``UDRConfig.batch_max_size`` on
otherwise-identical deployments, and reports simulated operations per second
next to the speedup over the unbatched (``batch_max_size=1``) run.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.config import ClientType, UDRConfig
from repro.core.pipeline import BatchItem
from repro.experiments.common import (
    build_loaded_udr,
    drive,
    home_site_of,
    read_request,
    write_request,
)
from repro.experiments.runner import ExperimentResult


def _workload(udr, profiles, operations: int) -> List[BatchItem]:
    """A deterministic mixed-priority request stream over the loaded base."""
    ps_site = udr.topology.sites[0]
    items = []
    for index in range(operations):
        profile = profiles[index % len(profiles)]
        if index % 4 == 0:
            items.append(BatchItem(
                write_request(profile, svcBarPremium=bool(index % 8)),
                ClientType.PROVISIONING, ps_site))
        elif index % 4 == 1:
            items.append(BatchItem(
                write_request(profile, servingMsc=f"msc-{index}"),
                ClientType.APPLICATION_FE, home_site_of(udr, profile)))
        else:
            items.append(BatchItem(read_request(profile),
                                   ClientType.APPLICATION_FE,
                                   home_site_of(udr, profile)))
    return items


def _measure(batch_max_size: int, operations: int,
             seed: int) -> Tuple[float, List[str]]:
    config = UDRConfig(seed=seed, batch_max_size=batch_max_size,
                       name=f"e15-b{batch_max_size}")
    udr, profiles = build_loaded_udr(config, subscribers=48, seed=seed)
    items = _workload(udr, profiles, operations)
    start = udr.sim.now
    # Mixed-client batches are a core-layer concern (sessions are
    # per-client); reach the pipeline directly rather than the deprecated
    # ``udr.execute_batch`` shim.
    responses = drive(udr, udr.pipeline.execute_batch(items), horizon=7200.0)
    elapsed = udr.sim.now - start
    return elapsed, [response.result_code.name for response in responses]


def run(batch_sizes=(1, 4, 8, 32), operations: int = 160,
        seed: int = 15) -> ExperimentResult:
    rows = []
    codes_by_size = {}
    ops_per_second = {}
    for batch_size in batch_sizes:
        elapsed, codes = _measure(batch_size, operations, seed)
        codes_by_size[batch_size] = codes
        ops_per_second[batch_size] = operations / elapsed
        rows.append([batch_size, round(elapsed * 1000.0, 1),
                     round(ops_per_second[batch_size], 1)])
    baseline = ops_per_second[batch_sizes[0]]
    for row, batch_size in zip(rows, batch_sizes):
        row.append(round(ops_per_second[batch_size] / baseline, 2))
    reference_codes = codes_by_size[batch_sizes[0]]
    codes_identical = all(codes == reference_codes
                          for codes in codes_by_size.values())
    largest = max(batch_sizes)
    speedup_at_largest = ops_per_second[largest] / baseline
    return ExperimentResult(
        experiment_id="E15",
        title="Batched pipelining throughput vs admission-wave size",
        paper_claim=("batching the provisioning-heavy operation path "
                     "amortises per-request coordination cost, keeping it "
                     "sublinear in the request count (ROADMAP batching item; "
                     "cf. the paper's batch provisioning discussion, "
                     "section 4.1)"),
        headers=["batch_max_size", "elapsed (ms)", "ops/s",
                 "speedup vs unbatched"],
        rows=rows,
        finding=(f"batch_max_size={largest} sustains "
                 f"{ops_per_second[largest]:.0f} ops/s against "
                 f"{baseline:.0f} ops/s unbatched "
                 f"({speedup_at_largest:.2f}x); result codes are identical "
                 f"across every batch size"),
        notes={
            "speedup_at_largest_batch": round(speedup_at_largest, 2),
            "largest_batch_size": largest,
            "meets_1_3x_speedup": speedup_at_largest >= 1.3,
            "codes_identical_across_batch_sizes": codes_identical,
            "all_succeeded": all(code == "SUCCESS"
                                 for code in reference_codes),
        },
    )
