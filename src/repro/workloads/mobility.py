"""Roaming / mobility model.

"It is known that users stay within the home region of the subscription most
of the time, so if the data of a subscriber can be pinned to a location close
to the application front-ends in the home region of the subscription, chances
of having to surf the IP back-bone to obtain that subscriber's data decrease
enormously.  Only when the user leaves her home region (she roams) [...]"
(paper, section 3.5).

The model assigns each subscriber a current region: with probability
``1 - roaming_probability`` it is the home region, otherwise one of the other
regions.  Experiment E08 sweeps the roaming probability to show how placement
policy and mobility together determine backbone crossings and availability.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.subscriber.profile import SubscriberProfile


class RoamingModel:
    """Decides where each subscriber currently is."""

    def __init__(self, regions: Sequence[str], roaming_probability: float = 0.05):
        if not regions:
            raise ValueError("need at least one region")
        if not 0.0 <= roaming_probability <= 1.0:
            raise ValueError("roaming probability must be within [0, 1]")
        self.regions = list(regions)
        self.roaming_probability = roaming_probability

    def current_region(self, subscriber: SubscriberProfile, rng) -> str:
        """Draw the region the subscriber is currently in."""
        if len(self.regions) == 1 or rng.random() >= self.roaming_probability:
            return subscriber.home_region
        away = [region for region in self.regions
                if region != subscriber.home_region]
        return rng.choice(away) if away else subscriber.home_region

    def place_population(self, subscribers: Sequence[SubscriberProfile],
                         rng) -> List[SubscriberProfile]:
        """Return copies of the subscribers with ``current_region`` assigned."""
        placed = []
        for subscriber in subscribers:
            region = self.current_region(subscriber, rng)
            placed.append(subscriber.with_location(
                region, serving_msc=f"msc-{region}"))
        return placed

    def expected_roaming_share(self) -> float:
        if len(self.regions) == 1:
            return 0.0
        return self.roaming_probability

    def roaming_census(self, subscribers: Sequence[SubscriberProfile]
                       ) -> Dict[str, int]:
        """How many subscribers are currently home vs roaming."""
        home = sum(1 for subscriber in subscribers if not subscriber.roaming())
        return {"home": home, "roaming": len(subscribers) - home}
