"""Workload models: traffic profiles, mobility/roaming and operation mixes.

The paper reasons about the UDR's load in aggregates -- operations per
subscriber per second, busy versus low-traffic hours, continuous provisioning
flows punctuated by batches, subscribers who "stay within the home region of
the subscription most of the time".  This package turns those aggregates into
concrete, deterministic drivers for the simulation.
"""

from repro.workloads.traffic import BusyHourProfile, TrafficProfile
from repro.workloads.mobility import RoamingModel
from repro.workloads.mix import WorkloadMix

__all__ = [
    "BusyHourProfile",
    "RoamingModel",
    "TrafficProfile",
    "WorkloadMix",
]
