"""Traffic intensity profiles.

The capacity model (paper section 3.5) gives the ceiling -- about 18 LDAP
operations per subscriber per second of headroom -- while real traffic is far
below it and varies over the day: busy hours carry several times the
low-traffic-hour load, and provisioning keeps "a continuous flow of
provisioning operations going at any one time" that falls to a minimum during
low-traffic hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.sim import units


@dataclass
class TrafficProfile:
    """Per-subscriber traffic intensity.

    ``procedures_per_subscriber_per_hour`` is the busy-hour rate of network
    procedures one subscriber generates (calls, SMS, location updates...).
    A typical planning value is 5-10 busy-hour procedures per subscriber.
    """

    procedures_per_subscriber_per_hour: float = 8.0
    provisioning_ops_per_thousand_subscribers_per_hour: float = 4.0

    def __post_init__(self):
        if self.procedures_per_subscriber_per_hour < 0:
            raise ValueError("procedure rate cannot be negative")
        if self.provisioning_ops_per_thousand_subscribers_per_hour < 0:
            raise ValueError("provisioning rate cannot be negative")

    def procedure_rate(self, subscribers: int) -> float:
        """Aggregate procedure arrivals per second for a subscriber pool."""
        return (subscribers * self.procedures_per_subscriber_per_hour
                / units.HOUR)

    def provisioning_rate(self, subscribers: int) -> float:
        """Aggregate provisioning operations per second for a pool."""
        return (subscribers / 1000.0
                * self.provisioning_ops_per_thousand_subscribers_per_hour
                / units.HOUR)

    def ldap_ops_per_second(self, subscribers: int,
                            ops_per_procedure: float = 2.0) -> float:
        """Offered LDAP load, to compare against the capacity ceiling."""
        if ops_per_procedure <= 0:
            raise ValueError("a procedure needs at least one operation")
        return self.procedure_rate(subscribers) * ops_per_procedure


@dataclass
class BusyHourProfile:
    """Diurnal shape of traffic: multiplier per hour of day.

    The default shape has a morning and an evening busy hour at 1.0 (the
    reference intensity) and a deep night-time trough -- the "low traffic
    hours" during which operators schedule batch provisioning.
    """

    hourly_factors: Tuple[float, ...] = (
        0.15, 0.10, 0.08, 0.08, 0.10, 0.20,   # 00-05
        0.40, 0.70, 0.90, 1.00, 0.95, 0.90,   # 06-11
        0.85, 0.80, 0.80, 0.85, 0.90, 0.95,   # 12-17
        1.00, 0.95, 0.85, 0.70, 0.45, 0.25,   # 18-23
    )

    def __post_init__(self):
        if len(self.hourly_factors) != 24:
            raise ValueError("need exactly 24 hourly factors")
        if any(factor < 0 for factor in self.hourly_factors):
            raise ValueError("hourly factors cannot be negative")

    def factor_at(self, sim_time: float) -> float:
        """Traffic multiplier at a simulation time (day wraps around)."""
        hour = int(sim_time // units.HOUR) % 24
        return self.hourly_factors[hour]

    def busy_hours(self) -> List[int]:
        peak = max(self.hourly_factors)
        return [hour for hour, factor in enumerate(self.hourly_factors)
                if factor >= 0.95 * peak]

    def low_traffic_hours(self, threshold: float = 0.25) -> List[int]:
        """Hours suitable for batch provisioning."""
        return [hour for hour, factor in enumerate(self.hourly_factors)
                if factor <= threshold]

    def scale_rate(self, base_rate: float, sim_time: float) -> float:
        return base_rate * self.factor_at(sim_time)
