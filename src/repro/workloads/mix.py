"""Combined workload description: traffic + mobility + procedure mixes.

A :class:`WorkloadMix` bundles everything an experiment needs to drive a UDR
deployment: how many subscribers, how they are spread over regions, how much
they move, which procedures their front-ends run and at what rate, and how
much provisioning happens on the side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.frontends.procedures import NetworkProcedure, ProcedureCatalogue
from repro.subscriber.generator import SubscriberGenerator
from repro.subscriber.profile import SubscriberProfile
from repro.workloads.mobility import RoamingModel
from repro.workloads.traffic import TrafficProfile


@dataclass
class WorkloadMix:
    """A complete workload specification."""

    regions: Sequence[str] = ("spain", "sweden", "germany")
    subscribers: int = 300
    ims_share: float = 0.3
    roaming_probability: float = 0.05
    traffic: TrafficProfile = field(default_factory=TrafficProfile)
    procedure_mix: Optional[Dict[NetworkProcedure, float]] = None
    seed: int = 0

    def __post_init__(self):
        if self.subscribers < 1:
            raise ValueError("need at least one subscriber")
        if self.procedure_mix is None:
            self.procedure_mix = ProcedureCatalogue.classic_mix()

    # -- population --------------------------------------------------------------

    def generate_population(self, rng=None) -> List[SubscriberProfile]:
        """Generate and geographically place the subscriber population."""
        generator = SubscriberGenerator(self.regions, seed=self.seed,
                                        ims_share=self.ims_share)
        population = generator.generate(self.subscribers)
        roaming = RoamingModel(self.regions, self.roaming_probability)
        rng = rng or generator._rng
        return roaming.place_population(population, rng)

    def subscribers_by_region(self, population: Sequence[SubscriberProfile]
                              ) -> Dict[str, List[SubscriberProfile]]:
        """Group subscribers by the region they are currently in."""
        groups: Dict[str, List[SubscriberProfile]] = {
            region: [] for region in self.regions}
        for subscriber in population:
            groups.setdefault(subscriber.current_region, []).append(subscriber)
        return groups

    # -- rates -----------------------------------------------------------------------

    def procedure_rate_for(self, population_size: int) -> float:
        return self.traffic.procedure_rate(population_size)

    def provisioning_rate_for(self, population_size: int) -> float:
        return self.traffic.provisioning_rate(population_size)

    def average_operations_per_procedure(self,
                                         sample: SubscriberProfile) -> float:
        return ProcedureCatalogue.average_operations(self.procedure_mix, sample)
