"""Cassandra-style quorum commit (the comparison point of section 5).

"In Cassandra, a client is able to specify the durability guarantees it wants
on a per-transaction basis.  Under the hood Cassandra uses a consensus
protocol across an ensemble of replicas; the more replicas are involved in
the transaction, the higher the durability guarantees."

The quorum replicator sends each commit to every slave copy in parallel and
acknowledges the client once ``write_quorum`` copies (counting the master)
have applied it.  Its latency is therefore the (W-1)-th fastest slave round
trip -- the "too high for a UDR" latency penalty the paper argues against --
while its durability survives any W-1 simultaneous copy losses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.net.errors import NetworkError
from repro.replication.errors import NotEnoughReplicas
from repro.replication.replica_set import ReplicaSet
from repro.storage.wal import LogRecord


@dataclass
class QuorumWrite:
    """Bookkeeping for one in-flight quorum commit."""

    required_acks: int
    acks: int = 1          # the master's local commit counts as the first ack
    failures: int = 0
    acked_elements: List[str] = field(default_factory=list)

    @property
    def satisfied(self) -> bool:
        return self.acks >= self.required_acks


class QuorumReplicator:
    """W-of-N replication for a replica set."""

    def __init__(self, sim, network, replica_set: ReplicaSet,
                 write_quorum: int = 2):
        if write_quorum < 1:
            raise ValueError("write quorum must be at least 1")
        self.sim = sim
        self.network = network
        self.replica_set = replica_set
        self.write_quorum = write_quorum
        self.commits_replicated = 0
        self.failed_commits = 0

    def replicate_commit(self, record: LogRecord):
        """Generator: reach ``write_quorum`` replicas (master included).

        Returns the :class:`QuorumWrite` describing the outcome; raises
        :class:`NotEnoughReplicas` when the quorum is unreachable.  The
        slowest replicas keep receiving the write in the background, exactly
        like Cassandra's hinted writes, so slaves outside the quorum converge
        too.
        """
        write = QuorumWrite(required_acks=self.write_quorum)
        quorum_needed = min(self.write_quorum, self.replica_set.replication_factor)
        write.required_acks = quorum_needed
        if write.satisfied:
            self.commits_replicated += 1
            return write

        master_element, _ = self.replica_set.master
        slaves = self.replica_set.slaves()
        quorum_event = self.sim.event(name="quorum-reached")
        pending = len(slaves)

        def make_push(slave_element, slave_copy):
            def push(sim):
                nonlocal pending
                try:
                    if not slave_element.available:
                        raise NetworkError("slave element down")
                    yield from self.network.round_trip(
                        master_element.site, slave_element.site,
                        request_bytes=700, response_bytes=64)
                    slave_copy.transactions.apply_log_record(record)
                    write.acks += 1
                    write.acked_elements.append(slave_element.name)
                except NetworkError:
                    write.failures += 1
                finally:
                    pending -= 1
                if not quorum_event.triggered and \
                        (write.satisfied or pending == 0):
                    quorum_event.succeed(write)
            return push

        for slave_element, slave_copy in slaves:
            self.sim.process(make_push(slave_element, slave_copy)(self.sim),
                             name=f"quorum-push:{slave_element.name}")

        if pending == 0 and not quorum_event.triggered:
            quorum_event.succeed(write)
        yield quorum_event
        if not write.satisfied:
            self.failed_commits += 1
            raise NotEnoughReplicas(required=quorum_needed, achieved=write.acks)
        self.commits_replicated += 1
        return write

    def __repr__(self) -> str:
        return (f"<QuorumReplicator {self.replica_set.partition.name} "
                f"W={self.write_quorum} replicated={self.commits_replicated}>")
