"""Divergence detection and conflict resolution between partition copies.

When the UDR runs multi-master during a partition (section 5), copies on the
two sides of the partition accept writes independently and their version
chains diverge.  "Once the partition incident is over, a consistency
restoration process must run across the whole UDR NF, trying to merge the
different views into one single, consistent view."

Divergence is detected from the per-key version chains: if one copy's chain
is a prefix of the other's the difference is ordinary replication lag; if the
chains fork (both sides appended versions the other has not seen) the key is
in conflict and a resolver must pick or build the surviving value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.storage.records import TOMBSTONE, RecordVersion, merge_attributes
from repro.storage.storage_element import PartitionCopy


def _chain_signature(copy: PartitionCopy, key: str) -> List[Tuple[str, int, int]]:
    """The identity of each version in a copy's chain for ``key``."""
    return [(version.origin, version.transaction_id, version.commit_seq)
            for version in copy.store.versions(key)]


def _is_prefix(shorter: List, longer: List) -> bool:
    return len(shorter) <= len(longer) and longer[:len(shorter)] == shorter


@dataclass
class KeyConflict:
    """A key whose copies hold forked (not merely lagging) histories."""

    key: str
    versions: Dict[str, RecordVersion]  # element name -> latest version

    @property
    def candidate_values(self) -> Dict[str, Any]:
        return {element: version.value
                for element, version in self.versions.items()}

    def distinct_values(self) -> List[Any]:
        seen: List[Any] = []
        for value in self.candidate_values.values():
            if value not in seen:
                seen.append(value)
        return seen

    def __repr__(self) -> str:
        return f"<KeyConflict {self.key!r} copies={sorted(self.versions)}>"


def detect_conflicts(copies: Dict[str, PartitionCopy]) -> List[KeyConflict]:
    """Find all keys whose version chains fork across the given copies.

    Parameters
    ----------
    copies:
        Mapping of element name to the partition copy it hosts.  All copies
        must belong to the same data partition.
    """
    if len(copies) < 2:
        return []
    all_keys: set = set()
    for copy in copies.values():
        all_keys.update(key for key, chain in copy.store._versions.items() if chain)
    conflicts: List[KeyConflict] = []
    for key in sorted(all_keys):
        signatures = {name: _chain_signature(copy, key)
                      for name, copy in copies.items()}
        non_empty = {name: sig for name, sig in signatures.items() if sig}
        if len(non_empty) < 2:
            continue
        names = sorted(non_empty)
        forked = False
        for i, first in enumerate(names):
            for second in names[i + 1:]:
                a, b = non_empty[first], non_empty[second]
                if not (_is_prefix(a, b) or _is_prefix(b, a)):
                    forked = True
                    break
            if forked:
                break
        if not forked:
            continue
        latest = {}
        for name in names:
            version = copies[name].store.latest(key)
            if version is not None:
                latest[name] = version
        values = {repr(v.value) for v in latest.values()}
        if len(values) > 1:
            conflicts.append(KeyConflict(key=key, versions=latest))
    return conflicts


class ConflictResolver:
    """Strategy interface: pick the surviving value for a conflicted key."""

    name = "abstract"

    def resolve(self, conflict: KeyConflict) -> Any:
        raise NotImplementedError


class LastWriterWinsResolver(ConflictResolver):
    """Keep the version with the highest commit sequence (ties by origin name).

    This is the cheap, lossy policy: one side's update silently disappears,
    which is exactly the consistency price the paper warns service providers
    about when they ask for availability on partitions.
    """

    name = "last-writer-wins"

    def resolve(self, conflict: KeyConflict) -> Any:
        best = max(conflict.versions.values(),
                   key=lambda version: (version.commit_seq, version.origin))
        return best.value


class PreferOriginResolver(ConflictResolver):
    """Keep whatever the designated element (usually the old master) has."""

    name = "prefer-origin"

    def __init__(self, preferred_element: str,
                 fallback: Optional[ConflictResolver] = None):
        self.preferred_element = preferred_element
        self.fallback = fallback or LastWriterWinsResolver()

    def resolve(self, conflict: KeyConflict) -> Any:
        if self.preferred_element in conflict.versions:
            return conflict.versions[self.preferred_element].value
        return self.fallback.resolve(conflict)


class AttributeMergeResolver(ConflictResolver):
    """Merge attribute maps field by field; overlapping fields use a tiebreak.

    Subscriber profiles are attribute maps, so updates touching *different*
    attributes (say, a barring flag on one side and a forwarding number on
    the other) can both survive.  Only attributes written on both sides need
    the tiebreak resolver.
    """

    name = "attribute-merge"

    def __init__(self, tiebreak: Optional[ConflictResolver] = None):
        self.tiebreak = tiebreak or LastWriterWinsResolver()

    def resolve(self, conflict: KeyConflict) -> Any:
        versions = list(conflict.versions.values())
        non_maps = [v for v in versions
                    if not isinstance(v.value, dict) and v.value is not TOMBSTONE]
        if non_maps:
            return self.tiebreak.resolve(conflict)
        ordered = sorted(versions, key=lambda v: (v.commit_seq, v.origin))
        merged: Dict[str, Any] = {}
        for version in ordered:
            if version.value is TOMBSTONE:
                continue
            merged = merge_attributes(merged, version.value)
        if not merged:
            return self.tiebreak.resolve(conflict)
        return merged
