"""Dual-in-sequence replication (the paper's section 5 durability proposal).

"Most probably the UDR NF should apply provisioning transactions in sequence
to two replicas, committing the transaction only when both replicas report
success.  To avoid incurring the penalties of a consensus protocol, the UDR
shall have to work in cooperation with the PS so when a transaction fails to
commit, leaving just one of the replicas updated is acceptable."

The replicator is invoked on the write path *after* the master commit: it
applies the commit record to one slave copy synchronously (paying a network
round trip), and only then acknowledges the transaction to the client.  When
no slave is reachable the behaviour is configurable: accept the degraded
single-replica commit (the paper's pragmatic choice) or fail the transaction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.errors import NetworkError
from repro.replication.errors import NotEnoughReplicas
from repro.replication.replica_set import ReplicaSet
from repro.storage.wal import LogRecord


@dataclass
class DualCommitOutcome:
    """Result of a dual-in-sequence commit attempt."""

    replicas_updated: int
    synchronous_latency: float
    degraded: bool

    @property
    def fully_replicated(self) -> bool:
        return self.replicas_updated >= 2


class DualInSequenceReplicator:
    """Synchronously copies each commit to one slave before acknowledging."""

    def __init__(self, sim, network, replica_set: ReplicaSet,
                 accept_single_replica: bool = True):
        self.sim = sim
        self.network = network
        self.replica_set = replica_set
        self.accept_single_replica = accept_single_replica
        self.commits_replicated = 0
        self.degraded_commits = 0
        self.failed_commits = 0

    def replicate_commit(self, record: LogRecord):
        """Generator: push ``record`` to the first reachable slave copy.

        Returns a :class:`DualCommitOutcome`.  Raises
        :class:`NotEnoughReplicas` when no slave is reachable and degraded
        commits are not accepted.
        """
        start = self.sim.now
        master_element, _master_copy = self.replica_set.master
        for slave_element, slave_copy in self.replica_set.slaves():
            if not slave_element.available:
                continue
            try:
                yield from self.network.round_trip(
                    master_element.site, slave_element.site,
                    request_bytes=700, response_bytes=64)
            except NetworkError:
                continue
            slave_copy.transactions.apply_log_record(record)
            self.commits_replicated += 1
            return DualCommitOutcome(
                replicas_updated=2,
                synchronous_latency=self.sim.now - start,
                degraded=False)
        if self.accept_single_replica:
            self.degraded_commits += 1
            return DualCommitOutcome(
                replicas_updated=1,
                synchronous_latency=self.sim.now - start,
                degraded=True)
        self.failed_commits += 1
        raise NotEnoughReplicas(required=2, achieved=1)

    def __repr__(self) -> str:
        return (f"<DualInSequenceReplicator {self.replica_set.partition.name} "
                f"replicated={self.commits_replicated} "
                f"degraded={self.degraded_commits}>")
