"""Site-pair replication multiplexer: wake on commit, ship one transfer per link.

The paper's asynchronous channels are described -- and were reproduced -- as
one background process per ``(partition, slave element)`` pair polling on a
fixed cadence.  A deployment with P partitions and R-1 slaves each therefore
schedules P*(R-1) simulator wakeups per interval and ships P*(R-1) separate
network transfers, even though many of those streams travel the same
``(master site, slave site)`` backbone link.  :class:`ReplicationMux`
collapses that fan-in:

* **wake on commit** -- the mux subscribes to every current master copy's
  commit log (:meth:`repro.storage.wal.WriteAheadLog.subscribe`); an idle
  deployment schedules *zero* replication events;
* **ship-linger** -- a commit arms one shipping round for its link, delayed
  to the next multiple of ``ship_linger`` (the configured replication
  interval).  Aligning to the same grid the polling loops ticked on keeps
  replica freshness -- and the E04/E05 staleness/loss semantics -- exactly
  as before, while every commit of the window, across *all* partitions on
  the link, rides the same round;
* **one transfer per link per round** -- a round gathers each member
  channel's :meth:`~repro.replication.asynchronous.AsyncReplicationChannel.
  pending_records` and ships them as a single network transfer charged
  ``frame_bytes`` once plus the per-record bytes, then applies per channel
  in commit order, exactly as the standalone channels would;
* **fail-over re-binding** -- a promotion moves a partition's master to a
  different element (and usually site), which changes both the commit log
  to subscribe to and the link its shipments travel.  The lifecycle layer
  calls :meth:`rebind` after promotions and recoveries; link membership is
  recomputed from live channel state at every round, so a round armed just
  before a fail-over can never ship along a stale binding.

Three queue-health policies ride on the rounds:

* **stall handling** -- a round that found backlog it could not ship
  re-arms itself after ``retry_interval``, so a healing partition drains
  exactly like the polling loops would, without the idle cost while
  everything is healthy.  When the mux is subscribed to the availability
  manager (:meth:`bind_availability`, the default deployment wiring), a
  stall caused by a *down endpoint* does not poll at all: the link re-arms
  exactly on the component's recovery notification.  Network-level stalls
  (a partitioned backbone has no recovery event) keep the cadence retry;
* **per-shipment backpressure** -- ``shipment_max_records`` caps how many
  records one round may carry over one link, so a fat burst (a recovered
  slave's whole outage backlog, a bulk provisioning run) splits into
  bounded frames over consecutive rounds instead of one huge transfer;
* **WAL retention** -- with ``wal_retention`` set, a master commit log
  that grew past the limit is truncated through the *slowest shipped-LSN
  cursor* of its outgoing channels (capped at the durability watermark, so
  checkpoint/crash semantics are untouched), bounding log memory on long
  runs without ever dropping an unshipped record.  A bound CDC stream
  (:meth:`bind_cdc`) adds its tapped-LSN cursors to the same minimum, so
  retention also never drops a record the change-data-capture plane has
  not folded.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.net.errors import NetworkError
from repro.replication.asynchronous import AsyncReplicationChannel
from repro.sim import units


class ReplicationMux:
    """Owns every async channel of a deployment; ships per site pair."""

    def __init__(self, sim, network, *,
                 ship_linger: float = 50 * units.MILLISECOND,
                 frame_bytes: int = 256,
                 retry_interval: Optional[float] = None,
                 shipment_max_records: Optional[int] = None,
                 wal_retention: Optional[int] = None,
                 metrics=None):
        if ship_linger <= 0:
            raise ValueError("ship linger must be positive")
        if frame_bytes < 0:
            raise ValueError("frame bytes cannot be negative")
        if shipment_max_records is not None and shipment_max_records < 1:
            raise ValueError("shipment max records must be at least 1")
        if wal_retention is not None and wal_retention < 1:
            raise ValueError("wal retention must be at least 1 record")
        self.sim = sim
        self.network = network
        self.ship_linger = ship_linger
        self.frame_bytes = frame_bytes
        self.retry_interval = (retry_interval if retry_interval is not None
                               else ship_linger)
        self.shipment_max_records = shipment_max_records
        self.wal_retention = wal_retention
        self.metrics = metrics
        self.channels: List[AsyncReplicationChannel] = []
        self.wakeups = 0
        self.shipments = 0
        self.records_shipped = 0
        self.stalled_rounds = 0
        self.wal_records_truncated = 0
        #: Links with a shipping round armed (pending in the event queue).
        self._armed: Set[Tuple] = set()
        #: Per-link rotation of the member scan under a shipment cap, so
        #: the budget is not always spent on the same first channels.
        self._scan_offset: Dict[Tuple, int] = {}
        #: ``(wal, listener)`` pairs currently subscribed.
        self._subscriptions: List[Tuple] = []
        #: The availability manager whose recovery notifications re-arm
        #: stalled links (``None`` falls back to cadence retries).
        self._availability = None
        #: CDC cursor callback ``(wal) -> tapped LSN or None``; retention
        #: never truncates past it (see :meth:`bind_cdc`).
        self._cdc_cursor = None
        self._running = False
        #: Bumped by stop()/rebind(); an armed round whose generation is
        #: stale does nothing when it fires.
        self._generation = 0

    # -- lifecycle ---------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._running

    def bind_metrics(self, metrics) -> None:
        """Record wakeup counters and shipment histograms into ``metrics``."""
        self.metrics = metrics

    def bind_availability(self, availability_manager) -> None:
        """Re-arm stalled links exactly on component recovery.

        Subscribes to the availability manager's recovery notifications:
        when a component returns to service, every link holding backlog
        whose endpoints are now both available gets a shipping round armed
        on the interval grid.  With the subscription in place, rounds
        stalled by a *down endpoint* stop falling back to the cadence
        retry -- an outage costs zero replication wakeups instead of one
        per ``retry_interval``.
        """
        if self._availability is availability_manager:
            return
        self._availability = availability_manager
        availability_manager.subscribe_recovery(self._on_recovery)

    def bind_cdc(self, cursor_for) -> None:
        """Pin WAL retention behind the CDC plane's tapped-LSN cursors.

        ``cursor_for(wal)`` returns the change stream's highest processed
        LSN on that log (``None`` when the log is untapped).  With the
        binding in place, :meth:`_apply_retention` includes the cursor in
        its safe-LSN minimum, so retention can never drop a record the
        stream has not folded -- a paused stream (a consumer catching up)
        pins the log instead of losing events.  Unbound (the default, and
        whenever ``UDRConfig.cdc`` is ``None``) retention behaves exactly
        as before.
        """
        self._cdc_cursor = cursor_for

    def _on_recovery(self, _component_name: str) -> None:
        if not self._running:
            return
        for channel in self.channels:
            if channel.has_backlog() and self._endpoints_available(channel):
                self._arm(channel.link_sites(), self._grid_delay())

    @staticmethod
    def _endpoints_available(channel: AsyncReplicationChannel) -> bool:
        ends = channel.endpoints()
        return ends is not None and ends[0].available and ends[1].available

    def attach(self, channel: AsyncReplicationChannel) -> None:
        """Take ownership of one channel (the channel's own process stays
        stopped; the mux drives its primitives)."""
        self.channels.append(channel)
        if self._running:
            self.rebind()

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._rebuild()

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self._generation += 1
        self._unsubscribe_all()
        self._armed.clear()

    def rebind(self) -> None:
        """Recompute master-log subscriptions and re-arm links with backlog.

        Called by the lifecycle layer after fail-over promotions and
        element recoveries: a new master means a new commit log to listen
        on and a new site pair for the partition's shipments.
        """
        if not self._running:
            return
        self._generation += 1
        self._armed.clear()
        self._rebuild()

    def _rebuild(self) -> None:
        self._unsubscribe_all()
        by_wal: Dict[int, Tuple] = {}
        for channel in self.channels:
            master_name = channel.replica_set.master_element_name
            if master_name is None or \
                    master_name == channel.slave_element_name:
                continue
            wal = channel.replica_set.copy_on(master_name).wal
            entry = by_wal.get(id(wal))
            if entry is None:
                entry = (wal, [])
                by_wal[id(wal)] = entry
            entry[1].append(channel)
        for wal, channels in by_wal.values():
            listener = self._make_listener(channels)
            wal.subscribe(listener)
            self._subscriptions.append((wal, listener))
        # Arm a round for every link already holding backlog (start after
        # traffic, fail-over hand-off, element recovery).
        for channel in self.channels:
            if channel.has_backlog():
                self._arm(channel.link_sites(), self._grid_delay())

    def _unsubscribe_all(self) -> None:
        for wal, listener in self._subscriptions:
            wal.unsubscribe(listener)
        self._subscriptions = []

    def _make_listener(self, channels: List[AsyncReplicationChannel]):
        def on_commit(_record) -> None:
            if not self._running:
                return
            for channel in channels:
                self._arm(channel.link_sites(), self._grid_delay())
        return on_commit

    # -- rounds ------------------------------------------------------------------

    def _grid_delay(self) -> float:
        """Delay to the next multiple of the ship-linger interval.

        The polling loops ticked at exactly these instants, so shipping on
        the same grid preserves replica freshness record for record; the
        saving is that grid points without pending commits cost nothing.
        """
        periods = math.floor(self.sim.now / self.ship_linger) + 1
        return max(0.0, periods * self.ship_linger - self.sim.now)

    def _arm(self, key, delay: float) -> None:
        if key is None or key in self._armed or not self._running:
            return
        self._armed.add(key)
        self.sim.process(self._round(key, self._generation, delay),
                         name=f"repl-mux:{key[0].name}->{key[1].name}")

    def _round(self, key, generation: int, delay: float):
        # The link stays *armed* until the round completes, so commits that
        # land while a round's transfer is in flight never spawn an
        # overlapping round re-shipping the same in-flight records; the
        # backlog check at the end picks them up instead.
        yield self.sim.timeout(delay)
        if generation != self._generation:
            return
        self.wakeups += 1
        self._count("replication.mux.wakeups")
        rearm = yield from self._ship_link(key)
        if generation != self._generation:
            return
        self._armed.discard(key)
        if rearm is not None:
            self._arm(key, rearm)
        elif any(channel.link_sites() == key and channel.has_backlog()
                 and self._endpoints_available(channel)
                 for channel in self.channels):
            # Commits that landed during the transfer, or a batch-limit /
            # shipment-cap truncation that left records behind.  Backlog on
            # a down endpoint does not count: it either re-arms on the
            # recovery notification (bind_availability) or was already
            # scheduled a cadence retry by _ship_link.
            self._arm(key, self._grid_delay())

    def _ship_link(self, key):
        """Generator: one shipping round over one ``(site, site)`` link.

        Membership is recomputed here, from live channel state, so
        fail-overs between arming and firing are honoured automatically.
        Returns the re-arm delay when the round stalled, else ``None`` --
        endpoint stalls return ``None`` too once the mux is subscribed to
        recovery notifications (the link re-arms on recovery, not on a
        cadence).  ``shipment_max_records`` caps the round's payload; what
        does not fit stays backlogged for the next grid point, and the
        member scan rotates round over round so a channel that keeps the
        budget busy cannot starve its link-mates indefinitely.
        """
        source, destination = key
        members = [channel for channel in self.channels
                   if channel.link_sites() == key]
        if self.shipment_max_records is not None and len(members) > 1:
            start = self._scan_offset.get(key, 0) % len(members)
            self._scan_offset[key] = start + 1
            members = members[start:] + members[:start]
        shipment = []
        endpoint_stalled = False
        budget = self.shipment_max_records
        for channel in members:
            master_element, slave_element = channel.endpoints()
            if not master_element.available or not slave_element.available:
                if channel.has_backlog():
                    channel.stalled_rounds += 1
                    endpoint_stalled = True
                continue
            if budget is not None and budget <= 0:
                continue  # out of budget; stall accounting still ran above
            master_name, records = channel.pending_records()
            if budget is not None and len(records) > budget:
                records = records[:budget]
            if records:
                if budget is not None:
                    budget -= len(records)
                shipment.append((channel, master_name, records))
        if shipment:
            payload = self.frame_bytes + sum(
                channel.bytes_per_record * len(records)
                for channel, _master, records in shipment)
            try:
                yield from self.network.transfer(source, destination,
                                                 payload_bytes=payload,
                                                 stream="replication")
            except NetworkError:
                for channel, _master, _records in shipment:
                    channel.stalled_rounds += 1
                self.stalled_rounds += 1
                self._count("replication.mux.stalled")
                return self.retry_interval
            total = 0
            for channel, master_name, records in shipment:
                channel.apply(master_name, records)
                total += len(records)
                if self.metrics is not None:
                    linger = self.metrics.histogram("replication.mux.linger")
                    for record in records:
                        linger.record(max(0.0, self.sim.now - record.timestamp))
            self.shipments += 1
            self.records_shipped += total
            self._count("replication.mux.shipments")
            self._count("replication.mux.records", total)
            if self.metrics is not None:
                self.metrics.histogram(
                    "replication.mux.shipment_size").record(total)
            self._apply_retention()
        if endpoint_stalled and self._availability is None:
            return self.retry_interval
        return None

    # -- WAL retention -----------------------------------------------------------

    def _apply_retention(self) -> None:
        """Truncate over-long master logs through the slowest shipped cursor.

        For every master commit log longer than ``wal_retention`` records,
        drop the prefix every outgoing channel has already shipped *and*
        the checkpointer has already made durable.  A channel that never
        shipped (cursor 0) or a log with no durable prefix keeps everything
        -- retention never drops a record some slave (or a crash recovery)
        could still need.
        """
        if self.wal_retention is None:
            return
        by_wal: Dict[int, Tuple] = {}
        for channel in self.channels:
            master_name = channel.replica_set.master_element_name
            if master_name is None or \
                    master_name == channel.slave_element_name:
                continue
            wal = channel.replica_set.copy_on(master_name).wal
            entry = by_wal.get(id(wal))
            if entry is None:
                entry = (wal, [])
                by_wal[id(wal)] = entry
            entry[1].append(channel.shipped_lsn(master_name))
        for wal, cursors in by_wal.values():
            if len(wal) <= self.wal_retention or not cursors:
                continue
            safe_lsn = min(min(cursors), wal.durable_lsn)
            if self._cdc_cursor is not None:
                tapped = self._cdc_cursor(wal)
                if tapped is not None:
                    safe_lsn = min(safe_lsn, tapped)
            if safe_lsn <= 0:
                continue
            dropped = wal.truncate_through(safe_lsn)
            if dropped:
                self.wal_records_truncated += dropped
                self._count("replication.wal.truncated", dropped)

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.increment(name, amount)

    def __repr__(self) -> str:
        return (f"<ReplicationMux channels={len(self.channels)} "
                f"wakeups={self.wakeups} shipments={self.shipments} "
                f"running={self._running}>")
