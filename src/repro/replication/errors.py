"""Exceptions raised by the replication layer."""


class ReplicationError(Exception):
    """Base class for replication failures."""


class MasterUnreachable(ReplicationError):
    """A write could not be executed because the master copy is unreachable.

    This is the concrete form of the paper's "favour Consistency over
    Availability on a partition": clients on the wrong side of a partition
    see their write transactions fail with this error.
    """

    def __init__(self, partition_name, master_element, reason="unreachable"):
        super().__init__(
            f"master copy of {partition_name} on {master_element!r} is {reason}")
        self.partition_name = partition_name
        self.master_element = master_element
        self.reason = reason


class NotEnoughReplicas(ReplicationError):
    """A quorum/dual commit could not gather the required acknowledgements."""

    def __init__(self, required, achieved):
        super().__init__(
            f"required {required} replica acknowledgements, got {achieved}")
        self.required = required
        self.achieved = achieved
