"""Replication between geographically dispersed copies of subscriber data.

The paper's baseline design (section 3.2) is **single-master asynchronous
replication**: every piece of data has one master copy taking all writes and
replicating them, in commit order, to slave copies in other locations.  On a
partition the system therefore favours Consistency (writes that cannot reach
the master fail).  Section 5 sketches the evolutions operators ask for:
multi-master operation during partitions (favouring Availability, paying with
a post-incident consistency-restoration run), and tunable durability -- either
Cassandra-style quorum commits or the paper's cheaper *dual-in-sequence*
scheme.

Every one of those schemes is implemented here so the experiments can compare
them:

* :mod:`repro.replication.replica_set` -- master/slave bookkeeping, failover.
* :mod:`repro.replication.asynchronous` -- the baseline async log shipping.
* :mod:`repro.replication.mux` -- the site-pair multiplexer: wake-on-commit
  shipping that coalesces every channel of one ``(master site, slave site)``
  link into a single network transfer per round.
* :mod:`repro.replication.synchronous` -- dual-in-sequence commit (section 5).
* :mod:`repro.replication.quorum` -- Cassandra-style W-of-N commit.
* :mod:`repro.replication.multimaster` -- accept-anywhere mode for partitions.
* :mod:`repro.replication.conflict` -- divergence detection and resolution.
* :mod:`repro.replication.restoration` -- post-partition consistency restoration.
"""

from repro.replication.errors import (
    MasterUnreachable,
    NotEnoughReplicas,
    ReplicationError,
)
from repro.replication.replica_set import ReplicaSet
from repro.replication.asynchronous import AsyncReplicationChannel, ReplicationLag
from repro.replication.mux import ReplicationMux
from repro.replication.synchronous import DualInSequenceReplicator
from repro.replication.quorum import QuorumReplicator, QuorumWrite
from repro.replication.multimaster import MultiMasterCoordinator
from repro.replication.conflict import (
    AttributeMergeResolver,
    ConflictResolver,
    KeyConflict,
    LastWriterWinsResolver,
    PreferOriginResolver,
    detect_conflicts,
)
from repro.replication.restoration import ConsistencyRestoration, RestorationReport

__all__ = [
    "AsyncReplicationChannel",
    "AttributeMergeResolver",
    "ConflictResolver",
    "ConsistencyRestoration",
    "DualInSequenceReplicator",
    "KeyConflict",
    "LastWriterWinsResolver",
    "MasterUnreachable",
    "MultiMasterCoordinator",
    "NotEnoughReplicas",
    "PreferOriginResolver",
    "QuorumReplicator",
    "QuorumWrite",
    "ReplicaSet",
    "ReplicationMux",
    "ReplicationError",
    "ReplicationLag",
    "RestorationReport",
    "detect_conflicts",
]
