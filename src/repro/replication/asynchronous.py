"""Asynchronous master-to-slave log shipping (the paper's baseline).

Section 3.3.1 decision 2: "Replication of writes from the master to the slave
copies is performed asynchronously, so execution of a transaction does not
have to wait until the corresponding write(s) have been propagated to the
slave replica(s)."

The channel tracks one ``(partition, slave element)`` stream: which records
of the current master's commit log the slave has not applied yet, and how to
apply them in commit order, preserving the master's serialisation order.
Partitions or element failures simply stall the stream; the growing gap is
the replication lag that produces stale slave reads (experiment E04) and
lost transactions on master crashes (experiment E05).

Two drivers exist:

* the channel's own background polling process (:meth:`start`), one wakeup
  every ``interval`` per channel -- the paper's literal description, kept as
  the baseline (``UDRConfig.replication_mux=False``);
* the :class:`~repro.replication.mux.ReplicationMux`, which owns *all*
  channels of a deployment, wakes on commit, and ships every channel of one
  ``(master site, slave site)`` link in a single network transfer.  For that
  the channel exposes its shipping state as process-less primitives:
  :meth:`endpoints`, :meth:`pending_records` and :meth:`apply`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.errors import NetworkError
from repro.replication.replica_set import ReplicaSet
from repro.sim import Interrupt, units
from repro.storage.wal import LogRecord


@dataclass
class ReplicationLag:
    """How far a slave copy is behind its master."""

    records: int
    seconds: float

    @property
    def in_sync(self) -> bool:
        return self.records == 0


class AsyncReplicationChannel:
    """Ships commit-log records from the current master to one slave element."""

    def __init__(self, sim, network, replica_set: ReplicaSet,
                 slave_element_name: str,
                 interval: float = 50 * units.MILLISECOND,
                 batch_limit: int = 500,
                 bytes_per_record: int = 700):
        if interval <= 0:
            raise ValueError("replication interval must be positive")
        if batch_limit < 1:
            raise ValueError("batch limit must be at least 1")
        self.sim = sim
        self.network = network
        self.replica_set = replica_set
        self.slave_element_name = slave_element_name
        self.interval = interval
        self.batch_limit = batch_limit
        self.bytes_per_record = bytes_per_record
        # Shipped position is tracked per master element because a failover
        # switches to a different commit log with its own LSN space.
        self._shipped_lsn: Dict[str, int] = {}
        self.records_shipped = 0
        self.batches_shipped = 0
        self.stalled_rounds = 0
        #: Shipped records rejected because the slave had already applied a
        #: newer promotion epoch (a deposed master's in-flight shipment).
        self.fenced_drops = 0
        #: Polling-loop wakeups (the cadence cost the mux eliminates).
        self.wakeups = 0
        self.last_ship_time: Optional[float] = None
        self._running = False
        self._process = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self):
        """Start the background polling process (legacy per-channel mode)."""
        if self._running:
            return self._process
        self._running = True
        self._process = self.sim.process(self._run(), name=self._label())
        return self._process

    def stop(self) -> None:
        """Stop and *drain* the polling process.

        The process is interrupted out of its pending interval timeout, so a
        stopped channel neither ships one last round at the next tick nor
        lingers in the event queue -- which matters once the mux creates and
        destroys bindings on fail-over.
        """
        self._running = False
        process, self._process = self._process, None
        if process is not None and process.is_alive:
            process.interrupt("channel stopped")

    def _label(self) -> str:
        return (f"async-repl:{self.replica_set.partition.name}"
                f"->{self.slave_element_name}")

    # -- shipping state (shared with the mux) --------------------------------------

    def endpoints(self):
        """``(master element, slave element)`` of the current binding.

        ``None`` while the partition has no master, or when this channel's
        slave *is* the master (after a fail-over promoted it) -- there is
        nothing to ship either way.
        """
        master_name = self.replica_set.master_element_name
        if master_name is None or master_name == self.slave_element_name:
            return None
        return (self.replica_set.element(master_name),
                self.replica_set.element(self.slave_element_name))

    def link_sites(self):
        """The ``(master site, slave site)`` pair shipments travel over."""
        ends = self.endpoints()
        if ends is None:
            return None
        return (ends[0].site, ends[1].site)

    def shipped_lsn(self, master_name: str) -> int:
        """The shipped cursor on ``master_name``'s log (0 = nothing yet).

        The replication mux's WAL-retention policy truncates a master log
        through the *minimum* of these cursors across its outgoing
        channels, so no record leaves the log before every slave has it.
        """
        return self._shipped_lsn.get(master_name, 0)

    def has_backlog(self) -> bool:
        """Whether the master's log holds records past the shipped cursor.

        O(1): compares the log's last LSN against the cursor, without
        scanning (some of the backlog may turn out to be already applied
        on the slave -- :meth:`pending_records` filters that).
        """
        master_name = self.replica_set.master_element_name
        if master_name is None or master_name == self.slave_element_name:
            return False
        master_copy = self.replica_set.copy_on(master_name)
        return master_copy.wal.last_lsn > self._shipped_lsn.get(master_name, 0)

    def pending_records(self) -> Tuple[Optional[str], List[LogRecord]]:
        """``(master name, records to ship)``, cheaply.

        O(pending) via the shipped-LSN cursor and the slave's applied
        sequence counter.  Records the slave already applied (e.g. after a
        fail-over, when the new master's log starts with history the slave
        replicated long ago) advance the cursor without being returned, so
        no record is ever applied twice.  At most ``batch_limit`` records
        are returned per call.
        """
        master_name = self.replica_set.master_element_name
        if master_name is None or master_name == self.slave_element_name:
            return None, []
        master_copy = self.replica_set.copy_on(master_name)
        shipped_lsn = self._shipped_lsn.get(master_name, 0)
        if master_copy.wal.last_lsn == shipped_lsn:
            # Idle: nothing committed since the last round (the common case).
            return master_name, []
        examined = master_copy.wal.since(shipped_lsn)[:self.batch_limit]
        applied_position = self.replica_set.copy_on(
            self.slave_element_name).store.last_applied_position
        pending = [record for record in examined
                   if record.position > applied_position]
        if not pending and examined:
            # Everything examined is already on the slave: advance past it
            # (only past what was actually examined -- a batch-limit
            # truncation must not skip unexamined records).
            self._shipped_lsn[master_name] = examined[-1].lsn
            return master_name, []
        return master_name, pending

    def apply(self, master_name: str, records: List[LogRecord]) -> int:
        """Apply shipped records to the slave copy, in commit order.

        Idempotent: records the slave applied since they were gathered
        (a re-binding or retry racing a shipment in flight) are skipped by
        their commit sequence, so no version is ever installed twice.
        """
        if not records:
            return 0
        slave_copy = self.replica_set.copy_on(self.slave_element_name)
        applied = 0
        for record in records:
            applied_position = slave_copy.store.last_applied_position
            if record.position <= applied_position:
                if record.epoch < applied_position[0]:
                    # A deposed master's shipment raced the promotion: the
                    # slave already carries a newer epoch, so the stale
                    # records are dropped instead of installed.
                    self.fenced_drops += 1
                continue
            slave_copy.transactions.apply_log_record(record)
            applied += 1
        self._shipped_lsn[master_name] = max(
            records[-1].lsn, self._shipped_lsn.get(master_name, 0))
        if applied:
            self.records_shipped += applied
            self.batches_shipped += 1
            self.last_ship_time = self.sim.now
        return applied

    # -- the polling driver --------------------------------------------------------

    def _run(self):
        try:
            while self._running:
                yield self.sim.timeout(self.interval)
                if not self._running:
                    return
                self.wakeups += 1
                yield from self.ship_once()
        except Interrupt:
            return

    def ship_once(self):
        """Attempt one shipping round (generator; usable directly in tests)."""
        ends = self.endpoints()
        if ends is None:
            return 0
        master_element, slave_element = ends
        if not master_element.available or not slave_element.available:
            self.stalled_rounds += 1
            return 0
        master_name, pending = self.pending_records()
        if not pending:
            return 0
        try:
            yield from self.network.transfer(
                master_element.site, slave_element.site,
                payload_bytes=self.bytes_per_record * len(pending),
                stream="replication")
        except NetworkError:
            self.stalled_rounds += 1
            return 0
        return self.apply(master_name, pending)

    # -- metrics -----------------------------------------------------------------------

    def lag(self) -> ReplicationLag:
        """Current lag of the slave behind the master copy.

        O(pending): the shipped-LSN cursor bounds the log scan and the
        slave's applied sequence filters the fail-over overlap, so metrics
        sampling no longer walks the whole log on large runs.
        """
        master_name = self.replica_set.master_element_name
        if master_name is None or master_name == self.slave_element_name:
            return ReplicationLag(records=0, seconds=0.0)
        master_copy = self.replica_set.copy_on(master_name)
        shipped_lsn = self._shipped_lsn.get(master_name, 0)
        if master_copy.wal.last_lsn == shipped_lsn:
            return ReplicationLag(records=0, seconds=0.0)
        applied_position = self.replica_set.copy_on(
            self.slave_element_name).store.last_applied_position
        pending = [record for record in master_copy.wal.since(shipped_lsn)
                   if record.position > applied_position]
        if not pending:
            return ReplicationLag(records=0, seconds=0.0)
        oldest = pending[0].timestamp
        return ReplicationLag(records=len(pending),
                              seconds=max(0.0, self.sim.now - oldest))

    def __repr__(self) -> str:
        return (f"<AsyncReplicationChannel {self._label()} "
                f"shipped={self.records_shipped} stalled={self.stalled_rounds}>")
