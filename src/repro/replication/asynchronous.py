"""Asynchronous master-to-slave log shipping (the paper's baseline).

Section 3.3.1 decision 2: "Replication of writes from the master to the slave
copies is performed asynchronously, so execution of a transaction does not
have to wait until the corresponding write(s) have been propagated to the
slave replica(s)."

The channel is a background simulation process per (partition, slave element)
pair.  Every ``interval`` it ships the commit-log records the slave has not
seen yet over the network (paying backbone latency), then applies them in
commit order, preserving the master's serialisation order.  Partitions or
element failures simply stall the channel; the growing gap is the replication
lag that produces stale slave reads (experiment E04) and lost transactions on
master crashes (experiment E05).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.errors import NetworkError
from repro.replication.replica_set import ReplicaSet
from repro.sim import units


@dataclass
class ReplicationLag:
    """How far a slave copy is behind its master."""

    records: int
    seconds: float

    @property
    def in_sync(self) -> bool:
        return self.records == 0


class AsyncReplicationChannel:
    """Ships commit-log records from the current master to one slave element."""

    def __init__(self, sim, network, replica_set: ReplicaSet,
                 slave_element_name: str,
                 interval: float = 50 * units.MILLISECOND,
                 batch_limit: int = 500,
                 bytes_per_record: int = 700):
        if interval <= 0:
            raise ValueError("replication interval must be positive")
        if batch_limit < 1:
            raise ValueError("batch limit must be at least 1")
        self.sim = sim
        self.network = network
        self.replica_set = replica_set
        self.slave_element_name = slave_element_name
        self.interval = interval
        self.batch_limit = batch_limit
        self.bytes_per_record = bytes_per_record
        # Shipped position is tracked per master element because a failover
        # switches to a different commit log with its own LSN space.
        self._shipped_lsn: Dict[str, int] = {}
        self.records_shipped = 0
        self.batches_shipped = 0
        self.stalled_rounds = 0
        self.last_ship_time: Optional[float] = None
        self._running = False
        self._process = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self):
        """Start the background shipping process."""
        if self._running:
            return self._process
        self._running = True
        self._process = self.sim.process(self._run(), name=self._label())
        return self._process

    def stop(self) -> None:
        self._running = False

    def _label(self) -> str:
        return (f"async-repl:{self.replica_set.partition.name}"
                f"->{self.slave_element_name}")

    # -- shipping -------------------------------------------------------------------

    def _run(self):
        while self._running:
            yield self.sim.timeout(self.interval)
            yield from self.ship_once()

    def ship_once(self):
        """Attempt one shipping round (generator; usable directly in tests)."""
        master_name = self.replica_set.master_element_name
        if master_name is None or master_name == self.slave_element_name:
            return 0
        master_element, master_copy = self.replica_set.master
        slave_element = self.replica_set.element(self.slave_element_name)
        slave_copy = self.replica_set.copy_on(self.slave_element_name)
        if not master_element.available or not slave_element.available:
            self.stalled_rounds += 1
            return 0
        shipped_lsn = self._shipped_lsn.get(master_name, 0)
        if master_copy.wal.last_lsn == shipped_lsn:
            # Idle tick: nothing committed since the last round, so skip the
            # log scan entirely (the common case on the 50 ms cadence).
            return 0
        pending = master_copy.wal.since(shipped_lsn)[:self.batch_limit]
        # Skip records the slave already has (e.g. after a failover the new
        # master's log contains history the slave applied long ago).
        pending = [record for record in pending
                   if record.commit_seq > slave_copy.store.last_applied_seq]
        if not pending:
            self._shipped_lsn[master_name] = master_copy.wal.last_lsn
            return 0
        try:
            yield from self.network.transfer(
                master_element.site, slave_element.site,
                payload_bytes=self.bytes_per_record * len(pending))
        except NetworkError:
            self.stalled_rounds += 1
            return 0
        for record in pending:
            slave_copy.transactions.apply_log_record(record)
        self._shipped_lsn[master_name] = pending[-1].lsn
        self.records_shipped += len(pending)
        self.batches_shipped += 1
        self.last_ship_time = self.sim.now
        return len(pending)

    # -- metrics -----------------------------------------------------------------------

    def lag(self) -> ReplicationLag:
        """Current lag of the slave behind the master copy."""
        master_name = self.replica_set.master_element_name
        if master_name is None:
            return ReplicationLag(records=0, seconds=0.0)
        master_copy = self.replica_set.master_copy
        slave_copy = self.replica_set.copy_on(self.slave_element_name)
        shipped_lsn = self._shipped_lsn.get(master_name, 0)
        pending = [record for record in master_copy.wal.since(shipped_lsn)
                   if record.commit_seq > slave_copy.store.last_applied_seq]
        if not pending:
            return ReplicationLag(records=0, seconds=0.0)
        oldest = pending[0].timestamp
        return ReplicationLag(records=len(pending),
                              seconds=max(0.0, self.sim.now - oldest))

    def __repr__(self) -> str:
        return (f"<AsyncReplicationChannel {self._label()} "
                f"shipped={self.records_shipped} stalled={self.stalled_rounds}>")
