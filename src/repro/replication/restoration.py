"""Post-partition consistency restoration (paper section 5).

After a multi-master partition incident the copies of a partition hold
diverging views.  The restoration process scans the copies, detects forked
keys, resolves each conflict with the configured
:class:`~repro.replication.conflict.ConflictResolver`, writes the surviving
value back to every copy and brings lagging copies up to date.  The report it
returns quantifies the price of choosing Availability during the partition:
how many keys had to be repaired, how many updates were overwritten, and how
long the scan takes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.replication.conflict import (
    ConflictResolver,
    KeyConflict,
    LastWriterWinsResolver,
    detect_conflicts,
)
from repro.replication.replica_set import ReplicaSet
from repro.sim import units
from repro.storage.records import RecordVersion
from repro.storage.storage_element import PartitionCopy


@dataclass
class RestorationReport:
    """Outcome of one consistency-restoration run over a replica set."""

    partition_name: str
    keys_scanned: int = 0
    conflicts_found: int = 0
    conflicts_resolved: int = 0
    lagging_keys_repaired: int = 0
    records_written: int = 0
    estimated_duration: float = 0.0
    resolver_name: str = ""
    conflicts: List[KeyConflict] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the copies were already consistent."""
        return self.conflicts_found == 0 and self.lagging_keys_repaired == 0


class ConsistencyRestoration:
    """Merges the diverged copies of a partition back into one view.

    Parameters
    ----------
    resolver:
        Conflict resolution policy; defaults to last-writer-wins.
    scan_cost_per_key:
        Estimated processing time per scanned key, used to report how long a
        real restoration pass would occupy the UDR (the paper stresses that
        this runs "across the whole UDR NF").
    repair_cost_per_key:
        Additional time per conflicted or lagging key that must be rewritten.
    """

    def __init__(self, resolver: Optional[ConflictResolver] = None,
                 scan_cost_per_key: float = 20 * units.MICROSECOND,
                 repair_cost_per_key: float = 500 * units.MICROSECOND):
        self.resolver = resolver or LastWriterWinsResolver()
        self.scan_cost_per_key = scan_cost_per_key
        self.repair_cost_per_key = repair_cost_per_key

    def restore(self, replica_set: ReplicaSet,
                timestamp: float = 0.0) -> RestorationReport:
        """Run the restoration over all copies of ``replica_set``."""
        copies: Dict[str, PartitionCopy] = {
            name: replica_set.copy_on(name)
            for name in replica_set.member_names}
        report = RestorationReport(
            partition_name=replica_set.partition.name,
            resolver_name=self.resolver.name)
        all_keys: set = set()
        for copy in copies.values():
            all_keys.update(copy.store._versions.keys())
        report.keys_scanned = len(all_keys)

        conflicts = detect_conflicts(copies)
        report.conflicts_found = len(conflicts)
        report.conflicts = conflicts
        conflicted_keys = {conflict.key for conflict in conflicts}

        next_seq = 1 + max(
            (copy.store.last_applied_seq for copy in copies.values()),
            default=0)

        # Resolve forked keys: write the surviving value everywhere.
        for conflict in conflicts:
            survivor = self.resolver.resolve(conflict)
            for name, copy in copies.items():
                copy.store.apply_version(RecordVersion(
                    key=conflict.key, value=survivor, commit_seq=next_seq,
                    transaction_id=0, origin="restoration"))
                report.records_written += 1
            next_seq += 1
            report.conflicts_resolved += 1

        # Catch up lagging copies on keys that did not fork.
        for key in sorted(all_keys - conflicted_keys):
            newest: Optional[RecordVersion] = None
            for copy in copies.values():
                version = copy.store.latest(key)
                if version is not None and (
                        newest is None or version.commit_seq > newest.commit_seq):
                    newest = version
            if newest is None:
                continue
            repaired = False
            for copy in copies.values():
                current = copy.store.latest(key)
                if current is None or current.commit_seq < newest.commit_seq:
                    copy.store.apply_version(newest)
                    report.records_written += 1
                    repaired = True
            if repaired:
                report.lagging_keys_repaired += 1

        repaired_keys = report.conflicts_resolved + report.lagging_keys_repaired
        report.estimated_duration = (
            report.keys_scanned * self.scan_cost_per_key
            + repaired_keys * self.repair_cost_per_key)
        return report
