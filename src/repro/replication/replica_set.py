"""The set of copies of one data partition (one master, several slaves).

The replica set is bookkeeping shared by all replication modes: which storage
element currently holds the master copy of a partition, which elements hold
slaves, how far behind each slave is, and how to fail over to the most
up-to-date surviving copy when the master's element crashes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.storage.partitioning import DataPartition
from repro.storage.storage_element import (
    PartitionCopy,
    ReplicaRole,
    StorageElement,
)
from repro.replication.errors import ReplicationError


class ReplicaSet:
    """Master/slave copies of one partition across storage elements."""

    def __init__(self, partition: DataPartition):
        self.partition = partition
        self._members: Dict[str, Tuple[StorageElement, PartitionCopy]] = {}
        self._master_element: Optional[str] = None
        self.failovers = 0

    # -- membership -----------------------------------------------------------

    def add_member(self, element: StorageElement,
                   role: ReplicaRole) -> PartitionCopy:
        """Host a copy of the partition on ``element`` with the given role."""
        if element.name in self._members:
            raise ReplicationError(
                f"{element.name} already belongs to the replica set of "
                f"{self.partition.name}")
        if role is ReplicaRole.PRIMARY and self._master_element is not None:
            raise ReplicationError(
                f"{self.partition.name} already has a master on "
                f"{self._master_element}")
        copy = element.add_copy(self.partition, role)
        self._members[element.name] = (element, copy)
        if role is ReplicaRole.PRIMARY:
            self._master_element = element.name
        return copy

    @property
    def member_names(self) -> List[str]:
        return list(self._members)

    @property
    def replication_factor(self) -> int:
        return len(self._members)

    def element(self, name: str) -> StorageElement:
        return self._members[name][0]

    def copy_on(self, name: str) -> PartitionCopy:
        return self._members[name][1]

    def members(self) -> List[Tuple[StorageElement, PartitionCopy]]:
        return list(self._members.values())

    # -- master / slaves --------------------------------------------------------

    @property
    def master_element_name(self) -> Optional[str]:
        return self._master_element

    @property
    def master(self) -> Tuple[StorageElement, PartitionCopy]:
        if self._master_element is None:
            raise ReplicationError(
                f"{self.partition.name} currently has no master copy")
        return self._members[self._master_element]

    @property
    def master_copy(self) -> PartitionCopy:
        return self.master[1]

    @property
    def master_storage_element(self) -> StorageElement:
        return self.master[0]

    def slaves(self) -> List[Tuple[StorageElement, PartitionCopy]]:
        return [(element, copy) for name, (element, copy)
                in self._members.items() if name != self._master_element]

    def slave_names(self) -> List[str]:
        return [name for name in self._members if name != self._master_element]

    # -- health -------------------------------------------------------------------

    def available_members(self) -> List[str]:
        return [name for name, (element, _copy) in self._members.items()
                if element.available]

    def master_available(self) -> bool:
        if self._master_element is None:
            return False
        return self.element(self._master_element).available

    def most_up_to_date(self, candidates: Optional[List[str]] = None) -> Optional[str]:
        """Name of the candidate member with the highest applied commit.

        Recency is ordered by ``(epoch, commit_seq)``: after a quorum
        promotion the new master's sequence numbers can overlap the deposed
        master's unshipped tail, and the copy carrying the newest *epoch*
        is the one whose history won.
        """
        names = candidates if candidates is not None else self.available_members()
        best_name = None
        best_position = (-1, -1)
        for name in names:
            if name not in self._members:
                continue
            copy = self.copy_on(name)
            if copy.store.last_applied_position > best_position:
                best_position = copy.store.last_applied_position
                best_name = name
        return best_name

    # -- failover --------------------------------------------------------------------

    def fail_over(self, candidates: Optional[List[str]] = None) -> str:
        """Promote the most up-to-date (available) slave to master.

        Returns the new master element's name.  Raises
        :class:`ReplicationError` when no candidate is available.  The commits
        present only on the old master are *not* transferred -- that is the
        durability gap of asynchronous replication the paper's section 4.2
        worries about, and the experiments measure it.
        """
        pool = candidates if candidates is not None else self.available_members()
        pool = [name for name in pool if name != self._master_element]
        new_master = self.most_up_to_date(pool)
        if new_master is None:
            raise ReplicationError(
                f"no available replica of {self.partition.name} to promote")
        if self._master_element is not None and \
                self._master_element in self._members:
            self.copy_on(self._master_element).demote()
        self.copy_on(new_master).promote()
        self._master_element = new_master
        self.failovers += 1
        return new_master

    def set_master(self, element_name: str) -> None:
        """Explicitly designate the master copy (used by tests and restoration)."""
        if element_name not in self._members:
            raise ReplicationError(
                f"{element_name} is not a member of {self.partition.name}")
        if self._master_element is not None:
            self.copy_on(self._master_element).demote()
        self.copy_on(element_name).promote()
        self._master_element = element_name

    def __repr__(self) -> str:
        return (f"<ReplicaSet {self.partition.name} master={self._master_element} "
                f"members={len(self._members)}>")
