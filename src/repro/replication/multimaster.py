"""Multi-master operation during partitions (the paper's section 5 evolution).

"First and foremost, some sort of multi-master operation would be very
convenient so writes can be addressed to more than one single replica.  This
would allow the provisioning transactions to proceed on network partition
events."

The coordinator does not change how ordinary (partition-free) traffic works:
the designated master keeps taking all writes.  Its job is the degraded mode:
when a client cannot reach the master copy it selects a reachable copy that
*temporarily accepts writes*, records that the replica set has potentially
diverged, and exposes the bookkeeping the post-incident consistency
restoration needs (which elements accepted writes, how many, since when).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.replication.errors import MasterUnreachable
from repro.replication.replica_set import ReplicaSet


@dataclass
class DivergenceRecord:
    """Writes accepted away from the master during partition incidents."""

    element_name: str
    writes_accepted: int = 0
    first_write_at: Optional[float] = None
    last_write_at: Optional[float] = None


@dataclass
class MultiMasterStats:
    """Aggregate counters for reporting."""

    degraded_writes: int = 0
    rejected_writes: int = 0
    divergent_elements: Set[str] = field(default_factory=set)


class MultiMasterCoordinator:
    """Chooses which copy accepts a write when the master is unreachable."""

    def __init__(self, replica_set: ReplicaSet, enabled: bool = True):
        self.replica_set = replica_set
        self.enabled = enabled
        self.divergence: Dict[str, DivergenceRecord] = {}
        self.stats = MultiMasterStats()

    # -- write routing -----------------------------------------------------------

    def choose_write_element(self, reachable_elements: List[str],
                             timestamp: float = 0.0) -> str:
        """Pick the element that should accept a write right now.

        ``reachable_elements`` are the replica-set members the client's Point
        of Access can currently reach (and that are up).  The master always
        wins when reachable.  Otherwise, if multi-master is enabled, the most
        up-to-date reachable copy accepts the write and the divergence is
        recorded; if disabled the write fails with :class:`MasterUnreachable`
        -- the paper's default PC-on-partition behaviour.
        """
        master_name = self.replica_set.master_element_name
        reachable = [name for name in reachable_elements
                     if name in self.replica_set.member_names]
        if master_name in reachable and \
                self.replica_set.element(master_name).available:
            return master_name
        if not self.enabled:
            self.stats.rejected_writes += 1
            raise MasterUnreachable(self.replica_set.partition.name,
                                    master_name, reason="partitioned away")
        live = [name for name in reachable
                if self.replica_set.element(name).available]
        fallback = self.replica_set.most_up_to_date(live)
        if fallback is None:
            self.stats.rejected_writes += 1
            raise MasterUnreachable(self.replica_set.partition.name,
                                    master_name, reason="no reachable copy")
        self._record_divergence(fallback, timestamp)
        return fallback

    def _record_divergence(self, element_name: str, timestamp: float) -> None:
        record = self.divergence.setdefault(
            element_name, DivergenceRecord(element_name=element_name))
        record.writes_accepted += 1
        if record.first_write_at is None:
            record.first_write_at = timestamp
        record.last_write_at = timestamp
        self.stats.degraded_writes += 1
        self.stats.divergent_elements.add(element_name)

    # -- state -------------------------------------------------------------------

    @property
    def has_diverged(self) -> bool:
        return bool(self.divergence)

    def divergent_copy_names(self) -> List[str]:
        return sorted(self.divergence)

    def clear_divergence(self) -> None:
        """Forget divergence bookkeeping (after a successful restoration)."""
        self.divergence.clear()
        self.stats.divergent_elements.clear()

    def __repr__(self) -> str:
        return (f"<MultiMasterCoordinator {self.replica_set.partition.name} "
                f"enabled={self.enabled} degraded_writes="
                f"{self.stats.degraded_writes}>")
