"""A single blade of a blade cluster.

Blades carry two kinds of processes with complementary resource appetites
(paper section 3.4.1): storage element processes are RAM-hungry while LDAP
server processes are processor-hungry, so "combining both kinds of processes
on the same blade offers the best resource utilization chances".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim import units


class ProcessKind(enum.Enum):
    """Kinds of processes deployable to a blade."""

    STORAGE_ELEMENT = "storage_element"
    LDAP_SERVER = "ldap_server"
    BALANCER = "balancer"
    PLATFORM = "platform"


#: Nominal resource demand per process kind (fractions of a blade's CPU and RAM).
PROCESS_CPU_DEMAND: Dict[ProcessKind, float] = {
    ProcessKind.STORAGE_ELEMENT: 0.25,
    ProcessKind.LDAP_SERVER: 0.75,
    ProcessKind.BALANCER: 0.30,
    ProcessKind.PLATFORM: 0.10,
}

PROCESS_RAM_DEMAND: Dict[ProcessKind, int] = {
    ProcessKind.STORAGE_ELEMENT: 100 * units.GIB,
    ProcessKind.LDAP_SERVER: 8 * units.GIB,
    ProcessKind.BALANCER: 4 * units.GIB,
    ProcessKind.PLATFORM: 8 * units.GIB,
}


@dataclass
class Blade:
    """One blade: CPU and RAM budget plus the processes assigned to it."""

    name: str
    cpu_capacity: float = 1.0
    ram_bytes: int = 128 * units.GIB
    processes: List[ProcessKind] = field(default_factory=list)
    failed: bool = False

    # -- resource accounting ---------------------------------------------------

    def cpu_used(self) -> float:
        return sum(PROCESS_CPU_DEMAND[kind] for kind in self.processes)

    def ram_used(self) -> int:
        return sum(PROCESS_RAM_DEMAND[kind] for kind in self.processes)

    def can_host(self, kind: ProcessKind) -> bool:
        """Would adding a process of ``kind`` fit this blade's budget?"""
        if self.failed:
            return False
        fits_cpu = self.cpu_used() + PROCESS_CPU_DEMAND[kind] <= self.cpu_capacity
        fits_ram = self.ram_used() + PROCESS_RAM_DEMAND[kind] <= self.ram_bytes
        return fits_cpu and fits_ram

    def assign(self, kind: ProcessKind) -> None:
        if not self.can_host(kind):
            raise ValueError(f"{self.name} cannot host another {kind.value} process")
        self.processes.append(kind)

    def release(self, kind: ProcessKind) -> None:
        self.processes.remove(kind)

    def process_count(self, kind: ProcessKind) -> int:
        return sum(1 for process in self.processes if process is kind)

    # -- failure -------------------------------------------------------------------

    def fail(self) -> None:
        self.failed = True

    def repair(self) -> None:
        self.failed = False

    def __repr__(self) -> str:
        state = "failed" if self.failed else "ok"
        return (f"<Blade {self.name!r} {state} cpu={self.cpu_used():.2f}"
                f"/{self.cpu_capacity} processes={len(self.processes)}>")
