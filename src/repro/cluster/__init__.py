"""Blade clusters: the execution platform of the UDR (paper section 3.4).

"By default, the execution platform of the UDR NF shall be a blade cluster."
Each cluster hosts RAM-hungry storage element processes and CPU-hungry LDAP
server processes, fronted by an L4 balancer that realises the Point of Access
(PoA), and is kept highly available by an SAF-style availability manager.

Scale-up adds blades/processes to a cluster; scale-out deploys additional
clusters (each with its own data-location stage instance that must first sync
its identity-location maps -- see :mod:`repro.directory.sync`).
"""

from repro.cluster.blade import Blade, ProcessKind
from repro.cluster.blade_cluster import BladeCluster, ClusterLimits
from repro.cluster.balancer import PointOfAccess
from repro.cluster.detector import (
    MembershipPlane,
    MembershipStats,
    PromotionProtocol,
    PromotionRecord,
)
from repro.cluster.saf import AvailabilityManager, ComponentState

__all__ = [
    "AvailabilityManager",
    "Blade",
    "BladeCluster",
    "ClusterLimits",
    "ComponentState",
    "MembershipPlane",
    "MembershipStats",
    "PointOfAccess",
    "PromotionProtocol",
    "PromotionRecord",
    "ProcessKind",
]
