"""A blade cluster: the unit of scale-out of the UDR.

The paper's section 3.5 sizing assumptions, which experiment E01 reproduces:

* a storage element spans 2 blades and holds 2 million subscribers;
* at most 16 storage elements per blade cluster (32 million subscribers);
* at most 32 LDAP servers per cluster, each sustaining one million indexed
  operations per second;
* at most 256 storage elements (or equivalently 256 clusters at one-SE
  granularity elsewhere in the text) per UDR NF.

A cluster also hosts one data-location stage instance and one Point of
Access; both are attached by the UDR deployment builder in
:mod:`repro.core.udr`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.blade import Blade, ProcessKind
from repro.ldap.server import LdapServer, LdapServerPool
from repro.sim import units
from repro.storage.storage_element import StorageElement


@dataclass(frozen=True)
class ClusterLimits:
    """Architectural limits of one blade cluster (paper defaults)."""

    max_blades: int = 64
    max_storage_elements: int = 16
    max_ldap_servers: int = 32
    blades_per_storage_element: int = 2

    def __post_init__(self):
        if min(self.max_blades, self.max_storage_elements,
               self.max_ldap_servers, self.blades_per_storage_element) < 1:
            raise ValueError("cluster limits must all be positive")


class BladeCluster:
    """One blade cluster at a site, hosting SEs and LDAP servers."""

    def __init__(self, name: str, site=None,
                 limits: Optional[ClusterLimits] = None,
                 blade_ram_bytes: int = 128 * units.GIB):
        self.name = name
        self.site = site
        self.limits = limits or ClusterLimits()
        self.blade_ram_bytes = blade_ram_bytes
        self.blades: List[Blade] = []
        self.storage_elements: List[StorageElement] = []
        self.ldap_pool = LdapServerPool(name=f"{name}-ldap")
        self._next_blade = 0

    # -- blades ----------------------------------------------------------------

    def add_blade(self) -> Blade:
        if len(self.blades) >= self.limits.max_blades:
            raise ValueError(
                f"cluster {self.name!r} is full ({self.limits.max_blades} blades)")
        blade = Blade(name=f"{self.name}-blade-{self._next_blade}",
                      ram_bytes=self.blade_ram_bytes)
        self._next_blade += 1
        self.blades.append(blade)
        return blade

    def _blades_with_room(self, kind: ProcessKind, count: int) -> List[Blade]:
        """Find (adding blades as allowed) ``count`` blades able to host ``kind``."""
        chosen: List[Blade] = []
        for blade in self.blades:
            if len(chosen) == count:
                break
            if blade.can_host(kind):
                chosen.append(blade)
        while len(chosen) < count and len(self.blades) < self.limits.max_blades:
            blade = self.add_blade()
            if blade.can_host(kind):
                chosen.append(blade)
        if len(chosen) < count:
            raise ValueError(
                f"cluster {self.name!r} has no room for {count} more "
                f"{kind.value} process(es)")
        return chosen

    # -- storage elements ----------------------------------------------------------

    def add_storage_element(self, element: StorageElement) -> StorageElement:
        """Host a storage element (spanning the configured number of blades)."""
        if len(self.storage_elements) >= self.limits.max_storage_elements:
            raise ValueError(
                f"cluster {self.name!r} already hosts the maximum of "
                f"{self.limits.max_storage_elements} storage elements")
        blades = self._blades_with_room(ProcessKind.STORAGE_ELEMENT,
                                        self.limits.blades_per_storage_element)
        for blade in blades:
            blade.assign(ProcessKind.STORAGE_ELEMENT)
        element.site = self.site if element.site is None else element.site
        self.storage_elements.append(element)
        return element

    # -- LDAP servers ------------------------------------------------------------------

    def add_ldap_server(self, capacity_ops_per_second: int =
                        LdapServer.DEFAULT_CAPACITY_OPS_PER_SECOND) -> LdapServer:
        if len(self.ldap_pool) >= self.limits.max_ldap_servers:
            raise ValueError(
                f"cluster {self.name!r} already hosts the maximum of "
                f"{self.limits.max_ldap_servers} LDAP servers")
        blade = self._blades_with_room(ProcessKind.LDAP_SERVER, 1)[0]
        blade.assign(ProcessKind.LDAP_SERVER)
        server = LdapServer(
            name=f"{self.name}-ldap-{len(self.ldap_pool)}",
            capacity_ops_per_second=capacity_ops_per_second)
        self.ldap_pool.add_server(server)
        return server

    # -- capacity summaries -----------------------------------------------------------------

    @property
    def subscriber_capacity(self) -> int:
        return sum(element.subscriber_capacity
                   for element in self.storage_elements)

    @property
    def ldap_capacity_ops_per_second(self) -> int:
        return self.ldap_pool.capacity_ops_per_second

    def available_storage_elements(self) -> List[StorageElement]:
        return [element for element in self.storage_elements if element.available]

    def blade_count(self) -> int:
        return len(self.blades)

    def __repr__(self) -> str:
        return (f"<BladeCluster {self.name!r} blades={len(self.blades)} "
                f"SEs={len(self.storage_elements)} ldap={len(self.ldap_pool)}>")
