"""Lease-based failure detection, quorum promotion and epoch fencing.

The paper's availability story assumes fail-over is *triggered correctly*;
this module supplies the trigger.  Three cooperating pieces:

* **Leases** -- every site observes every storage element each
  ``heartbeat_interval`` through the existing
  :class:`~repro.cluster.saf.AvailabilityManager` component states and the
  network's direction-aware reachability.  A probe succeeds only when the
  element is in service *and* the observer/element sites have bidirectional
  contact; ``lease_ticks`` consecutive misses raise a suspicion.
  Symmetrically, a master copy renews its own lease only while its site has
  bidirectional contact with a majority of sites, and **self-fences** after
  ``lease_ticks`` failed renewals -- so by the time a quorum could first
  agree the master is gone, the master itself has already stopped
  accepting writes.  That ordering (renewals are evaluated before
  promotions every round) is what makes the protocol split-brain-proof
  without real-time clocks.

* **Partition awareness** -- an observer whose own site cannot reach a
  majority of sites is on the minority side of a partition: its suspicions
  are classified as *link* suspicions (counted, never voted), so an
  isolated site never triggers a promotion of the elements it merely
  cannot see.

* **Quorum promotion with epochs** -- when a majority of connected sites
  suspect a master element, the :class:`PromotionProtocol` collects one
  vote round-trip per agreeing site (over the dedicated ``membership``
  network stream), promotes the most up-to-date copy on the quorum side
  through :meth:`~repro.core.lifecycle.ClusterController.fail_over` (the
  internal arm), and stamps the promotion with a monotonically increasing
  **epoch**.  The epoch fences the deposed master end-to-end: its storage
  commits answer ``FENCED``, its stale replication shipments are dropped
  by position, and the CDC stream tags records with the epoch that
  durably committed them.  A deposed master that rejoins receives its
  pending fence, replays its acked-but-unshipped tail onto the new master
  as fresh current-epoch commits (skipping keys the newer epoch already
  superseded), and is force-resynchronised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.saf import ComponentState
from repro.net.errors import NetworkError
from repro.sim import Interrupt
from repro.storage.errors import StorageError


@dataclass(frozen=True)
class PromotionRecord:
    """One epoch-stamped promotion of a partition's mastership."""

    partition_index: int
    epoch: int
    old_master: Optional[str]
    new_master: str
    at: float
    #: How the promotion was triggered: ``"detector"`` (quorum suspicion)
    #: or ``"oracle"`` (an explicit ``fail_over`` call).
    trigger: str = "detector"
    #: Whether the deposed master was already safe (crashed or fenced) at
    #: the instant of promotion -- the split-brain invariant chaos
    #: campaigns assert for every detector-triggered promotion.  ``None``
    #: when the partition had no previous master.
    old_master_fenced: Optional[bool] = None


@dataclass
class MembershipStats:
    """Counters the membership plane keeps for experiments and tests."""

    ticks: int = 0
    suspicions: int = 0
    link_suspicions: int = 0
    self_fences: int = 0
    unfences: int = 0
    promotions: int = 0
    aborted_promotions: int = 0
    fences_delivered: int = 0
    handoff_commits: int = 0
    handoff_skipped_superseded: int = 0
    handoff_conflicts: int = 0


class PromotionProtocol:
    """Epoch registry, vote collection, fence delivery and rejoin handoff.

    The protocol owns the authoritative per-partition epoch counter.  Every
    promotion -- detector-driven or oracle -- goes through
    :meth:`register_promotions`, which advances the epoch, stamps the new
    master's transaction manager, and queues a fence for the deposed one.
    Fences that cannot be delivered (the deposed element is down or cut
    off) stay pending and are retried every membership round; delivery
    runs the rejoin handoff and a force-resync so the returning copy folds
    back in as a consistent slave.
    """

    def __init__(self, sim, deployment, controller, policy,
                 stats: Optional[MembershipStats] = None):
        self.sim = sim
        self.deployment = deployment
        self.controller = controller
        self.policy = policy
        self.stats = stats if stats is not None else MembershipStats()
        #: Authoritative promotion epoch per partition (0 = never promoted).
        self.epochs: Dict[int, int] = {}
        #: Every promotion ever performed, in order.
        self.history: List[PromotionRecord] = []
        #: Undelivered fences: ``(element name, partition)`` -> epoch.
        self.pending_fences: Dict[Tuple[str, int], int] = {}

    # -- epochs ----------------------------------------------------------------

    def epoch_of(self, partition_index: int) -> int:
        return self.epochs.get(partition_index, 0)

    def current_master_for(self, partition_index: int,
                           epoch: int) -> Optional[str]:
        """The element promoted at ``epoch`` (None for the epoch-0 seed)."""
        for record in reversed(self.history):
            if record.partition_index == partition_index and \
                    record.epoch == epoch:
                return record.new_master
        return None

    # -- promotion bookkeeping ---------------------------------------------------

    def register_promotions(self, old_master: Optional[str],
                            promotions: Dict[int, str],
                            trigger: str = "oracle") -> None:
        """Stamp completed promotions with fresh epochs and queue fences.

        Called by :meth:`~repro.core.lifecycle.ClusterController.fail_over`
        (the internal arm) after the replica sets switched masters; under
        ``membership=None`` nothing ever calls this and the oracle path is
        bit-identical to not having the feature.
        """
        for partition_index in sorted(promotions):
            new_master = promotions[partition_index]
            epoch = self.epochs.get(partition_index, 0) + 1
            self.epochs[partition_index] = epoch
            replica_set = self.deployment.replica_sets[partition_index]
            replica_set.copy_on(new_master).transactions.promote_epoch(epoch)
            old_master_fenced: Optional[bool] = None
            if old_master is not None and \
                    old_master in replica_set.member_names:
                old_master_fenced = (
                    not replica_set.element(old_master).available
                    or replica_set.copy_on(old_master).transactions.fenced)
            self.history.append(PromotionRecord(
                partition_index=partition_index, epoch=epoch,
                old_master=old_master, new_master=new_master,
                at=self.sim.now, trigger=trigger,
                old_master_fenced=old_master_fenced))
            self.stats.promotions += 1
            if old_master is not None and \
                    old_master in replica_set.member_names:
                self.pending_fences[(old_master, partition_index)] = epoch
            self._ensure_reverse_channels(replica_set)
        self.deliver_pending_fences()

    def _ensure_reverse_channels(self, replica_set) -> None:
        """Create shipping channels the promotion just made necessary.

        The deployment builder wires one channel per *initial* slave; a
        promotion turns the deposed master into a slave no channel ships
        to, which would leave it permanently behind the new master.  The
        real system establishes the reverse stream as part of the
        switchover, so the protocol does too -- only here, on the
        membership path, keeping ``membership=None`` deployments
        bit-identical to the builder's wiring.
        """
        # Imported here: repro.cluster must not depend on the replication
        # layer at import time (the deployment builder owns that wiring).
        from repro.replication.asynchronous import AsyncReplicationChannel
        deployment = self.deployment
        master_name = replica_set.master_element_name
        created = False
        for member_name in replica_set.member_names:
            if member_name == master_name:
                continue
            if any(channel.replica_set is replica_set and
                   channel.slave_element_name == member_name
                   for channel in deployment.channels):
                continue
            channel = AsyncReplicationChannel(
                self.sim, deployment.network, replica_set, member_name,
                interval=self.controller.config.replication_interval)
            deployment.channels.append(channel)
            deployment.replication_mux.attach(channel)
            if self.controller.started and \
                    not self.controller.config.replication_mux:
                channel.start()
            created = True
        if created:
            deployment.replication_mux.rebind()

    # -- fence delivery / rejoin ---------------------------------------------------

    def deliver_pending_fences(self) -> int:
        """Deliver every queued fence whose deposed element is reachable.

        A fence travels from the new master's site to the deposed element,
        so delivery needs the element in service and bidirectional contact
        between the two sites.  Delivery fences the deposed copy at the
        promotion epoch, replays its acked old-epoch tail onto the new
        master (``rejoin_handoff``), and force-resynchronises the whole
        element so it rejoins as a consistent slave.
        """
        delivered = 0
        resync_elements = []
        for key in sorted(self.pending_fences):
            element_name, partition_index = key
            epoch = self.pending_fences[key]
            replica_set = self.deployment.replica_sets.get(partition_index)
            if replica_set is None or \
                    element_name not in replica_set.member_names:
                del self.pending_fences[key]
                continue
            element = replica_set.element(element_name)
            master_name = replica_set.master_element_name
            if not element.available or master_name is None:
                continue
            master_site = replica_set.element(master_name).site
            if not self._bidirectional(master_site, element.site):
                continue
            copy = replica_set.copy_on(element_name)
            copy.transactions.fence(epoch)
            if self.policy.rejoin_handoff:
                self._rejoin_handoff(replica_set, element_name, epoch)
            del self.pending_fences[key]
            self.stats.fences_delivered += 1
            delivered += 1
            if element not in resync_elements:
                resync_elements.append(element)
        for element in resync_elements:
            self.controller.resynchronise_element(element)
        return delivered

    def _rejoin_handoff(self, replica_set, deposed_name: str,
                        epoch: int) -> None:
        """Re-home the deposed master's acked-but-unshipped tail.

        Every write the deposed master acknowledged under an older epoch
        that never reached the new master is replayed as a fresh
        current-epoch commit on the new master -- through the normal
        transaction path, so replication, the CDC stream and the DIT
        catalog fold the recovered writes like any other.  Keys the newer
        epoch already superseded are skipped: the promotion's history won.
        """
        master_name = replica_set.master_element_name
        if master_name is None or master_name == deposed_name:
            return
        deposed_copy = replica_set.copy_on(deposed_name)
        master_copy = replica_set.copy_on(master_name)
        origin = deposed_copy.transactions.name
        #: key -> (value, position of the latest old-epoch write of it)
        tail: Dict[str, Tuple[object, Tuple[int, int]]] = {}
        for record in deposed_copy.wal.records:
            if record.origin != origin or record.epoch >= epoch:
                continue
            for operation in record.operations:
                tail[operation.key] = (operation.value, record.position)
        survivors = []
        for key in sorted(tail):
            value, position = tail[key]
            newest = master_copy.store.latest(key)
            if newest is not None and newest.position >= position:
                self.stats.handoff_skipped_superseded += 1
                continue
            survivors.append((key, value))
        if not survivors:
            return
        transaction = master_copy.transactions.begin()
        try:
            for key, value in survivors:
                transaction.write(key, value)
            transaction.commit(timestamp=self.sim.now)
            self.stats.handoff_commits += len(survivors)
        except StorageError:
            if transaction.is_active:
                transaction.abort(reason="rejoin handoff conflict")
            self.stats.handoff_conflicts += 1

    def _bidirectional(self, a, b) -> bool:
        network = self.deployment.network
        return network.reachable(a, b) and network.reachable(b, a)


class MembershipPlane:
    """The background detector loop driving lease renewal and promotion."""

    def __init__(self, sim, config, deployment, controller):
        self.sim = sim
        self.config = config
        self.policy = config.membership
        self.deployment = deployment
        self.controller = controller
        self.stats = MembershipStats()
        self.protocol = PromotionProtocol(sim, deployment, controller,
                                          self.policy, stats=self.stats)
        self.quorum = self.policy.quorum_for(len(deployment.topology.sites))
        #: Missed probes per ``(observer site name, element name)``.
        self._missed: Dict[Tuple[str, str], int] = {}
        #: Missed lease renewals per ``(partition, master element)``.
        self._renewals_missed: Dict[Tuple[int, str], int] = {}
        self._running = False
        self._process = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self):
        if self._running:
            return self._process
        self._running = True
        self._process = self.sim.process(self._run(), name="membership")
        return self._process

    def stop(self) -> None:
        self._running = False
        process, self._process = self._process, None
        if process is not None and process.is_alive:
            process.interrupt("membership plane stopped")

    # -- convenience -------------------------------------------------------------

    def epoch_of(self, partition_index: int) -> int:
        return self.protocol.epoch_of(partition_index)

    @property
    def history(self) -> List[PromotionRecord]:
        return list(self.protocol.history)

    # -- the detector loop --------------------------------------------------------

    def _run(self):
        interval = self.policy.heartbeat_interval
        try:
            while self._running:
                yield self.sim.timeout(interval)
                if not self._running:
                    return
                self.stats.ticks += 1
                connectivity = {
                    site: self._quorum_contact(site)
                    for site in self.deployment.topology.sites}
                self._renew_leases(connectivity)
                for element_name in self._observe(connectivity):
                    yield from self._try_promote(element_name, connectivity)
                self.protocol.deliver_pending_fences()
        except Interrupt:
            return

    # -- lease renewal / self-fencing ----------------------------------------------

    def _quorum_contact(self, site) -> bool:
        """Whether ``site`` has bidirectional contact with a site majority."""
        network = self.deployment.network
        if network.site_failed(site):
            return False
        contact = 1  # a live site always reaches itself
        for other in self.deployment.topology.sites:
            if other == site or network.site_failed(other):
                continue
            if network.reachable(site, other) and \
                    network.reachable(other, site):
                contact += 1
        return contact >= self.quorum

    def _renew_leases(self, connectivity: Dict[object, bool]) -> None:
        for index in sorted(self.deployment.replica_sets):
            replica_set = self.deployment.replica_sets[index]
            master_name = replica_set.master_element_name
            if master_name is None:
                continue
            key = (index, master_name)
            element = replica_set.element(master_name)
            manager = replica_set.copy_on(master_name).transactions
            if not self._in_service(master_name):
                # A crashed master commits nothing; its lease state resets
                # (recovery resynchronises before the copy serves again).
                self._renewals_missed.pop(key, None)
                continue
            if connectivity.get(element.site, False):
                self._renewals_missed.pop(key, None)
                if manager.fenced and \
                        self.protocol.epoch_of(index) == manager.epoch:
                    # Quorum contact regained and no promotion happened in
                    # between: the self-imposed fence can be lifted.
                    manager.unfence()
                    self.stats.unfences += 1
                continue
            missed = self._renewals_missed.get(key, 0) + 1
            self._renewals_missed[key] = missed
            if missed >= self.policy.lease_ticks and not manager.fenced:
                manager.self_fence(reason="lease lost (no quorum contact)")
                self.stats.self_fences += 1

    # -- observation -------------------------------------------------------------

    def _in_service(self, element_name: str) -> bool:
        component = self.deployment.availability_manager.component(
            element_name)
        return component.state is ComponentState.IN_SERVICE

    def _observe(self, connectivity: Dict[object, bool]) -> List[str]:
        """One heartbeat round; returns master elements under quorum suspicion."""
        network = self.deployment.network
        sites = self.deployment.topology.sites
        masters = {}
        for index in sorted(self.deployment.replica_sets):
            master = self.deployment.replica_sets[index].master_element_name
            if master is not None:
                masters.setdefault(master, []).append(index)
        suspected: List[str] = []
        for element_name, element in self.deployment.elements.items():
            alive = self._in_service(element_name)
            voters = 0
            for site in sites:
                key = (site.name, element_name)
                probe = alive and \
                    network.reachable(site, element.site) and \
                    network.reachable(element.site, site)
                if probe:
                    self._missed.pop(key, None)
                    continue
                missed = self._missed.get(key, 0) + 1
                self._missed[key] = missed
                if missed < self.policy.lease_ticks:
                    continue
                if connectivity.get(site, False):
                    # A connected observer's sustained miss is an element
                    # suspicion -- it can see the majority, so the problem
                    # is the element (or its whole site), not this link.
                    self.stats.suspicions += 1
                    voters += 1
                else:
                    # An isolated observer suspects the *link*: it cannot
                    # tell a dead element from its own partition, so its
                    # vote never counts towards promotion.
                    self.stats.link_suspicions += 1
            if voters >= self.quorum and element_name in masters:
                suspected.append(element_name)
        return suspected

    # -- promotion ----------------------------------------------------------------

    def _collect_vote(self, coordinator, site, votes: List[object]):
        """One voter's ballot: a request/ack round-trip, lost on error."""
        network = self.deployment.network
        try:
            yield from network.transfer(coordinator, site, payload_bytes=64,
                                        stream="membership")
            yield from network.transfer(site, coordinator, payload_bytes=64,
                                        stream="membership")
        except NetworkError:
            return
        votes.append(site)

    def _try_promote(self, element_name: str,
                     connectivity: Dict[object, bool]):
        """Generator: bounded quorum vote, then the internal arm.

        Ballots run concurrently and the coordinator waits only until a
        quorum has answered (or ``vote_timeout`` expires -- a ballot lost
        on the WAN raises after the link's full loss timeout, which is
        several lease windows; waiting it out synchronously would blow
        the promotion bound, so an expired round aborts and the next
        heartbeat retries while the suspicion persists).
        """
        voter_sites = [site for site in self.deployment.topology.sites
                       if connectivity.get(site, False)
                       and self._missed.get((site.name, element_name), 0)
                       >= self.policy.lease_ticks]
        if len(voter_sites) < self.quorum:
            self.stats.aborted_promotions += 1
            return
        coordinator = voter_sites[0]
        votes: List[object] = [coordinator]  # the coordinator's own vote
        ballots = [self.sim.process(
            self._collect_vote(coordinator, site, votes),
            name=f"membership:vote:{site.name}")
            for site in voter_sites[1:]]
        deadline = self.sim.now + self.policy.vote_timeout
        poll = self.policy.heartbeat_interval / 2.0
        while len(votes) < self.quorum and self.sim.now < deadline and \
                any(ballot.is_alive for ballot in ballots):
            yield self.sim.timeout(min(poll, deadline - self.sim.now))
        if len(votes) < self.quorum:
            self.stats.aborted_promotions += 1
            return
        # Promote only copies on the quorum side: a candidate without
        # quorum contact would self-fence immediately.
        candidates = [
            name for name, hosting in self.deployment.elements.items()
            if name != element_name and self._in_service(name)
            and connectivity.get(hosting.site, False)]
        promotions = self.controller.fail_over(element_name,
                                               candidates=candidates,
                                               trigger="detector")
        if not promotions:
            self.stats.aborted_promotions += 1
            return
        # A fresh mastership starts with a fresh lease.
        for partition_index, new_master in promotions.items():
            self._renewals_missed.pop((partition_index, element_name), None)
            self._renewals_missed.pop((partition_index, new_master), None)

    def __repr__(self) -> str:
        return (f"<MembershipPlane quorum={self.quorum} "
                f"promotions={self.stats.promotions} "
                f"running={self._running}>")
