"""The Point of Access: an L4 balancer in front of a cluster's LDAP servers.

"The PoA to the UDR might be provided by a L4-capable IP balancer running in
a few blades of the cluster.  The balancer spreads LDAP traffic over all the
LDAP servers available in the local blade cluster [and] automatically detects
new LDAP server instances deployed to the blade cluster" (section 3.4.1).

Clients (application front-ends, the provisioning system) talk to the PoA
closest to them; the PoA picks an LDAP server, which resolves data location
through the cluster's locator and drives the storage elements.
"""

from __future__ import annotations

from typing import Optional

from repro.directory.locator import Locator
from repro.ldap.server import LdapServer, LdapServerPool


class PointOfAccess:
    """One PoA: balancer + LDAP pool + local data-location stage instance."""

    def __init__(self, name: str, site, ldap_pool: LdapServerPool,
                 locator: Locator):
        self.name = name
        self.site = site
        self.ldap_pool = ldap_pool
        self.locator = locator
        self.available = True
        self.requests_balanced = 0

    def select_server(self) -> LdapServer:
        """Pick the LDAP server that will handle the next request."""
        if not self.available:
            raise RuntimeError(f"PoA {self.name!r} is not available")
        self.requests_balanced += 1
        return self.ldap_pool.next_server()

    def fail(self) -> None:
        """The PoA goes down (site disaster or balancer failure)."""
        self.available = False

    def restore(self) -> None:
        self.available = True

    @property
    def locator_ready(self) -> bool:
        """False while the local data-location stage is still syncing."""
        syncing = getattr(self.locator, "syncing", False)
        return not syncing

    def can_serve(self) -> bool:
        return self.available and self.locator_ready

    def __repr__(self) -> str:
        state = "up" if self.available else "down"
        return (f"<PointOfAccess {self.name!r} {state} "
                f"servers={len(self.ldap_pool)} site={self.site}>")


def closest_point_of_access(network, client_site,
                            points_of_access) -> Optional[PointOfAccess]:
    """The serving PoA for a client at ``client_site``.

    Preference order: a PoA at the same site, then the reachable PoA with the
    lowest mean latency, mirroring the paper's "there is always a point of
    access to the UDR close -- in network terms -- to any one application
    front-end, as long as the cost of doing so justifies it".
    """
    candidates = [poa for poa in points_of_access if poa.can_serve()]
    if not candidates:
        return None
    reachable = [poa for poa in candidates
                 if network.reachable(client_site, poa.site)]
    if not reachable:
        return None
    for poa in reachable:
        if poa.site == client_site:
            return poa
    return min(reachable,
               key=lambda poa: network.mean_one_way_latency(client_site, poa.site))
