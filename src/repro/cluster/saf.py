"""SAF-style availability management of cluster components.

"To maintain high availability figures, the cluster should be compliant to
the Service Availability Forum (SAF) specifications so it provides Fault
Tolerance and High Availability to the UDR processes" (section 3.4.1).

The availability manager is a simulation actor: it watches registered
components (storage elements, PoAs), notices failures, and schedules their
repair after a configurable restart/repair time, restoring them
automatically.  It also keeps per-component downtime accounting used by the
availability experiments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.sim import units


class ComponentState(enum.Enum):
    IN_SERVICE = "in-service"
    FAILED = "failed"
    REPAIRING = "repairing"


@dataclass
class ManagedComponent:
    """One component under availability management."""

    name: str
    fail_action: Callable[[], None]
    repair_action: Callable[[], None]
    repair_time: float
    state: ComponentState = ComponentState.IN_SERVICE
    failures: int = 0
    downtime: float = 0.0
    failed_at: Optional[float] = None


class AvailabilityManager:
    """Detects failures and restores components after their repair time."""

    def __init__(self, sim, name: str = "amf",
                 default_repair_time: float = 5 * units.MINUTE):
        self.sim = sim
        self.name = name
        self.default_repair_time = default_repair_time
        self._components: Dict[str, ManagedComponent] = {}
        #: Callbacks run with the component name after each recovery; the
        #: replication mux subscribes here so stalled links re-arm exactly
        #: on recovery instead of polling a retry cadence.
        self._recovery_listeners: List[Callable[[str], None]] = []

    # -- recovery notifications --------------------------------------------------

    def subscribe_recovery(self, listener: Callable[[str], None]) -> None:
        """Run ``listener(name)`` after every component recovery (idempotent)."""
        if listener not in self._recovery_listeners:
            self._recovery_listeners.append(listener)

    def unsubscribe_recovery(self, listener: Callable[[str], None]) -> None:
        """Stop notifying ``listener`` (no-op when not subscribed)."""
        if listener in self._recovery_listeners:
            self._recovery_listeners.remove(listener)

    # -- registration ----------------------------------------------------------

    def manage(self, name: str, fail_action: Callable[[], None],
               repair_action: Callable[[], None],
               repair_time: Optional[float] = None) -> ManagedComponent:
        """Put a component under management."""
        if name in self._components:
            raise ValueError(f"component {name!r} is already managed")
        component = ManagedComponent(
            name=name,
            fail_action=fail_action,
            repair_action=repair_action,
            repair_time=repair_time if repair_time is not None
            else self.default_repair_time,
        )
        self._components[name] = component
        return component

    def component(self, name: str) -> ManagedComponent:
        return self._components[name]

    # -- failure handling -----------------------------------------------------------

    def fail_component(self, name: str, auto_repair: bool = True) -> None:
        """Fail a component now; schedule its repair if ``auto_repair``."""
        component = self._components[name]
        if component.state is not ComponentState.IN_SERVICE:
            return
        component.state = ComponentState.FAILED
        component.failures += 1
        component.failed_at = self.sim.now
        component.fail_action()
        if auto_repair:
            component.state = ComponentState.REPAIRING
            self.sim.process(self._repair_later(component),
                             name=f"repair:{name}")

    def _repair_later(self, component: ManagedComponent):
        yield self.sim.timeout(component.repair_time)
        self.repair_component(component.name)

    def repair_component(self, name: str) -> None:
        component = self._components[name]
        if component.state is ComponentState.IN_SERVICE:
            return
        component.repair_action()
        if component.failed_at is not None:
            component.downtime += self.sim.now - component.failed_at
            component.failed_at = None
        component.state = ComponentState.IN_SERVICE
        for listener in tuple(self._recovery_listeners):
            listener(name)

    # -- reporting ---------------------------------------------------------------------

    def availability_of(self, name: str, observation_period: float) -> float:
        """Availability fraction of one component over an observation period."""
        if observation_period <= 0:
            raise ValueError("observation period must be positive")
        component = self._components[name]
        downtime = component.downtime
        if component.failed_at is not None:
            downtime += self.sim.now - component.failed_at
        return units.availability_from_downtime(downtime, observation_period)

    def components_in_service(self) -> int:
        return sum(1 for component in self._components.values()
                   if component.state is ComponentState.IN_SERVICE)

    def __len__(self) -> int:
        return len(self._components)

    def __repr__(self) -> str:
        return (f"<AvailabilityManager {self.name!r} "
                f"components={len(self._components)} "
                f"in_service={self.components_in_service()}>")
