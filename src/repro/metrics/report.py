"""Plain-text and markdown table formatting for experiment output.

The benchmark harness prints the same rows the paper reports (capacity
figures, trade-off positions, availability percentages); these helpers keep
that output aligned and readable without any third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _stringify(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width table with a header rule, for terminal output."""
    string_rows: List[List[str]] = [[_stringify(cell) for cell in row]
                                    for row in rows]
    headers = [str(header) for header in headers]
    widths = [len(header) for header in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(header.ljust(widths[index])
                           for index, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in string_rows:
        lines.append("  ".join(cell.ljust(widths[index])
                               for index, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str],
                          rows: Iterable[Sequence]) -> str:
    """GitHub-flavoured markdown table, for EXPERIMENTS.md."""
    headers = [str(header) for header in headers]
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        cells = [_stringify(cell) for cell in row]
        if len(cells) != len(headers):
            raise ValueError("row length does not match header length")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
