"""Availability accounting.

The paper's requirement 3: "on average any given subscriber's data must be
available 99.999% of the time", with footnote 4 clarifying that this is an
average over subscribers.  Two complementary measurements are provided:

* :class:`OperationOutcomes` -- operation-level availability (successful
  operations / attempted operations), which is what a partition experiment
  observes directly;
* :class:`AvailabilityTracker` -- time-based availability per entity
  (subscriber group, storage element...), aggregating explicit up/down
  intervals, which is what the analytic five-nines budget is written against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sim import units


@dataclass
class OperationOutcomes:
    """Success/failure counters for one class of operations."""

    attempted: int = 0
    succeeded: int = 0
    failed: int = 0
    failures_by_reason: Dict[str, int] = field(default_factory=dict)

    def record_success(self) -> None:
        self.attempted += 1
        self.succeeded += 1

    def record_failure(self, reason: str = "unknown") -> None:
        self.attempted += 1
        self.failed += 1
        self.failures_by_reason[reason] = \
            self.failures_by_reason.get(reason, 0) + 1

    def availability(self) -> float:
        """Fraction of attempted operations that succeeded."""
        if self.attempted == 0:
            return 1.0
        return self.succeeded / self.attempted

    def merge(self, other: "OperationOutcomes") -> "OperationOutcomes":
        merged = OperationOutcomes(
            attempted=self.attempted + other.attempted,
            succeeded=self.succeeded + other.succeeded,
            failed=self.failed + other.failed,
            failures_by_reason=dict(self.failures_by_reason))
        for reason, count in other.failures_by_reason.items():
            merged.failures_by_reason[reason] = \
                merged.failures_by_reason.get(reason, 0) + count
        return merged

    def __repr__(self) -> str:
        return (f"<OperationOutcomes {self.succeeded}/{self.attempted} "
                f"ok ({self.availability():.5f})>")


class AvailabilityTracker:
    """Time-based availability of named entities over an observation period."""

    def __init__(self, observation_period: float = units.YEAR):
        if observation_period <= 0:
            raise ValueError("observation period must be positive")
        self.observation_period = observation_period
        self._downtime: Dict[str, float] = {}
        self._down_since: Dict[str, float] = {}

    def mark_down(self, entity: str, timestamp: float) -> None:
        """Entity became unavailable at ``timestamp`` (idempotent)."""
        self._down_since.setdefault(entity, timestamp)
        self._downtime.setdefault(entity, 0.0)

    def mark_up(self, entity: str, timestamp: float) -> None:
        """Entity recovered at ``timestamp`` (no-op when it was not down)."""
        started = self._down_since.pop(entity, None)
        if started is None:
            return
        self._downtime[entity] = self._downtime.get(entity, 0.0) + \
            max(0.0, timestamp - started)

    def downtime_of(self, entity: str, now: Optional[float] = None) -> float:
        downtime = self._downtime.get(entity, 0.0)
        if now is not None and entity in self._down_since:
            downtime += max(0.0, now - self._down_since[entity])
        return downtime

    def availability_of(self, entity: str, now: Optional[float] = None) -> float:
        return units.availability_from_downtime(
            self.downtime_of(entity, now), self.observation_period)

    def average_availability(self, now: Optional[float] = None) -> float:
        """Mean availability over all tracked entities (1.0 when none)."""
        entities = set(self._downtime) | set(self._down_since)
        if not entities:
            return 1.0
        return sum(self.availability_of(entity, now) for entity in entities) \
            / len(entities)

    def meets_five_nines(self, entity: str, now: Optional[float] = None) -> bool:
        return self.availability_of(entity, now) >= units.FIVE_NINES

    def entities(self):
        return sorted(set(self._downtime) | set(self._down_since))

    def __repr__(self) -> str:
        return (f"<AvailabilityTracker entities={len(self._downtime)} "
                f"period={self.observation_period:.0f}s>")
