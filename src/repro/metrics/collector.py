"""A small registry of named counters, gauges and latency recorders."""

from __future__ import annotations

from typing import Dict, Optional

from repro.metrics.availability import OperationOutcomes
from repro.metrics.consistency import ConsistencyTracker
from repro.metrics.latency import LatencyRecorder


class MetricsRegistry:
    """Central home for the metrics one experiment run produces."""

    def __init__(self, name: str = "metrics"):
        self.name = name
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._latencies: Dict[str, LatencyRecorder] = {}
        self._outcomes: Dict[str, OperationOutcomes] = {}
        self._consistency: Dict[str, ConsistencyTracker] = {}

    # -- counters -------------------------------------------------------------

    def increment(self, name: str, amount: int = 1) -> int:
        self._counters[name] = self._counters.get(name, 0) + amount
        return self._counters[name]

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    # -- gauges -----------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    # -- structured metrics ---------------------------------------------------------

    def latency(self, name: str) -> LatencyRecorder:
        if name not in self._latencies:
            self._latencies[name] = LatencyRecorder(name)
        return self._latencies[name]

    def outcomes(self, name: str) -> OperationOutcomes:
        if name not in self._outcomes:
            self._outcomes[name] = OperationOutcomes()
        return self._outcomes[name]

    def consistency(self, name: str) -> ConsistencyTracker:
        if name not in self._consistency:
            self._consistency[name] = ConsistencyTracker()
        return self._consistency[name]

    # -- export -------------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict view of everything, for reports and assertions."""
        result: Dict[str, object] = {}
        result.update({f"counter.{k}": v for k, v in self._counters.items()})
        result.update({f"gauge.{k}": v for k, v in self._gauges.items()})
        for name, recorder in self._latencies.items():
            for stat, value in recorder.summary().items():
                result[f"latency.{name}.{stat}"] = value
        for name, outcomes in self._outcomes.items():
            result[f"outcomes.{name}.availability"] = outcomes.availability()
            result[f"outcomes.{name}.attempted"] = outcomes.attempted
        for name, tracker in self._consistency.items():
            result[f"consistency.{name}.stale_fraction"] = \
                tracker.stale_read_fraction()
        return result

    def names(self) -> Dict[str, list]:
        return {
            "counters": sorted(self._counters),
            "gauges": sorted(self._gauges),
            "latencies": sorted(self._latencies),
            "outcomes": sorted(self._outcomes),
            "consistency": sorted(self._consistency),
        }

    def __repr__(self) -> str:
        return (f"<MetricsRegistry {self.name!r} "
                f"counters={len(self._counters)} "
                f"latencies={len(self._latencies)}>")


_default_registry: Optional[MetricsRegistry] = None


def default_registry() -> MetricsRegistry:
    """A process-wide registry for quick scripts (experiments build their own)."""
    global _default_registry
    if _default_registry is None:
        _default_registry = MetricsRegistry("default")
    return _default_registry
