"""A small registry of named counters, gauges and latency recorders."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.metrics.availability import OperationOutcomes
from repro.metrics.consistency import ConsistencyTracker
from repro.metrics.latency import LatencyRecorder


class MetricsRegistry:
    """Central home for the metrics one experiment run produces."""

    def __init__(self, name: str = "metrics"):
        self.name = name
        self._counters: Dict[str, int] = {}
        #: Which counter names match each queried prefix.  Counter names are
        #: a small, stable set while *values* churn on every request, so the
        #: membership scan is cached per prefix and only the first increment
        #: of a brand-new name extends it -- repeated
        #: :meth:`counters_with_prefix` calls (the reconciler's per-round
        #: status, the dispatcher's per-wave shed accounting) stop paying a
        #: full-registry filter each time.
        self._prefix_members: Dict[str, List[str]] = {}
        self._gauges: Dict[str, float] = {}
        self._latencies: Dict[str, LatencyRecorder] = {}
        self._outcomes: Dict[str, OperationOutcomes] = {}
        self._consistency: Dict[str, ConsistencyTracker] = {}

    # -- counters -------------------------------------------------------------

    def increment(self, name: str, amount: int = 1) -> int:
        counters = self._counters
        if name in counters:
            counters[name] += amount
        else:
            counters[name] = amount
            for prefix, members in self._prefix_members.items():
                if name.startswith(prefix):
                    members.append(name)
        return counters[name]

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """All counters whose name starts with ``prefix`` (e.g. per-priority
        ``batch.priority.`` counters recorded by the batch pipeline).

        Values are read live; the name scan is cached (see
        ``_prefix_members``), so repeated calls for the same prefix cost
        O(matches), not O(all counters).
        """
        members = self._prefix_members.get(prefix)
        if members is None:
            members = [name for name in self._counters
                       if name.startswith(prefix)]
            self._prefix_members[prefix] = members
        counters = self._counters
        return {name: counters[name] for name in members}

    # -- gauges -----------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def set_gauge_max(self, name: str, value: float) -> None:
        """Keep the all-time maximum seen for ``name`` (high-water marks,
        e.g. the dispatcher's ``dispatcher.queue_depth_max``)."""
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = value

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    # -- structured metrics ---------------------------------------------------------

    def latency(self, name: str) -> LatencyRecorder:
        if name not in self._latencies:
            self._latencies[name] = LatencyRecorder(name)
        return self._latencies[name]

    def histogram(self, name: str) -> LatencyRecorder:
        """A value-distribution recorder; alias of :meth:`latency`.

        Used for non-latency distributions -- the replication mux's
        shipment sizes and per-record ship linger, the dispatcher's
        adaptive budgets -- which share the recorder's count/mean/percentile
        summary machinery.
        """
        return self.latency(name)

    def outcomes(self, name: str) -> OperationOutcomes:
        if name not in self._outcomes:
            self._outcomes[name] = OperationOutcomes()
        return self._outcomes[name]

    def consistency(self, name: str) -> ConsistencyTracker:
        if name not in self._consistency:
            self._consistency[name] = ConsistencyTracker()
        return self._consistency[name]

    # -- export -------------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict view of everything, for reports and assertions."""
        result: Dict[str, object] = {}
        result.update({f"counter.{k}": v for k, v in self._counters.items()})
        result.update({f"gauge.{k}": v for k, v in self._gauges.items()})
        for name, recorder in self._latencies.items():
            for stat, value in recorder.summary().items():
                result[f"latency.{name}.{stat}"] = value
        for name, outcomes in self._outcomes.items():
            result[f"outcomes.{name}.availability"] = outcomes.availability()
            result[f"outcomes.{name}.attempted"] = outcomes.attempted
        for name, tracker in self._consistency.items():
            result[f"consistency.{name}.stale_fraction"] = \
                tracker.stale_read_fraction()
        return result

    def names(self) -> Dict[str, list]:
        return {
            "counters": sorted(self._counters),
            "gauges": sorted(self._gauges),
            "latencies": sorted(self._latencies),
            "outcomes": sorted(self._outcomes),
            "consistency": sorted(self._consistency),
        }

    def __repr__(self) -> str:
        return (f"<MetricsRegistry {self.name!r} "
                f"counters={len(self._counters)} "
                f"latencies={len(self._latencies)}>")


class MetricsBatch:
    """Buffered metric recording, applied to a registry in batches.

    The operation pipeline records per-request metrics (outcomes, latency
    samples, consistency observations, counters) into a batch instead of
    straight into the registry; the batch coalesces counter increments and
    flushes everything after ``flush_threshold`` completed requests.  The
    default threshold of 1 flushes at the end of every request, so callers
    that inspect the registry between requests see exactly the same state as
    with unbatched recording; high-throughput experiments raise the
    threshold (``UDRConfig.metrics_batch_size``) and flush once per batch.
    """

    def __init__(self, registry: MetricsRegistry, flush_threshold: int = 1):
        if flush_threshold < 1:
            raise ValueError("flush threshold must be at least 1")
        self.registry = registry
        self.flush_threshold = flush_threshold
        #: Times :meth:`flush` ran; batch-path tests assert one whole
        #: ``execute_batch`` flushes exactly once.
        self.flushes = 0
        self._counters: Dict[str, int] = {}
        self._outcomes: list = []
        self._latencies: list = []
        self._reads: list = []
        self._requests_pending = 0

    # -- recording ------------------------------------------------------------

    def increment(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def record_outcome(self, client: str, success: bool,
                       reason: str = "") -> None:
        self._outcomes.append((client, success, reason))

    def record_latency(self, client: str, value: float) -> None:
        self._latencies.append((client, value))

    def record_read(self, client: str, served_from_slave: bool, stale: bool,
                    versions_behind: int) -> None:
        self._reads.append((client, served_from_slave, stale, versions_behind))

    def record_priority(self, priority: str, success: bool) -> None:
        """Per-priority-class accounting of batched admission outcomes."""
        self.increment(f"batch.priority.{priority}.completed")
        if not success:
            self.increment(f"batch.priority.{priority}.failed")

    # -- flushing -------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Buffered record count (all kinds), for introspection and tests."""
        return (len(self._counters) + len(self._outcomes)
                + len(self._latencies) + len(self._reads))

    def request_done(self) -> None:
        """One request finished; flush if the batch is full."""
        self._requests_pending += 1
        if self._requests_pending >= self.flush_threshold:
            self.flush()

    def flush(self) -> None:
        self.flushes += 1
        registry = self.registry
        for name, amount in self._counters.items():
            registry.increment(name, amount)
        for client, success, reason in self._outcomes:
            outcomes = registry.outcomes(client)
            if success:
                outcomes.record_success()
            else:
                outcomes.record_failure(reason)
        for client, value in self._latencies:
            registry.latency(client).record(value)
        for client, served_from_slave, stale, versions_behind in self._reads:
            registry.consistency(client).record_read(
                served_from_slave=served_from_slave, stale=stale,
                versions_behind=versions_behind, client_type=client)
        self._counters.clear()
        self._outcomes.clear()
        self._latencies.clear()
        self._reads.clear()
        self._requests_pending = 0

    def __repr__(self) -> str:
        return (f"<MetricsBatch pending={self.pending} "
                f"threshold={self.flush_threshold}>")


_default_registry: Optional[MetricsRegistry] = None


def default_registry() -> MetricsRegistry:
    """A process-wide registry for quick scripts (experiments build their own)."""
    global _default_registry
    if _default_registry is None:
        _default_registry = MetricsRegistry("default")
    return _default_registry
