"""Latency recording and percentile computation."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim import units


class LatencyRecorder:
    """Collects latency samples and reports summary statistics.

    Samples are kept exactly (the experiments record at most a few hundred
    thousand operations), so percentiles are computed on the true empirical
    distribution rather than an approximation.
    """

    def __init__(self, name: str = "latency"):
        self.name = name
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ValueError("latency cannot be negative")
        self._samples.append(latency)
        self._sorted = None

    def extend(self, latencies) -> None:
        for latency in latencies:
            self.record(latency)

    # -- statistics ---------------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def empty(self) -> bool:
        return not self._samples

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def minimum(self) -> float:
        return min(self._samples) if self._samples else 0.0

    def maximum(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def percentile(self, fraction: float) -> float:
        """Empirical percentile; ``fraction`` within [0, 1]."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("percentile fraction must be within [0, 1]")
        if not self._samples:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        index = min(len(self._sorted) - 1,
                    max(0, round(fraction * (len(self._sorted) - 1))))
        return self._sorted[index]

    def median(self) -> float:
        return self.percentile(0.5)

    def p95(self) -> float:
        return self.percentile(0.95)

    def p99(self) -> float:
        return self.percentile(0.99)

    # -- paper-specific checks -----------------------------------------------------

    def within_target(self, target: float = units.TEN_MILLISECONDS) -> float:
        """Fraction of samples at or below the target response time."""
        if not self._samples:
            return 0.0
        return sum(1 for sample in self._samples if sample <= target) \
            / len(self._samples)

    def meets_target_on_average(self,
                                target: float = units.TEN_MILLISECONDS) -> bool:
        """The paper's requirement 4 is about the *average* response time."""
        return not self.empty and self.mean() <= target

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean_ms": units.to_milliseconds(self.mean()),
            "p50_ms": units.to_milliseconds(self.median()),
            "p95_ms": units.to_milliseconds(self.p95()),
            "p99_ms": units.to_milliseconds(self.p99()),
            "max_ms": units.to_milliseconds(self.maximum()),
        }

    def __repr__(self) -> str:
        return (f"<LatencyRecorder {self.name!r} count={self.count} "
                f"mean={units.to_milliseconds(self.mean()):.3f}ms>")
