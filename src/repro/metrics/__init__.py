"""Measurement infrastructure for the experiments.

Everything the paper's claims are judged against comes from here: latency
distributions against the 10 ms target, per-subscriber availability against
the 99.999% requirement, staleness of slave reads, operation success rates
during partitions, and durability losses after crashes.
"""

from repro.metrics.latency import LatencyRecorder
from repro.metrics.availability import AvailabilityTracker, OperationOutcomes
from repro.metrics.consistency import ConsistencyTracker
from repro.metrics.collector import MetricsRegistry
from repro.metrics.report import format_table, format_markdown_table

__all__ = [
    "AvailabilityTracker",
    "ConsistencyTracker",
    "LatencyRecorder",
    "MetricsRegistry",
    "OperationOutcomes",
    "format_markdown_table",
    "format_table",
]
