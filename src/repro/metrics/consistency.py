"""Consistency measurements: stale reads and divergence.

Reading from slave copies is one of the paper's explicit speed-versus-
consistency trades (section 3.3.2): "since asynchronous replication does not
guarantee real-time sync between replicas, there's a certain chance that a
read operation on a slave replica gets stale data".  The tracker records, for
every read, whether it was served from a slave, whether the value was stale
with respect to the master at that instant, and by how many committed
versions it lagged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class ConsistencyTracker:
    """Counters describing how consistent served reads actually were."""

    reads: int = 0
    reads_from_master: int = 0
    reads_from_slave: int = 0
    stale_reads: int = 0
    staleness_versions: List[int] = field(default_factory=list)
    divergent_keys_observed: int = 0
    by_client: Dict[str, int] = field(default_factory=dict)

    def record_read(self, served_from_slave: bool, stale: bool = False,
                    versions_behind: int = 0, client_type: str = "") -> None:
        self.reads += 1
        if served_from_slave:
            self.reads_from_slave += 1
        else:
            self.reads_from_master += 1
        if stale:
            self.stale_reads += 1
            self.staleness_versions.append(max(1, versions_behind))
        if client_type:
            self.by_client[client_type] = self.by_client.get(client_type, 0) + 1

    def record_divergence(self, keys: int = 1) -> None:
        self.divergent_keys_observed += keys

    # -- derived metrics ----------------------------------------------------------

    def stale_read_fraction(self) -> float:
        if self.reads == 0:
            return 0.0
        return self.stale_reads / self.reads

    def slave_read_fraction(self) -> float:
        if self.reads == 0:
            return 0.0
        return self.reads_from_slave / self.reads

    def mean_staleness(self) -> float:
        """Mean number of versions a stale read lagged behind the master."""
        if not self.staleness_versions:
            return 0.0
        return sum(self.staleness_versions) / len(self.staleness_versions)

    def merge(self, other: "ConsistencyTracker") -> "ConsistencyTracker":
        merged = ConsistencyTracker(
            reads=self.reads + other.reads,
            reads_from_master=self.reads_from_master + other.reads_from_master,
            reads_from_slave=self.reads_from_slave + other.reads_from_slave,
            stale_reads=self.stale_reads + other.stale_reads,
            staleness_versions=self.staleness_versions + other.staleness_versions,
            divergent_keys_observed=(self.divergent_keys_observed
                                     + other.divergent_keys_observed),
            by_client=dict(self.by_client))
        for client, count in other.by_client.items():
            merged.by_client[client] = merged.by_client.get(client, 0) + count
        return merged

    def __repr__(self) -> str:
        return (f"<ConsistencyTracker reads={self.reads} "
                f"stale={self.stale_reads} "
                f"({self.stale_read_fraction():.4f})>")
