"""Reproduction of "CAP Limits in Telecom Subscriber Database Design" (VLDB 2014).

This package implements, as a deterministic discrete-event simulation, the
3GPP User Data Consolidation (UDC) architecture's User Data Repository (UDR)
network function described by the paper, together with every substrate it
depends on: blade clusters, RAM-resident storage elements, master/slave and
multi-master geo-replication, a stateful identity-location directory, an LDAP
front door, application front-ends (HLR-FE / HSS-FE), a provisioning system,
workload generators and fault injection.

The public entry points are:

* :class:`repro.core.UDRConfig` / :class:`repro.core.UDRNetworkFunction` --
  build and drive a complete UDR deployment.
* :mod:`repro.api` -- the session front door: ``udr.attach`` client
  handles, sessions issuing typed ``Read``/``Search``/``Write``/
  ``Provision`` operations as response futures, per-session
  :class:`~repro.api.qos.QoSProfile` (priority, retries, deadlines).
* :mod:`repro.core.capacity` -- the paper's section 3.5 capacity model.
* :mod:`repro.core.frash` -- the FRASH trade-off graph of figures 5 and 6.
* :mod:`repro.experiments` -- one harness per figure / quantitative claim.
"""

from repro._version import __version__

__all__ = ["__version__"]
