"""Batch provisioning (paper sections 3.3 and 4.1).

"Some service providers perform batch provisioning, which consists of issuing
a huge batch of provisioning operations during a relatively short period of
time" -- and "when using batched provisioning, a network glitch as short as 30
seconds may cause a batch that's been running for hours to fail.  At the very
best, if the batch is able to finish the provider needs to send someone to
check what parts of the batch failed and apply those parts manually."

:class:`BatchRun` submits a list of provisioning operations back-to-back (at
a configurable pacing) through a :class:`~repro.provisioning.system.ProvisioningSystem`
and produces a :class:`BatchReport` with exactly the quantities that argument
is about: how many parts failed, whether the batch as a whole is considered
failed, and how much manual work is left over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.provisioning.operations import ProvisioningOperation
from repro.provisioning.system import ProvisioningOutcome, ProvisioningSystem


@dataclass
class BatchReport:
    """Outcome of one batch provisioning run."""

    total_operations: int
    succeeded: int
    failed: int
    duration: float
    failed_operations: List[ProvisioningOutcome] = field(default_factory=list)
    abort_threshold: Optional[float] = None
    aborted: bool = False

    @property
    def success_ratio(self) -> float:
        if self.total_operations == 0:
            return 1.0
        return self.succeeded / self.total_operations

    @property
    def manual_interventions(self) -> int:
        """Operations somebody has to re-apply (or clean up) by hand."""
        return self.failed

    @property
    def batch_failed(self) -> bool:
        """The operator's verdict: aborted, or too many failed parts."""
        return self.aborted or self.failed > 0

    def __repr__(self) -> str:
        return (f"<BatchReport {self.succeeded}/{self.total_operations} ok "
                f"failed={self.failed} aborted={self.aborted}>")


class BatchRun:
    """Submits a batch of provisioning operations through a PS instance.

    With ``pipelined=True`` the run hands slices of
    ``udr.config.batch_max_size`` operations to
    :meth:`~repro.provisioning.system.ProvisioningSystem.provision_pipelined`
    (bulk priority), amortising the admission/LDAP/locate hops across each
    slice; pacing and the consecutive-failure abort are applied per slice.
    """

    def __init__(self, provisioning_system: ProvisioningSystem,
                 operations: List[ProvisioningOperation],
                 pacing: float = 0.0,
                 abort_after_consecutive_failures: Optional[int] = None,
                 pipelined: bool = False):
        if pacing < 0:
            raise ValueError("pacing cannot be negative")
        if abort_after_consecutive_failures is not None and \
                abort_after_consecutive_failures < 1:
            raise ValueError("abort threshold must be at least 1")
        self.provisioning_system = provisioning_system
        self.operations = list(operations)
        self.pacing = pacing
        self.abort_after_consecutive_failures = abort_after_consecutive_failures
        self.pipelined = pipelined

    def run(self):
        """Generator: execute the batch; returns a :class:`BatchReport`."""
        sim = self.provisioning_system.udr.sim
        start = sim.now
        succeeded = 0
        failed_outcomes: List[ProvisioningOutcome] = []
        consecutive_failures = 0
        aborted = False
        for outcomes in self._outcome_slices():
            slice_outcomes = yield from outcomes
            # The whole slice has already executed against the UDR, so every
            # outcome is tallied even when the abort threshold trips midway;
            # the abort only stops *further* slices from being issued.
            for outcome in slice_outcomes:
                if outcome.succeeded:
                    succeeded += 1
                    consecutive_failures = 0
                else:
                    failed_outcomes.append(outcome)
                    consecutive_failures += 1
                    if self.abort_after_consecutive_failures is not None and \
                            consecutive_failures >= \
                            self.abort_after_consecutive_failures:
                        aborted = True
            if aborted:
                break
            if self.pacing:
                yield sim.timeout(self.pacing)
        return BatchReport(
            total_operations=len(self.operations),
            succeeded=succeeded,
            failed=len(failed_outcomes),
            duration=sim.now - start,
            failed_operations=failed_outcomes,
            abort_threshold=self.abort_after_consecutive_failures,
            aborted=aborted,
        )

    def _outcome_slices(self):
        """Generators yielding lists of outcomes: one per operation when
        sequential, one per ``batch_max_size`` slice when pipelined."""
        ps = self.provisioning_system
        if not self.pipelined:
            for operation in self.operations:
                yield self._provision_one(ps, operation)
            return
        size = max(1, ps.udr.config.batch_max_size)
        for begin in range(0, len(self.operations), size):
            yield ps.provision_pipelined(self.operations[begin:begin + size])

    @staticmethod
    def _provision_one(ps: ProvisioningSystem,
                       operation: ProvisioningOperation):
        outcome = yield from ps.provision(operation)
        return [outcome]
