"""Provisioning operations and the typed operations they issue.

Every operation knows how to build its typed :mod:`repro.api` operation
sequence (the LDAP encoding lives in the API layer;
:meth:`ProvisioningOperation.requests` survives as a deprecation shim for
legacy callers).  In a UDC network the whole sequence addresses the single
UDR and should be treated as one transaction; the pre-UDC comparison (writes
scattered over HLR, HSS and every SLF instance) is modelled by
:meth:`ProvisioningOperation.pre_udc_write_count` so experiments can
quantify the simplification the paper claims in section 2.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.api.operations import Operation, Provision, Write
from repro.ldap.operations import LdapRequest
from repro.subscriber.profile import SubscriberProfile


@dataclass
class ProvisioningOperation:
    """Base class of provisioning operations."""

    subscriber: SubscriberProfile

    #: Name used in reports.
    name = "abstract"
    #: Writes against subscriber-management nodes a pre-UDC network needs
    #: (subscription data on the HLR/HSS plus identity tuples on each SLF).
    PRE_UDC_SLF_INSTANCES = 4

    def operations(self) -> List[Operation]:
        """The typed :mod:`repro.api` operations this change issues."""
        raise NotImplementedError

    def requests(self) -> List[LdapRequest]:
        """Deprecation shim: the operations rendered to raw LDAP requests."""
        return [operation.to_request() for operation in self.operations()]

    def write_count(self) -> int:
        """Write operations against the UDR (UDC network)."""
        return sum(1 for operation in self.operations()
                   if operation.is_write)

    def pre_udc_write_count(self) -> int:
        """Writes a pre-UDC network would issue across its silos."""
        # One write on the subscriber-data node plus identity tuples on every
        # signalling-routing (SLF) instance for create/terminate operations;
        # pure service changes stay on the HLR/HSS only.
        if isinstance(self, (CreateSubscription, TerminateSubscription,
                             SwapSim)):
            return 1 + self.PRE_UDC_SLF_INSTANCES
        return 1

    @property
    def _imsi(self) -> str:
        return self.subscriber.identities.imsi


@dataclass
class CreateSubscription(ProvisioningOperation):
    """Provision a brand-new subscription (the unattended activation case)."""

    name = "create_subscription"

    def operations(self) -> List[Operation]:
        return [Provision.create(self.subscriber.to_record())]


@dataclass
class ChangeServices(ProvisioningOperation):
    """Modify supplementary services (barring, forwarding, roaming...)."""

    changes: Dict[str, Any] = field(default_factory=dict)
    name = "change_services"

    def operations(self) -> List[Operation]:
        changes = self.changes or {"svcBarPremium": True}
        return [Write(self._imsi, changes=dict(changes))]


@dataclass
class SwapSim(ProvisioningOperation):
    """Replace the SIM: the subscription moves to a new IMSI.

    Modelled as the two-step transaction the PS would issue: update the old
    entry's status, then create the entry under the new IMSI.  Exercises the
    multi-write transactional path of the UDR.
    """

    new_imsi: str = ""
    name = "swap_sim"

    def operations(self) -> List[Operation]:
        new_imsi = self.new_imsi or f"{self._imsi[:-1]}9"
        new_record = dict(self.subscriber.to_record())
        new_record["imsi"] = new_imsi
        return [
            Write(self._imsi, changes={"subscriberStatus": "suspended"}),
            Provision.create(new_record),
        ]


@dataclass
class TerminateSubscription(ProvisioningOperation):
    """Terminate a subscription and remove its data."""

    name = "terminate_subscription"

    def operations(self) -> List[Operation]:
        return [Provision.terminate(self._imsi)]
