"""The Provisioning System (PS) actor.

"An instance of the PS is always co-located with a UDR PoA" (section 3.3.3),
it accesses the UDR as the :attr:`~repro.core.config.ClientType.PROVISIONING`
client (no slave reads), and treats each provisioning operation as one
transaction: if any of its LDAP requests fails the operation has failed and,
per section 4.1, somebody has to fix it by hand -- the manual-intervention
counter is the cost the paper argues service providers refuse to pay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.api.qos import QoSProfile
from repro.core.config import ClientType, Priority
from repro.provisioning.backlog import BacklogModel
from repro.provisioning.operations import ProvisioningOperation


@dataclass
class ProvisioningOutcome:
    """Result of one provisioning operation."""

    operation: str
    subscriber_key: str
    succeeded: bool
    attempts: int = 1
    latency: float = 0.0
    failed_request_index: Optional[int] = None
    partially_applied: bool = False
    diagnostics: List[str] = field(default_factory=list)

    @property
    def needs_manual_intervention(self) -> bool:
        """A failed (especially partially applied) operation needs a human."""
        return not self.succeeded


class ProvisioningSystem:
    """A PS instance co-located with one Point of Access.

    A thin adapter over the session API: construction attaches a named
    :class:`~repro.api.session.UDRClient` (provisioning client type, so no
    slave reads) and keeps one long-lived session; provisioning operations'
    typed :mod:`repro.api` operations are issued through it.  An optional
    ``qos`` profile applies to all of this PS's traffic -- bulk runs
    typically pass ``QoSProfile(priority=Priority.BULK, deadline_ticks=...)``
    so floods yield to signalling (experiment E18).
    """

    client_type = ClientType.PROVISIONING

    def __init__(self, name: str, udr, site, max_retries: int = 0,
                 retry_delay: float = 0.5,
                 backlog: Optional[BacklogModel] = None,
                 qos: Optional[QoSProfile] = None):
        if max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        self.name = name
        self.udr = udr
        self.site = site
        self.client = udr.attach(name, site, client_type=self.client_type,
                                 qos=qos)
        self.session = self.client.session()
        self.max_retries = max_retries
        self.retry_delay = retry_delay
        self.backlog = backlog or BacklogModel()
        self.operations_attempted = 0
        self.operations_succeeded = 0
        self.manual_interventions = 0
        self.partial_applications = 0

    # -- single operation -----------------------------------------------------------

    def provision(self, operation: ProvisioningOperation):
        """Generator: run one provisioning operation (with optional retries)."""
        start = self.udr.sim.now
        self.operations_attempted += 1
        attempts = 0
        outcome = ProvisioningOutcome(
            operation=operation.name,
            subscriber_key=operation.subscriber.key,
            succeeded=False)
        while attempts <= self.max_retries:
            attempts += 1
            outcome.attempts = attempts
            succeeded, failed_index, applied_any, diagnostics = \
                yield from self._run_requests(operation)
            outcome.diagnostics.extend(diagnostics)
            if succeeded:
                outcome.succeeded = True
                break
            outcome.failed_request_index = failed_index
            outcome.partially_applied = applied_any and failed_index is not None
            if attempts <= self.max_retries:
                yield self.udr.sim.timeout(self.retry_delay)
        outcome.latency = self.udr.sim.now - start
        self._account(outcome)
        return outcome

    def _run_requests(self, operation: ProvisioningOperation):
        operations = operation.operations()
        applied_any = False
        diagnostics: List[str] = []
        for index, typed_operation in enumerate(operations):
            # Session.call is dispatch-mode aware: under DISPATCHER it
            # enqueues into the arrival-driven batch dispatcher instead of
            # call-and-wait; the client name is the source tag, joining the
            # PS's wave-mates on one grouped response event (the
            # shared-wave respond path).
            response = yield from self.session.call(typed_operation)
            if not response.ok:
                diagnostics.append(
                    f"{response.request.operation_name}: "
                    f"{response.result_code.name} "
                    f"({response.diagnostic_message})")
                return False, index, applied_any, diagnostics
            if typed_operation.is_write:
                applied_any = True
        return True, None, applied_any, diagnostics

    # -- pipelined operations ---------------------------------------------------------

    def provision_pipelined(self, operations: List[ProvisioningOperation],
                            priority: Priority = Priority.BULK):
        """Generator: run a list of operations as pipelined batches.

        Consecutive single-request operations are carried through the
        session's batched admission together
        (:meth:`repro.api.session.Session.execute_batch`), amortising the
        PoA, LDAP and locate hops; a multi-request operation (a
        transactional sequence such as a SIM swap) flushes the accumulated
        batch first and then runs through the sequential :meth:`provision`
        path, so operations always *execute* in input order.  The PS-level
        retry budget (``max_retries`` / ``retry_delay``) applies to batched
        operations too: failed ones are re-batched after the delay, exactly
        as :meth:`provision` re-attempts.  Returns one
        :class:`ProvisioningOutcome` per operation, in input order.
        """
        outcomes: List[Optional[ProvisioningOutcome]] = [None] * len(operations)
        segment: List[tuple] = []
        for index, operation in enumerate(operations):
            typed = operation.operations()
            if len(typed) == 1:
                segment.append((index, typed[0]))
                continue
            yield from self._provision_segment(segment, operations, outcomes,
                                               priority)
            segment = []
            outcomes[index] = yield from self.provision(operation)
        yield from self._provision_segment(segment, operations, outcomes,
                                           priority)
        return outcomes

    def _provision_segment(self, segment, operations, outcomes,
                           priority: Priority):
        """Generator: run one run of single-request operations as batches,
        re-batching failures until the PS retry budget is spent."""
        if not segment:
            return
        start = self.udr.sim.now
        results = {}
        attempts_of = {index: 0 for index, _operation in segment}
        latency_of = {}
        diagnostics_of = {index: [] for index, _operation in segment}
        pending = list(segment)
        attempts = 0
        batch_qos = QoSProfile(priority=priority)
        while True:
            attempts += 1
            responses = yield from self.session.execute_batch(
                [typed for _index, typed in pending], qos=batch_qos)
            for (index, typed), response in zip(pending, responses):
                results[index] = (typed, response)
                attempts_of[index] = attempts
                # An operation's latency runs until the batch that carried
                # its (final) attempt completed -- later *retry rounds* are
                # excluded, the waves inside one batch are not separable.
                latency_of[index] = self.udr.sim.now - start
                if not response.ok:
                    diagnostics_of[index].append(
                        f"{response.request.operation_name}: "
                        f"{response.result_code.name} "
                        f"({response.diagnostic_message})")
            failed = [(index, typed) for index, typed in pending
                      if not results[index][1].ok]
            if not failed or attempts > self.max_retries:
                break
            pending = failed
            yield self.udr.sim.timeout(self.retry_delay)
        for index, _operation in segment:
            _, response = results[index]
            operation = operations[index]
            self.operations_attempted += 1
            outcome = ProvisioningOutcome(
                operation=operation.name,
                subscriber_key=operation.subscriber.key,
                succeeded=response.ok,
                attempts=attempts_of[index],
                latency=latency_of[index],
                diagnostics=diagnostics_of[index])
            if not response.ok:
                outcome.failed_request_index = 0
            self._account(outcome)
            outcomes[index] = outcome

    def _account(self, outcome: ProvisioningOutcome) -> None:
        if outcome.succeeded:
            self.operations_succeeded += 1
        else:
            self.manual_interventions += 1
            if outcome.partially_applied:
                self.partial_applications += 1
        recorder = self.udr.metrics.latency(f"provisioning.{outcome.operation}")
        recorder.record(outcome.latency)
        outcomes = self.udr.metrics.outcomes("ps_operations")
        if outcome.succeeded:
            outcomes.record_success()
        else:
            outcomes.record_failure(outcome.diagnostics[-1]
                                    if outcome.diagnostics else "failed")

    # -- steady flow driver --------------------------------------------------------------

    def steady_flow(self, operations: List[ProvisioningOperation],
                    rate_per_second: float, rng=None,
                    poll_interval: float = 0.1):
        """Generator: a Poisson arrival stream feeding one serial PS worker.

        Operations arrive at ``rate_per_second`` independently of how fast
        the PS can execute them; the worker drains the queue one operation at
        a time.  Arrivals enter the backlog immediately and leave when their
        operation completes, so when UDR latency inflates the backlog depth
        grows exactly as section 3.3 of the paper describes (experiment E13).
        """
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        rng = rng or self.udr.sim.rng(f"ps.{self.name}")
        sim = self.udr.sim
        pending: List[ProvisioningOperation] = []

        def arrivals(sim):
            for operation in operations:
                yield sim.timeout(rng.expovariate(rate_per_second))
                self.backlog.arrive(sim.now)
                pending.append(operation)

        arrival_process = sim.process(arrivals(sim),
                                      name=f"ps-arrivals:{self.name}")
        completed = []
        while len(completed) < len(operations):
            if pending:
                operation = pending.pop(0)
                outcome = yield from self.provision(operation)
                self.backlog.complete(sim.now, dropped=False)
                completed.append(outcome)
            elif arrival_process.triggered and not pending:
                break
            else:
                yield sim.timeout(poll_interval)
        return completed

    # -- reporting -------------------------------------------------------------------------

    def success_ratio(self) -> float:
        if self.operations_attempted == 0:
            return 1.0
        return self.operations_succeeded / self.operations_attempted

    def __repr__(self) -> str:
        return (f"<ProvisioningSystem {self.name!r} site={self.site} "
                f"attempted={self.operations_attempted} "
                f"manual={self.manual_interventions}>")
