"""The Provisioning System (PS) and provisioning workloads.

Provisioning creates, modifies and terminates subscriptions.  In a UDC
network the PS "has one single place that needs to be written (the UDR),
which provides support for handling a provisioning procedure as a
transaction" (paper, section 2.4).  The PS is co-located with a Point of
Access, never reads slave copies (section 3.3.3), and is the client whose
writes fail during partitions under the paper's default PC policy -- the
service-provider pain point of section 4.1.

Besides the steady provisioning flow, operators run **batch provisioning**:
large bursts of operations in a short window, where "a network glitch as
short as 30 seconds may cause a batch that's been running for hours to fail".
"""

from repro.provisioning.operations import (
    ChangeServices,
    CreateSubscription,
    ProvisioningOperation,
    SwapSim,
    TerminateSubscription,
)
from repro.provisioning.system import ProvisioningOutcome, ProvisioningSystem
from repro.provisioning.batch import BatchReport, BatchRun
from repro.provisioning.backlog import BacklogModel

__all__ = [
    "BacklogModel",
    "BatchReport",
    "BatchRun",
    "ChangeServices",
    "CreateSubscription",
    "ProvisioningOperation",
    "ProvisioningOutcome",
    "ProvisioningSystem",
    "SwapSim",
    "TerminateSubscription",
]
