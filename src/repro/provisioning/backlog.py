"""Provisioning back-log model (paper section 3.3).

"Out of those periods long delays in processing provisioning transactions
might cause a back-log of operations to grow at the PS.  If this back-log
overflows for some reason, dropping operations in the way, outcome would be
fatal."  The model is a bounded queue with arrival/completion bookkeeping:
experiments drive it with the PS's actual operation stream and read out the
peak depth, overflow drops and the time spent above a warning level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class BacklogModel:
    """Bounded backlog with depth tracking."""

    capacity: int = 10_000
    warning_level: Optional[int] = None
    depth: int = 0
    peak_depth: int = 0
    arrivals: int = 0
    completions: int = 0
    dropped: int = 0
    _timeline: List[Tuple[float, int]] = field(default_factory=list)

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError("backlog capacity must be at least 1")
        if self.warning_level is None:
            self.warning_level = int(self.capacity * 0.8)

    # -- queue events -----------------------------------------------------------

    def arrive(self, timestamp: float) -> bool:
        """An operation arrived; returns False (and drops it) on overflow."""
        self.arrivals += 1
        if self.depth >= self.capacity:
            self.dropped += 1
            self._timeline.append((timestamp, self.depth))
            return False
        self.depth += 1
        self.peak_depth = max(self.peak_depth, self.depth)
        self._timeline.append((timestamp, self.depth))
        return True

    def complete(self, timestamp: float, dropped: bool = False) -> None:
        """An operation finished (or was abandoned)."""
        if self.depth > 0:
            self.depth -= 1
        self.completions += 1
        self._timeline.append((timestamp, self.depth))

    # -- analysis -----------------------------------------------------------------

    @property
    def overflowed(self) -> bool:
        return self.dropped > 0

    def time_above_warning(self) -> float:
        """Total time the depth spent at or above the warning level."""
        above = 0.0
        previous_time: Optional[float] = None
        previous_depth = 0
        for timestamp, depth in self._timeline:
            if previous_time is not None and \
                    previous_depth >= (self.warning_level or 0):
                above += timestamp - previous_time
            previous_time, previous_depth = timestamp, depth
        return above

    def timeline(self) -> List[Tuple[float, int]]:
        return list(self._timeline)

    def __repr__(self) -> str:
        return (f"<BacklogModel depth={self.depth} peak={self.peak_depth} "
                f"dropped={self.dropped}>")
