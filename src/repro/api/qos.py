"""Per-session quality-of-service: priority, retries and deadlines.

All QoS used to live in the global :class:`~repro.core.config.UDRConfig`:
one retry policy, one set of priority weights, no deadlines.  A
:class:`QoSProfile` scopes those choices to one client session (or one
operation), layered over the config defaults:

* ``priority`` -- the admission class of the session's operations
  (``None`` keeps the client type's natural class: FE -> signalling,
  PS -> provisioning);
* ``retry_policy`` -- overrides ``UDRConfig.retry_policy`` for the
  session's operations (``None`` inherits it on the batched paths; the
  sequential path stays fail-fast, exactly like the legacy ``execute``);
* ``deadline_ticks`` -- a per-operation completion budget, in ticks of
  :data:`DEADLINE_TICK` from submit time.  An operation still queued or
  retrying when its deadline passes short-circuits with
  ``TIME_LIMIT_EXCEEDED`` instead of consuming pipeline hops -- the
  dispatcher answers expired tickets the moment the deadline passes (an
  early-wake timeout, never a wave slot), and the retry stage refuses to
  start (or re-drive) expired work;
* ``rate_limit`` -- a token-bucket admission quota
  (:class:`~repro.core.config.RateLimit`).  The bucket lives on the
  :class:`~repro.api.session.UDRClient`, so the quota bounds the *client*,
  not each individual session: over-quota operations are answered ``BUSY``
  at ``session.submit`` without touching the dispatcher or pipeline.

Profiles merge: a session profile is the base, a per-operation profile
overrides field by field (:meth:`QoSProfile.layered`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim import units
from repro.core.config import Priority, RateLimit, RetryPolicy

#: Virtual duration of one ``deadline_ticks`` tick (same grid as the
#: dispatcher's linger ticks, so budgets compose readably with linger).
DEADLINE_TICK = 1 * units.MILLISECOND


@dataclass(frozen=True)
class QoSProfile:
    """QoS of one client session; every field ``None`` inherits the default."""

    priority: Optional[Priority] = None
    retry_policy: Optional[RetryPolicy] = None
    deadline_ticks: Optional[int] = None
    rate_limit: Optional[RateLimit] = None

    def __post_init__(self):
        if self.deadline_ticks is not None and self.deadline_ticks < 0:
            raise ValueError("deadline ticks cannot be negative")

    @property
    def is_default(self) -> bool:
        """Whether this profile changes nothing (pure inheritance)."""
        return (self.priority is None and self.retry_policy is None
                and self.deadline_ticks is None and self.rate_limit is None)

    def layered(self, override: Optional["QoSProfile"]) -> "QoSProfile":
        """This profile with ``override``'s non-``None`` fields applied."""
        if override is None or override.is_default:
            return self
        return QoSProfile(
            priority=override.priority if override.priority is not None
            else self.priority,
            retry_policy=override.retry_policy
            if override.retry_policy is not None else self.retry_policy,
            deadline_ticks=override.deadline_ticks
            if override.deadline_ticks is not None else self.deadline_ticks,
            rate_limit=override.rate_limit
            if override.rate_limit is not None else self.rate_limit)

    def deadline_at(self, now: float) -> Optional[float]:
        """The absolute virtual-time deadline of work submitted at ``now``."""
        if self.deadline_ticks is None:
            return None
        return now + self.deadline_ticks * DEADLINE_TICK
