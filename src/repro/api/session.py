"""Client handles, sessions and response futures: the one front door.

:class:`UDRClient` is a per-attachment handle -- a named client bound to a
site and a client type, obtained from
:meth:`repro.core.udr.UDRNetworkFunction.attach`.  A client opens
:class:`Session`\\ s (context managers); a session issues typed
:class:`~repro.api.operations.Operation`\\ s and returns
:class:`ResponseFuture`\\ s.  One session API replaces the three legacy
entry-point families:

=====================  ==========================================
legacy                 session
=====================  ==========================================
``udr.execute(req)``   ``yield from session.call(op)``
``udr.call(req)``      ``yield from session.call(op)`` (same --
                       ``call`` routes by ``dispatch_mode``)
``udr.submit(req)``    ``session.submit(op)`` -> future
``udr.execute_batch``  ``session.submit_many(ops)`` -> futures,
                       or ``yield from session.execute_batch(ops)``
=====================  ==========================================

Routing follows ``UDRConfig.dispatch_mode`` exactly as the legacy paths
did: under ``DISPATCHER`` a submit enqueues into the arrival-driven batch
dispatcher (the client's name is the *source tag*, so all of a session's
operations completing in one wave share a single grouped response event);
under ``DIRECT`` a submit runs the pipeline in its own simulation process
and ``call`` walks it inline -- bit-for-bit the legacy ``execute`` when the
session carries no QoS overrides.

The session's :class:`~repro.api.qos.QoSProfile` stamps every operation
with its priority class, retry policy and absolute deadline; per-operation
profiles layer on top.  A profile carrying a
:class:`~repro.core.config.RateLimit` arms token-bucket admission on the
client: over-quota operations are answered ``BUSY`` at submit, before any
queue or pipeline work (``api.admission.rejected`` / ``.throttled``).
Completions are recorded per client under the ``api.client.<name>.*``
metric names, so experiments can split latency and outcome distributions
by who issued the traffic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import ClientType, DispatchMode, RateLimit
from repro.core.pipeline import BatchItem
from repro.ldap.operations import LdapResponse, ResultCode
from repro.api.operations import as_request
from repro.api.qos import QoSProfile


class ResponseFuture:
    """Completion handle of one sessioned operation.

    ``done`` / ``response`` are inspectable at any time; a client process
    waits with ``response = yield from future.wait()``.  The future resolves
    through whichever machinery carried the operation: a dispatcher ticket
    (grouped source events), the shared process of a ``submit_many`` batch,
    or the operation's own pipeline process under ``DIRECT`` dispatch.
    """

    __slots__ = ("session", "operation", "request", "submitted_at",
                 "deadline", "_ticket", "_process", "_response",
                 "_settled_at")

    def __init__(self, session: "Session", operation, request,
                 submitted_at: float, deadline: Optional[float]):
        self.session = session
        self.operation = operation
        self.request = request
        self.submitted_at = submitted_at
        self.deadline = deadline
        self._ticket = None
        self._process = None
        self._response: Optional[LdapResponse] = None
        self._settled_at: Optional[float] = None

    @property
    def done(self) -> bool:
        if self._response is None and self._ticket is not None and \
                self._ticket.response is not None:
            self._settle(self._ticket.response)
        return self._response is not None

    @property
    def response(self) -> Optional[LdapResponse]:
        """The response, or ``None`` while in flight."""
        if not self.done:
            return None
        return self._response

    def result(self) -> LdapResponse:
        """The response; raises if the future has not resolved yet."""
        if not self.done:
            raise RuntimeError("operation still in flight; "
                               "yield from future.wait() first")
        return self._response

    @property
    def completed_at(self) -> Optional[float]:
        """Virtual time the operation completed (``None`` in flight).

        The dispatcher stamps its tickets at wave completion, so a lazy
        settle (nobody waited yet) still reports the true instant.
        """
        if self._ticket is not None:
            return self._ticket.completed_at
        return self._settled_at

    @property
    def latency(self) -> Optional[float]:
        """Client-perceived latency: submit to completion, queue included.

        On the dispatcher path this is the ticket's enqueue-to-response
        span (wave lingering included); on the direct/batched paths it is
        the pipeline-reported latency, whose clock also starts at submit.
        ``None`` while in flight.
        """
        if self._ticket is not None and self._ticket.completed_at is not None:
            return self._ticket.completed_at - self.submitted_at
        if self.done:
            return self._response.latency
        return None

    def wait(self):
        """Generator: block until resolved, return the response."""
        if self.done:
            return self._response
        if self._ticket is not None:
            dispatcher = self.session.client.udr.dispatcher
            while self._ticket.response is None:
                yield dispatcher.response_event(self.session.client.name)
            self._settle(self._ticket.response)
            return self._response
        yield self._process
        # The driving process settles every future it carried before it
        # finishes, so reaching this point means the response is in.
        return self._response

    def _settle(self, response: LdapResponse) -> None:
        if self._response is not None:
            return
        self._response = response
        self._settled_at = self.session.client.sim.now
        self.session._completed(self, response)

    def __repr__(self) -> str:
        state = (self._response.result_code.name if self._response is not None
                 else "pending")
        return (f"<ResponseFuture {type(self.operation).__name__.lower()} "
                f"{state} submitted_at={self.submitted_at:.6f}>")


class Session:
    """One client's stream of operations under one QoS profile.

    A context manager: opening is free, closing counts still-unresolved
    futures in ``api.session.abandoned`` (a leak detector -- clients should
    ``yield from session.drain()`` before leaving the block).  Sessions are
    cheap; a long-lived actor (front-end, provisioning system) keeps one
    open for its lifetime.
    """

    def __init__(self, client: "UDRClient", qos: QoSProfile):
        self.client = client
        self.qos = qos
        #: In-flight futures only (resolved ones are dropped immediately,
        #: so a long-lived front-end session stays O(concurrency), not
        #: O(lifetime)).
        self._outstanding: Dict[int, ResponseFuture] = {}
        self.submitted = 0
        self.completed = 0
        self.closed = False

    # -- context management --------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        # .done settles tickets that completed without anyone waiting, so
        # only genuinely unresolved work counts as abandoned.
        abandoned = sum(1 for future in list(self._outstanding.values())
                        if not future.done)
        if abandoned:
            self.client.metrics.increment("api.session.abandoned", abandoned)

    # -- issuing operations --------------------------------------------------

    def submit(self, operation, qos: Optional[QoSProfile] = None
               ) -> ResponseFuture:
        """Issue one operation without waiting; returns its future.

        Under ``DISPATCHER`` dispatch the operation joins the arrival
        stream (wave formation, priority overtaking, deadline expiry at
        the queue); under ``DIRECT`` it runs the pipeline in its own
        process, concurrent with the caller.

        With a :class:`~repro.core.config.RateLimit` in the effective QoS
        profile, admission is checked *here*: an over-quota operation is
        answered ``BUSY`` immediately (an already-settled future) and never
        reaches the dispatcher queue or the pipeline.
        """
        effective = self.qos.layered(qos)
        future = self._make_future(operation, effective)
        client = self.client
        if effective.rate_limit is not None and \
                not client._admit(effective.rate_limit):
            self._reject_over_quota(future)
            return future
        if client.config.dispatch_mode is DispatchMode.DISPATCHER:
            future._ticket = client.udr.dispatcher.submit(
                future.request, client.client_type, client.site,
                priority=effective.priority, source=client.name,
                deadline=future.deadline,
                retry_policy=effective.retry_policy)
        else:
            future._process = client.sim.process(
                self._drive_single(future, effective),
                name=f"api:{client.name}")
        return future

    def call(self, operation, qos: Optional[QoSProfile] = None):
        """Generator: issue one operation and wait for its response."""
        if self.client.config.dispatch_mode is DispatchMode.DISPATCHER:
            future = self.submit(operation, qos)
            response = yield from future.wait()
            return response
        effective = self.qos.layered(qos)
        future = self._make_future(operation, effective)
        if effective.rate_limit is not None and \
                not self.client._admit(effective.rate_limit):
            self._reject_over_quota(future)
            return future.result()
        response = yield from self._drive_single(future, effective)
        return response

    def submit_many(self, operations: Sequence,
                    qos: Optional[QoSProfile] = None) -> List[ResponseFuture]:
        """Issue a list of operations as one batched admission.

        The whole list rides ``OperationPipeline.execute_batch`` -- shared
        PoA/LDAP/locate hops, priority-ordered waves -- in a single driving
        process; each operation still gets its own future, resolved when
        the batch completes.
        """
        effective = self.qos.layered(qos)
        futures = [self._make_future(operation, effective)
                   for operation in operations]
        if not futures:
            return futures
        admitted = futures
        if effective.rate_limit is not None:
            admitted = []
            for future in futures:
                if self.client._admit(effective.rate_limit):
                    admitted.append(future)
                else:
                    self._reject_over_quota(future)
        if not admitted:
            return futures
        process = self.client.sim.process(
            self._drive_batch(admitted, effective),
            name=f"api-batch:{self.client.name}")
        for future in admitted:
            future._process = process
        return futures

    def execute_batch(self, operations: Sequence,
                      qos: Optional[QoSProfile] = None):
        """Generator: run a batch inline and return the response list."""
        futures = self.submit_many(operations, qos)
        responses = []
        for future in futures:
            response = yield from future.wait()
            responses.append(response)
        return responses

    def search_pages(self, operation, qos: Optional[QoSProfile] = None,
                     max_pages: Optional[int] = None):
        """Generator: drive a keyset-paged search page by page.

        ``operation`` is a paged :meth:`~repro.api.operations.Search.scoped`
        operation (``page_size`` set).  Each page rides :meth:`submit` -- so
        pages are individually dispatched waves, futures, deadlines and all
        -- and the next page is requested with the previous response's
        cursor until the result set is drained (or ``max_pages`` is hit).
        Returns the list of page responses, in order.
        """
        pages: List[LdapResponse] = []
        current = operation
        while current is not None:
            future = self.submit(current, qos)
            response = yield from future.wait()
            pages.append(response)
            if not response.ok:
                break
            if max_pages is not None and len(pages) >= max_pages:
                break
            current = current.next_page(response)
        return pages

    def drain(self):
        """Generator: wait until every in-flight future resolved."""
        while self._outstanding:
            for future in list(self._outstanding.values()):
                yield from future.wait()
        return self.completed

    # -- audit / reconciliation surface ---------------------------------------

    def history(self, identity: str, identity_type: str = "imsi"):
        """The audit trail of one subscriber: who/what/when per mutation.

        Answers from the CDC plane's
        :class:`~repro.cdc.history.HistoryStore` (an operator console
        query, not a simulated LDAP operation): the list of
        :class:`~repro.cdc.history.HistoryEntry` for the record the
        identity resolves to, oldest first -- empty when the identity is
        unknown.  Requires ``UDRConfig.cdc``; raises ``RuntimeError``
        otherwise, so a missing audit plane fails loudly instead of
        answering "no history".
        """
        store = self.client.udr.history
        if store is None:
            raise RuntimeError(
                "audit history is not enabled (set UDRConfig.cdc)")
        self.client.metrics.increment("api.history.queries")
        return store.history_of_identity(identity_type, identity)

    def reconciliation_status(self) -> Dict[str, object]:
        """The reconciler's per-round status snapshot (operator console).

        ``{"enabled": False}`` when the deployment runs without a
        reconciler; otherwise the round count, repair-log length and the
        ``reconciliation.*`` counters as of the last completed round.
        """
        self.client.metrics.increment("api.reconciliation.status_queries")
        reconciler = getattr(self.client.udr, "reconciler", None)
        if reconciler is None:
            return {"enabled": False}
        return reconciler.status()

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)

    # -- plumbing -------------------------------------------------------------

    def _make_future(self, operation, effective: QoSProfile) -> ResponseFuture:
        if self.closed:
            raise RuntimeError("session is closed")
        client = self.client
        future = ResponseFuture(self, operation, as_request(operation),
                                client.sim.now,
                                effective.deadline_at(client.sim.now))
        self._outstanding[id(future)] = future
        self.submitted += 1
        client.metrics.increment(client._requests_counter)
        return future

    def _reject_over_quota(self, future: ResponseFuture) -> None:
        """Settle ``future`` with the immediate ``BUSY`` admission answer."""
        self._reject_over_quota_count()
        future._settle(LdapResponse(
            result_code=ResultCode.BUSY,
            request=future.request,
            diagnostic_message="admission quota exceeded",
            latency=0.0))

    def _reject_over_quota_count(self) -> None:
        metrics = self.client.metrics
        metrics.increment("api.admission.rejected")
        metrics.increment(self.client._rejected_counter)

    def _drive_single(self, future: ResponseFuture, effective: QoSProfile):
        client = self.client
        response = yield from client.udr.pipeline.execute(
            future.request, client.client_type, client.site,
            priority=effective.priority, deadline=future.deadline,
            retry_policy=effective.retry_policy)
        future._settle(response)
        return response

    def _drive_batch(self, futures: List[ResponseFuture],
                     effective: QoSProfile):
        client = self.client
        items = [BatchItem(future.request, client.client_type, client.site,
                           priority=effective.priority,
                           deadline=future.deadline,
                           retry_policy=effective.retry_policy)
                 for future in futures]
        responses = yield from client.udr.pipeline.execute_batch(items)
        for future, response in zip(futures, responses):
            future._settle(response)
        return responses

    def _completed(self, future: ResponseFuture,
                   response: LdapResponse) -> None:
        """Per-client metric scoping: every completion is tagged with the
        attachment name, so one registry splits cleanly by client."""
        self._outstanding.pop(id(future), None)
        self.completed += 1
        client = self.client
        # One clock for every path: submit-to-completion (queue wait
        # included on the dispatcher path), not the pipeline's wave-start
        # clock -- so the per-client series is comparable across paths and
        # includes what expired tickets spent queued.
        latency = future.latency
        client._latency_recorder.record(
            latency if latency is not None else response.latency)
        # Tickets the dispatcher expired in its queue were already counted
        # under this client's scope at expiry time (the dispatcher knows
        # the source tag); counting again at settle would double them.
        ticket = future._ticket
        if not response.ok and \
                not (ticket is not None and ticket.expired_in_queue):
            client.metrics.increment(client._failed_counter)

    def __repr__(self) -> str:
        return (f"<Session client={self.client.name!r} "
                f"submitted={self.submitted} "
                f"outstanding={self.outstanding}>")


class UDRClient:
    """A named client attachment: one caller's identity at the front door.

    Bound to a site (admission always starts from there) and a client type
    (the paper's FE/PS read-policy split); carries the default
    :class:`~repro.api.qos.QoSProfile` of every session it opens.  Obtained
    via :meth:`repro.core.udr.UDRNetworkFunction.attach`.
    """

    def __init__(self, udr, name: str, site,
                 client_type: ClientType = ClientType.APPLICATION_FE,
                 qos: Optional[QoSProfile] = None):
        self.udr = udr
        self.name = name
        self.site = site
        self.client_type = client_type
        self.qos = qos or QoSProfile()
        # Precomputed metric handles: the session hot path records one
        # counter and one latency sample per operation.
        self._requests_counter = f"api.client.{name}.requests"
        self._failed_counter = f"api.client.{name}.failed"
        self._rejected_counter = f"api.client.{name}.rejected"
        self._latency_recorder = udr.metrics.latency(
            f"api.client.{name}.latency")
        # Token-bucket admission state (QoSProfile.rate_limit).  One bucket
        # per *client*, shared by all its sessions: the quota bounds the
        # caller's aggregate rate, which is the whole point of admission
        # control.  Initialised full on first use.
        self._bucket_tokens: Optional[float] = None
        self._bucket_refilled_at = 0.0
        self._throttled = False

    def _admit(self, limit: RateLimit) -> bool:
        """Spend one admission token; False answers the operation ``BUSY``.

        The bucket refills continuously at ``limit.rate_per_second``
        (virtual time) up to ``limit.burst`` tokens.  Entering the
        over-quota state (the first rejection after an admitted operation)
        counts one ``api.admission.throttled`` episode; every rejected
        operation counts in ``api.admission.rejected`` and the client's
        ``api.client.<name>.rejected`` scope (recorded by the caller).
        """
        now = self.sim.now
        if self._bucket_tokens is None:
            self._bucket_tokens = float(limit.burst)
        else:
            self._bucket_tokens = min(
                float(limit.burst),
                self._bucket_tokens
                + (now - self._bucket_refilled_at) * limit.rate_per_second)
        self._bucket_refilled_at = now
        if self._bucket_tokens >= 1.0:
            self._bucket_tokens -= 1.0
            self._throttled = False
            return True
        if not self._throttled:
            self._throttled = True
            self.metrics.increment("api.admission.throttled")
        return False

    # -- deployment plumbing (delegates, so sessions stay import-light) -------

    @property
    def sim(self):
        return self.udr.sim

    @property
    def config(self):
        return self.udr.config

    @property
    def metrics(self):
        return self.udr.metrics

    def session(self, qos: Optional[QoSProfile] = None) -> Session:
        """Open a session; ``qos`` layers over the client's profile."""
        return Session(self, self.qos.layered(qos))

    def __repr__(self) -> str:
        return (f"<UDRClient {self.name!r} site={self.site} "
                f"type={self.client_type.value} qos={self.qos}>")
