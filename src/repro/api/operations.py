"""Typed operations: what a client asks of the UDR, not how LDAP spells it.

Call sites used to hand-build :class:`~repro.ldap.operations.LdapRequest`
subclasses -- distinguished names, filter strings, attribute dictionaries --
which leaked the directory encoding into every front-end, experiment and
example.  An :class:`Operation` names the *intent* instead:

* :class:`Read` -- fetch one subscriber's record by IMSI (optionally a
  projection of attributes);
* :class:`Search` -- fetch by any other identity (MSISDN, IMPU, IMPI),
  the index-based lookup of the paper's data-location stage;
* :class:`Write` -- change attributes of an existing subscriber;
* :class:`Provision` -- create a brand-new subscription
  (:meth:`Provision.create`) or terminate one (:meth:`Provision.terminate`).

``to_request()`` produces the exact LDAP request the legacy call sites
built, so a sessioned operation and a hand-built request walk the pipeline
identically -- the equivalence suite in ``tests/test_session_api.py`` pins
that down.  The LDAP encoding lives *only* here; a CI check
(``scripts/check_api_boundaries.py``) keeps raw request construction out of
``src/repro/experiments/`` and ``examples/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.ldap.dn import DistinguishedName
from repro.ldap.operations import (
    AddRequest,
    DeleteRequest,
    LdapRequest,
    ModifyRequest,
    SearchRequest,
    SearchScope,
)
from repro.ldap.schema import SubscriberSchema

#: Identity types the data-location stage indexes (mirrors
#: ``repro.core.deployment.IDENTITY_RECORD_ATTRIBUTE``; kept literal here so
#: the API layer does not import the deployment layer).
IDENTITY_TYPES: Tuple[str, ...] = ("imsi", "msisdn", "impu", "impi")


@dataclass(frozen=True)
class Operation:
    """Base class of typed client operations."""

    #: Class-level flag (no request construction needed to read it).
    is_write = False

    def to_request(self) -> LdapRequest:
        """The LDAP request this operation encodes to."""
        raise NotImplementedError

    @property
    def kind(self) -> str:
        return type(self).__name__.lower()


@dataclass(frozen=True)
class Read(Operation):
    """Fetch one subscriber's record by IMSI."""

    imsi: str
    attributes: Tuple[str, ...] = ()

    def __post_init__(self):
        if not self.imsi:
            raise ValueError("Read needs an IMSI")

    def to_request(self) -> SearchRequest:
        return SearchRequest(dn=SubscriberSchema.subscriber_dn(self.imsi),
                             attributes=tuple(self.attributes))


@dataclass(frozen=True)
class Search(Operation):
    """Fetch subscriber records: by identity, or by scoped filter search.

    Two shapes, exactly one per operation:

    * ``Search("msisdn", "+34...")`` -- the classic index-based
      single-subscriber lookup by a non-IMSI identity;
    * :meth:`Search.scoped` -- a scoped directory search (BASE / ONE_LEVEL /
      SUBTREE) with an arbitrary filter, optionally keyset-paged
      (``page_size``; follow pages via :meth:`next_page` or
      ``Session.search_pages``).
    """

    identity_type: str = ""
    value: str = ""
    attributes: Tuple[str, ...] = ()
    filter_text: str = ""
    scope: SearchScope = SearchScope.SUBTREE
    base: Optional[DistinguishedName] = None
    page_size: Optional[int] = None
    cursor: Optional[str] = None

    def __post_init__(self):
        if bool(self.identity_type or self.value) == bool(self.filter_text):
            raise ValueError("Search is either an identity lookup "
                             "(identity_type + value) or a scoped filter "
                             "search (filter_text), exactly one")
        if self.filter_text:
            if self.page_size is not None and self.page_size < 1:
                raise ValueError("page_size must be at least 1")
            return
        if self.identity_type not in IDENTITY_TYPES:
            raise ValueError(f"unknown identity type "
                             f"{self.identity_type!r}; expected one of "
                             f"{IDENTITY_TYPES}")
        if not self.value:
            raise ValueError("Search needs an identity value")

    @classmethod
    def scoped(cls, filter_text: str,
               scope: SearchScope = SearchScope.SUBTREE,
               base: Optional[DistinguishedName] = None,
               attributes: Tuple[str, ...] = (),
               page_size: Optional[int] = None,
               cursor: Optional[str] = None) -> "Search":
        """A scoped directory search under ``base`` (the subscriber subtree
        by default), optionally keyset-paged."""
        return cls(filter_text=filter_text, scope=scope, base=base,
                   attributes=tuple(attributes), page_size=page_size,
                   cursor=cursor)

    def next_page(self, response) -> Optional["Search"]:
        """The follow-up operation fetching the page after ``response``.

        Returns ``None`` when the response says the result set is drained
        (``has_more`` false or no cursor).
        """
        if not getattr(response, "has_more", False) or \
                response.next_cursor is None:
            return None
        return replace(self, cursor=response.next_cursor)

    def to_request(self) -> SearchRequest:
        if self.filter_text:
            return SearchRequest(
                dn=self.base if self.base is not None
                else SubscriberSchema.BASE_DN,
                scope=self.scope,
                filter_text=self.filter_text,
                attributes=tuple(self.attributes),
                page_size=self.page_size,
                cursor=self.cursor)
        return SearchRequest(
            dn=SubscriberSchema.BASE_DN,
            filter_text=(f"(&(objectClass=udrSubscriber)"
                         f"({self.identity_type}={self.value}))"),
            attributes=tuple(self.attributes))


@dataclass(frozen=True)
class Write(Operation):
    """Change attributes of an existing subscriber (None deletes one)."""

    is_write = True

    imsi: str
    changes: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if not self.imsi:
            raise ValueError("Write needs an IMSI")
        if not self.changes:
            raise ValueError("Write needs at least one change")

    def to_request(self) -> ModifyRequest:
        return ModifyRequest(dn=SubscriberSchema.subscriber_dn(self.imsi),
                             changes=dict(self.changes))


@dataclass(frozen=True)
class Provision(Operation):
    """Create a brand-new subscription, or terminate an existing one.

    Built via :meth:`create` (a record's full attribute set, IMSI included)
    or :meth:`terminate` (the IMSI to remove); the constructor validates
    that exactly one shape was given.
    """

    is_write = True

    attributes: Dict[str, Any] = field(default_factory=dict)
    terminate_imsi: str = ""

    def __post_init__(self):
        if bool(self.attributes) == bool(self.terminate_imsi):
            raise ValueError("Provision is either a create (attributes) or "
                             "a terminate (terminate_imsi), exactly one")
        if self.attributes and not self.attributes.get("imsi"):
            raise ValueError("a created subscription needs an 'imsi' "
                             "attribute")

    @classmethod
    def create(cls, attributes: Dict[str, Any]) -> "Provision":
        return cls(attributes=dict(attributes))

    @classmethod
    def terminate(cls, imsi: str) -> "Provision":
        return cls(terminate_imsi=imsi)

    def to_request(self) -> LdapRequest:
        if self.attributes:
            return AddRequest(
                dn=SubscriberSchema.subscriber_dn(self.attributes["imsi"]),
                attributes=dict(self.attributes))
        return DeleteRequest(
            dn=SubscriberSchema.subscriber_dn(self.terminate_imsi))


def as_request(operation) -> LdapRequest:
    """Coerce an :class:`Operation` or a raw request to an ``LdapRequest``.

    The session layer accepts both so legacy call sites can migrate one
    argument at a time; new code should pass typed operations.
    """
    if isinstance(operation, Operation):
        return operation.to_request()
    if isinstance(operation, LdapRequest):
        return operation
    raise TypeError(f"expected an Operation or LdapRequest, got "
                    f"{type(operation).__name__}")
