"""The unified client API: typed operations, sessions, QoS, futures.

Every workload enters the UDR through this package.  A caller *attaches* a
named client to a deployment (``udr.attach(name, site, qos=...)``), opens a
:class:`~repro.api.session.Session` on it, and issues typed
:class:`~repro.api.operations.Operation` requests -- ``Read``, ``Search``,
``Write``, ``Provision`` -- instead of hand-building LDAP request objects:

* ``session.call(op)`` is the blocking path (the old ``udr.execute`` /
  ``udr.call``);
* ``session.submit(op)`` returns a :class:`~repro.api.session.ResponseFuture`
  immediately (the old dispatcher ticket path);
* ``session.submit_many(ops)`` carries a whole list through one batched
  admission (the old ``udr.execute_batch``), one future per operation.

A per-session :class:`~repro.api.qos.QoSProfile` (priority class, retry
policy, deadline ticks) overrides the global ``UDRConfig`` knobs and flows
with every operation through dispatcher wave formation and the pipeline's
retry stage, so an expired operation short-circuits with
``TIME_LIMIT_EXCEEDED`` instead of consuming pipeline hops.

The legacy ``UDRNetworkFunction.execute/submit/call/execute_batch`` entry
points survive as deprecation shims that delegate here and count the
``api.legacy_calls`` metric.
"""

from repro.api.operations import (
    Operation,
    Provision,
    Read,
    Search,
    Write,
    as_request,
)
from repro.api.qos import DEADLINE_TICK, QoSProfile
from repro.api.session import ResponseFuture, Session, UDRClient

__all__ = [
    "DEADLINE_TICK",
    "Operation",
    "Provision",
    "QoSProfile",
    "Read",
    "ResponseFuture",
    "Search",
    "Session",
    "UDRClient",
    "Write",
    "as_request",
]
