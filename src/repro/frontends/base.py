"""The generic application front-end actor.

An application front-end sits at a site (close to the users it serves),
executes network procedures for subscribers, and for each procedure issues
the corresponding LDAP operations against the UDR -- always through the
closest Point of Access, as an FE client
(:attr:`repro.core.config.ClientType.APPLICATION_FE`).

A procedure succeeds only if *all* its operations succeed; a failed operation
aborts the rest of the procedure (the user perceives a failed registration or
call attempt).  The front-end records per-procedure latency and outcome in
the UDR's metrics registry so experiments can compare FE and PS behaviour
during partitions (experiment E03) and against the 10 ms target (E14).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.api.qos import QoSProfile
from repro.core.config import ClientType
from repro.frontends.procedures import (
    NetworkProcedure,
    ProcedureCatalogue,
    ProcedureOutcome,
)
from repro.subscriber.profile import SubscriberProfile


class ApplicationFrontEnd:
    """A stateless front-end instance serving users at one site.

    A thin adapter over the session API: construction attaches a named
    :class:`~repro.api.session.UDRClient` (FE client type) and keeps one
    long-lived session; every procedure's typed operations are issued
    through it.  An optional ``qos`` profile (priority, retry policy,
    deadline ticks) applies to all of the front-end's traffic.
    """

    client_type = ClientType.APPLICATION_FE
    default_mix = ProcedureCatalogue.classic_mix

    def __init__(self, name: str, udr, site,
                 procedure_mix: Optional[Dict[NetworkProcedure, float]] = None,
                 qos: Optional[QoSProfile] = None):
        self.name = name
        self.udr = udr
        self.site = site
        self.client = udr.attach(name, site, client_type=self.client_type,
                                 qos=qos)
        self.session = self.client.session()
        self.procedure_mix = procedure_mix or type(self).default_mix()
        self.procedures_attempted = 0
        self.procedures_succeeded = 0
        self.outcomes_by_procedure: Dict[str, Dict[str, int]] = {}

    # -- single procedure -------------------------------------------------------

    def run_procedure(self, procedure: NetworkProcedure,
                      subscriber: SubscriberProfile,
                      serving_node: Optional[str] = None):
        """Generator: execute one procedure; returns a ProcedureOutcome."""
        serving_node = serving_node or f"{self.name}-node"
        operations = procedure.operations(subscriber, serving_node)
        start = self.udr.sim.now
        self.procedures_attempted += 1
        outcome = ProcedureOutcome(procedure=procedure.name, succeeded=True,
                                   operations=len(operations))
        for index, operation in enumerate(operations):
            # Session.call routes by UDRConfig.dispatch_mode: direct
            # call-and-wait, or enqueue into the arrival-driven batch
            # dispatcher and wait (the client name is the source tag, so all
            # of this front-end's requests completing in one wave share a
            # single grouped response event).
            response = yield from self.session.call(operation)
            if not response.ok:
                outcome.succeeded = False
                outcome.failed_operation = index
                outcome.diagnostics.append(
                    f"{response.request.operation_name}: "
                    f"{response.result_code.name} "
                    f"({response.diagnostic_message})")
                break
        outcome.latency = self.udr.sim.now - start
        if outcome.succeeded:
            self.procedures_succeeded += 1
        stats = self.outcomes_by_procedure.setdefault(
            procedure.name, {"attempted": 0, "succeeded": 0})
        stats["attempted"] += 1
        stats["succeeded"] += int(outcome.succeeded)
        recorder = self.udr.metrics.latency(f"procedure.{procedure.name}")
        recorder.record(outcome.latency)
        procedure_outcomes = self.udr.metrics.outcomes("fe_procedures")
        if outcome.succeeded:
            procedure_outcomes.record_success()
        else:
            procedure_outcomes.record_failure(
                outcome.diagnostics[-1] if outcome.diagnostics else "failed")
        return outcome

    def run_random_procedure(self, subscriber: SubscriberProfile, rng):
        """Generator: execute one procedure drawn from this FE's traffic mix."""
        procedure = ProcedureCatalogue.pick(self.procedure_mix, rng)
        outcome = yield from self.run_procedure(procedure, subscriber)
        return outcome

    # -- background traffic driver --------------------------------------------------

    def traffic_driver(self, subscribers, rate_per_second: float,
                       duration: float, rng=None):
        """Generator: Poisson procedure arrivals for ``duration`` seconds.

        ``subscribers`` is the pool this front-end serves (typically the ones
        whose current region matches the FE's site region); each arrival
        picks a random subscriber and a random procedure from the mix.
        """
        if rate_per_second <= 0:
            raise ValueError("arrival rate must be positive")
        if not subscribers:
            raise ValueError("the front-end needs at least one subscriber")
        rng = rng or self.udr.sim.rng(f"fe.{self.name}")
        end_time = self.udr.sim.now + duration
        while self.udr.sim.now < end_time:
            yield self.udr.sim.timeout(rng.expovariate(rate_per_second))
            if self.udr.sim.now >= end_time:
                break
            subscriber = rng.choice(subscribers)
            yield from self.run_random_procedure(subscriber, rng)
        return self.procedures_attempted

    # -- reporting -----------------------------------------------------------------------

    def success_ratio(self) -> float:
        if self.procedures_attempted == 0:
            return 1.0
        return self.procedures_succeeded / self.procedures_attempted

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.name!r} site={self.site} "
                f"procedures={self.procedures_attempted} "
                f"success={self.success_ratio():.3f}>")
