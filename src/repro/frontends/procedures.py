"""Network procedures and the typed operations they cost.

The paper (section 3.5, footnote 8): "Typical mobile network procedures cause
between 1 and 3 LDAP operations [...] A single typical IMS network procedure
may cause 5 or 6 LDAP read/write operations."  Each procedure below builds
its concrete operation sequence for a given subscriber, so front-ends replay
realistic operation mixes against the UDR.

Procedures build typed :mod:`repro.api` operations (``Read``, ``Search``,
``Write``) -- the LDAP encoding lives in the API layer, not here.
:meth:`NetworkProcedure.requests` survives as a deprecation shim rendering
the operations to raw :class:`~repro.ldap.operations.LdapRequest` objects
for legacy callers; new code iterates :meth:`NetworkProcedure.operations`
and issues them through a session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.api.operations import Operation, Read, Search, Write
from repro.ldap.operations import LdapRequest
from repro.subscriber.profile import SubscriberProfile


def _read(profile: SubscriberProfile, attributes=()) -> Read:
    return Read(profile.identities.imsi, attributes=tuple(attributes))


def _read_by_msisdn(profile: SubscriberProfile) -> Search:
    return Search("msisdn", profile.identities.msisdn)


def _update(profile: SubscriberProfile, changes) -> Write:
    return Write(profile.identities.imsi, changes=dict(changes))


@dataclass(frozen=True)
class NetworkProcedure:
    """One network procedure: a name and its typed operation sequence."""

    name: str
    build: Callable[[SubscriberProfile, str], List[Operation]]
    ims: bool = False

    def operations(self, profile: SubscriberProfile,
                   serving_node: str = "node-0") -> List[Operation]:
        """The typed :mod:`repro.api` operations this procedure issues."""
        return self.build(profile, serving_node)

    def requests(self, profile: SubscriberProfile,
                 serving_node: str = "node-0") -> List[LdapRequest]:
        """Deprecation shim: the operations rendered to raw LDAP requests."""
        return [operation.to_request()
                for operation in self.operations(profile, serving_node)]

    def operation_count(self, profile: SubscriberProfile) -> int:
        return len(self.operations(profile))


def _attach(profile: SubscriberProfile, serving_node: str) -> List[Operation]:
    """Initial attach: authentication read + location update write."""
    return [
        _read(profile, attributes=("authKey", "subscriberStatus")),
        _update(profile, {"servingMsc": serving_node,
                          "currentRegion": profile.current_region}),
    ]


def _location_update(profile: SubscriberProfile,
                     serving_node: str) -> List[Operation]:
    """Periodic/moving location update: read profile + write serving node."""
    return [
        _read(profile, attributes=("subscriberStatus", "svcRoamingAllowed")),
        _update(profile, {"servingMsc": serving_node,
                          "currentRegion": profile.current_region}),
    ]


def _authentication(profile: SubscriberProfile,
                    serving_node: str) -> List[Operation]:
    return [_read(profile, attributes=("authKey",))]


def _terminating_call(profile: SubscriberProfile,
                      serving_node: str) -> List[Operation]:
    """Routing an incoming call: one read, addressed by MSISDN."""
    return [_read_by_msisdn(profile)]


def _originating_call(profile: SubscriberProfile,
                      serving_node: str) -> List[Operation]:
    """Outgoing call: read barring/forwarding settings."""
    return [_read(profile, attributes=("svcBarOutInternational",
                                       "svcBarPremium", "svcCfu"))]


def _sms_delivery(profile: SubscriberProfile,
                  serving_node: str) -> List[Operation]:
    return [_read_by_msisdn(profile)]


def _ims_registration(profile: SubscriberProfile,
                      serving_node: str) -> List[Operation]:
    """IMS registration: the heavier 5-operation procedure of footnote 8."""
    return [
        _read(profile, attributes=("impi", "authKey")),
        _read(profile, attributes=("impu", "svcImsEnabled")),
        _update(profile, {"imsRegistered": True}),
        _read(profile, attributes=("svcOperatorServices",)),
        _update(profile, {"servingSgsn": serving_node}),
    ]


def _ims_session(profile: SubscriberProfile,
                 serving_node: str) -> List[Operation]:
    """IMS session setup: reads of both parties' service profiles."""
    return [
        _read(profile, attributes=("impu", "svcImsEnabled")),
        _read(profile, attributes=("svcOperatorServices",)),
        _read_by_msisdn(profile),
        _read(profile, attributes=("svcCfu", "svcCfb")),
        _read(profile, attributes=("currentRegion",)),
        _read(profile, attributes=("servingSgsn",)),
    ]


@dataclass
class ProcedureOutcome:
    """Result of running one procedure against the UDR."""

    procedure: str
    succeeded: bool
    operations: int = 0
    failed_operation: Optional[int] = None
    latency: float = 0.0
    diagnostics: List[str] = field(default_factory=list)


class ProcedureCatalogue:
    """The set of procedures a front-end knows, with their traffic weights."""

    ATTACH = NetworkProcedure("attach", _attach)
    LOCATION_UPDATE = NetworkProcedure("location_update", _location_update)
    AUTHENTICATION = NetworkProcedure("authentication", _authentication)
    TERMINATING_CALL = NetworkProcedure("terminating_call", _terminating_call)
    ORIGINATING_CALL = NetworkProcedure("originating_call", _originating_call)
    SMS_DELIVERY = NetworkProcedure("sms_delivery", _sms_delivery)
    IMS_REGISTRATION = NetworkProcedure("ims_registration", _ims_registration,
                                        ims=True)
    IMS_SESSION = NetworkProcedure("ims_session", _ims_session, ims=True)

    ALL = (ATTACH, LOCATION_UPDATE, AUTHENTICATION, TERMINATING_CALL,
           ORIGINATING_CALL, SMS_DELIVERY, IMS_REGISTRATION, IMS_SESSION)

    @classmethod
    def by_name(cls, name: str) -> NetworkProcedure:
        for procedure in cls.ALL:
            if procedure.name == name:
                return procedure
        raise KeyError(f"unknown procedure {name!r}")

    @classmethod
    def classic_mix(cls) -> Dict[NetworkProcedure, float]:
        """Traffic mix of a 2G/3G/4G (HLR-style) front-end."""
        return {
            cls.LOCATION_UPDATE: 0.30,
            cls.AUTHENTICATION: 0.25,
            cls.TERMINATING_CALL: 0.15,
            cls.ORIGINATING_CALL: 0.15,
            cls.SMS_DELIVERY: 0.10,
            cls.ATTACH: 0.05,
        }

    @classmethod
    def ims_mix(cls) -> Dict[NetworkProcedure, float]:
        """Traffic mix of an IMS (HSS-style) front-end."""
        return {
            cls.IMS_REGISTRATION: 0.25,
            cls.IMS_SESSION: 0.35,
            cls.AUTHENTICATION: 0.15,
            cls.LOCATION_UPDATE: 0.15,
            cls.TERMINATING_CALL: 0.10,
        }

    @staticmethod
    def pick(mix: Dict[NetworkProcedure, float], rng) -> NetworkProcedure:
        """Weighted random choice from a mix."""
        procedures = list(mix)
        weights = [mix[procedure] for procedure in procedures]
        return rng.choices(procedures, weights=weights, k=1)[0]

    @staticmethod
    def average_operations(mix: Dict[NetworkProcedure, float],
                           profile: SubscriberProfile) -> float:
        """Mean LDAP operations per procedure under a mix (paper: 1-3, IMS 5-6)."""
        total_weight = sum(mix.values())
        return sum(weight * procedure.operation_count(profile)
                   for procedure, weight in mix.items()) / total_weight
