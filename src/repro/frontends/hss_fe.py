"""The HSS front-end: IMS and LTE procedures.

The HSS-FE supports the richer IMS procedures, which the paper notes are
"somewhat heavier": a single IMS network procedure may cause five or six LDAP
read/write operations (footnote 8), so HSS-dominated traffic consumes the
per-subscriber operation headroom faster than classic HLR traffic.
"""

from __future__ import annotations

from repro.frontends.base import ApplicationFrontEnd
from repro.frontends.procedures import ProcedureCatalogue


class HssFrontEnd(ApplicationFrontEnd):
    """An HSS-FE instance: IMS-heavy procedure mix, 5-6 LDAP ops per procedure."""

    default_mix = ProcedureCatalogue.ims_mix
