"""Application front-ends: the stateless HLR-FE / HSS-FE of a UDC network.

In the UDC architecture the subscriber-management network functions become
stateless front-ends that read and write subscriber data in the UDR for every
network procedure they take part in (attach, location update, call setup,
SMS, IMS registration...).  Each procedure costs one to three LDAP operations
(five or six for IMS procedures), which is the traffic the paper's capacity
and latency arguments are about.
"""

from repro.frontends.procedures import (
    NetworkProcedure,
    ProcedureCatalogue,
    ProcedureOutcome,
)
from repro.frontends.base import ApplicationFrontEnd
from repro.frontends.hlr_fe import HlrFrontEnd
from repro.frontends.hss_fe import HssFrontEnd

__all__ = [
    "ApplicationFrontEnd",
    "HlrFrontEnd",
    "HssFrontEnd",
    "NetworkProcedure",
    "ProcedureCatalogue",
    "ProcedureOutcome",
]
