"""The HLR front-end: circuit/packet-switched (2G/3G/4G) procedures.

The HLR-FE is "named after its non-DLA counterpart" (paper, footnote 1): it
cooperates in the same network procedures as a classic HLR -- location
management, authentication, call and SMS routing -- but reads and writes all
subscriber data in the UDR.
"""

from __future__ import annotations

from repro.frontends.base import ApplicationFrontEnd
from repro.frontends.procedures import ProcedureCatalogue


class HlrFrontEnd(ApplicationFrontEnd):
    """An HLR-FE instance: classic mobile procedures, 1-3 LDAP ops each."""

    default_mix = ProcedureCatalogue.classic_mix
