"""Data location stage: mapping subscriber identities to storage locations.

Section 3.3.1 of the paper: "Every point of access to the UDR is capable of
resolving data location locally to the PoA".  The location stage is stateful
because the UDR must support **multiple indexes** (one per subscriber
identity: MSISDN, IMSI, IMPU, ...) and **selective placement** (pinning a
subscription's data to a chosen storage element for regulatory or locality
reasons), which rules out plain hashing.  Its lookup cost therefore grows as
O(log N) instead of O(1) (the paper's H-F "weak link"), and keeping its
identity-location maps synchronised across Points of Access is what slows
down scale-out (the F-R-S triangle of section 3.5).

This package implements the paper's chosen design and both alternatives it
discusses so they can be compared experimentally:

* :class:`ProvisionedLocator` -- maps provisioned together with the
  subscription (the paper's choice).
* :class:`CachedLocator` -- maps built on the fly; cache misses fan out to
  every storage element.
* :class:`ConsistentHashLocator` -- O(1) hashing, at the price of replicating
  placement per identity and giving up selective placement.
"""

from repro.directory.errors import LocatorSyncInProgress, UnknownIdentity
from repro.directory.identity_map import IdentityLocationMap
from repro.directory.indexes import (
    AttributeIndex,
    AttributeIndexSet,
    IdentityType,
    MultiIndexDirectory,
)
from repro.directory.dit import DirectoryCatalog, DITIndex
from repro.directory.consistent_hash import ConsistentHashRing
from repro.directory.placement import (
    HomeRegionPlacement,
    PlacementPolicy,
    RandomPlacement,
    RegulatoryPinning,
    RoundRobinPlacement,
)
from repro.directory.locator import (
    CachedLocator,
    ConsistentHashLocator,
    Locator,
    LocatorStats,
    ProvisionedLocator,
)
from repro.directory.sync import MapSyncEstimate, MapSynchroniser

__all__ = [
    "AttributeIndex",
    "AttributeIndexSet",
    "CachedLocator",
    "ConsistentHashLocator",
    "ConsistentHashRing",
    "DITIndex",
    "DirectoryCatalog",
    "HomeRegionPlacement",
    "IdentityLocationMap",
    "IdentityType",
    "Locator",
    "LocatorStats",
    "LocatorSyncInProgress",
    "MapSyncEstimate",
    "MapSynchroniser",
    "MultiIndexDirectory",
    "PlacementPolicy",
    "ProvisionedLocator",
    "RandomPlacement",
    "RegulatoryPinning",
    "RoundRobinPlacement",
    "UnknownIdentity",
]
