"""Placement policies: which storage element gets a new subscription.

Section 3.5 of the paper: "the UDR might allow the PS to specify in what SE
it wants data of a subscription to be placed, i.e. selective location.  This
is useful in telecom networks since it is known that users stay within the
home region of the subscription most of the time" -- placing data near its
home region keeps application front-end traffic off the backbone and is the
lever that moves the H-R trade-off point.  Regulatory constraints can
override locality ("data for subscribers belonging to a country or
organization must be located at a predetermined place").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class PlacementCandidate:
    """A storage element a placement policy may choose.

    ``region`` is the name of the region its site belongs to; ``has_capacity``
    lets the policy skip full elements.
    """

    def __init__(self, element_name: str, region: str, has_capacity: bool = True):
        self.element_name = element_name
        self.region = region
        self.has_capacity = has_capacity

    def __repr__(self) -> str:
        return (f"PlacementCandidate({self.element_name!r}, {self.region!r}, "
                f"has_capacity={self.has_capacity})")


class PlacementPolicy:
    """Strategy interface for choosing where a subscription's data lives."""

    name = "abstract"
    supports_selective_placement = True

    def choose(self, subscriber, candidates: Sequence[PlacementCandidate]) -> str:
        """Return the chosen element name.

        ``subscriber`` exposes at least ``home_region`` and ``organisation``
        attributes (duck-typed; the subscriber package provides them).
        """
        raise NotImplementedError

    @staticmethod
    def _usable(candidates: Sequence[PlacementCandidate]) -> List[PlacementCandidate]:
        usable = [c for c in candidates if c.has_capacity]
        if not usable:
            raise ValueError("no storage element has capacity left")
        return usable


class RandomPlacement(PlacementPolicy):
    """Uniform random placement -- the baseline 'just shard it' strategy."""

    name = "random"
    supports_selective_placement = False

    def __init__(self, rng):
        self.rng = rng

    def choose(self, subscriber, candidates: Sequence[PlacementCandidate]) -> str:
        usable = self._usable(candidates)
        return self.rng.choice(usable).element_name


class RoundRobinPlacement(PlacementPolicy):
    """Deterministic round-robin placement (even fill, no locality)."""

    name = "round-robin"
    supports_selective_placement = False

    def __init__(self):
        self._next = 0

    def choose(self, subscriber, candidates: Sequence[PlacementCandidate]) -> str:
        usable = self._usable(candidates)
        choice = usable[self._next % len(usable)]
        self._next += 1
        return choice.element_name


class HomeRegionPlacement(PlacementPolicy):
    """Selective placement: keep a subscription's data in its home region."""

    name = "home-region"
    supports_selective_placement = True

    def __init__(self, fallback: Optional[PlacementPolicy] = None):
        self.fallback = fallback or RoundRobinPlacement()
        self.local_placements = 0
        self.fallback_placements = 0

    def choose(self, subscriber, candidates: Sequence[PlacementCandidate]) -> str:
        usable = self._usable(candidates)
        home_region = getattr(subscriber, "home_region", None)
        local = [c for c in usable if c.region == home_region]
        if local:
            self.local_placements += 1
            # Spread within the region deterministically by subscriber key.
            key = getattr(subscriber, "key", "")
            return local[hash_index(key, len(local))].element_name
        self.fallback_placements += 1
        return self.fallback.choose(subscriber, usable)


class RegulatoryPinning(PlacementPolicy):
    """Pin organisations/countries to predetermined elements, else delegate."""

    name = "regulatory-pinning"
    supports_selective_placement = True

    def __init__(self, pinned: Dict[str, str],
                 fallback: Optional[PlacementPolicy] = None):
        self.pinned = dict(pinned)
        self.fallback = fallback or HomeRegionPlacement()
        self.pinned_placements = 0

    def choose(self, subscriber, candidates: Sequence[PlacementCandidate]) -> str:
        usable = self._usable(candidates)
        organisation = getattr(subscriber, "organisation", None)
        home_region = getattr(subscriber, "home_region", None)
        for pin_key in (organisation, home_region):
            if pin_key and pin_key in self.pinned:
                target = self.pinned[pin_key]
                for candidate in usable:
                    if candidate.element_name == target:
                        self.pinned_placements += 1
                        return target
        return self.fallback.choose(subscriber, usable)


def hash_index(key: str, modulus: int) -> int:
    """Stable index derivation used to spread placements within a region."""
    import hashlib
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    digest = hashlib.md5(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % modulus
