"""Identity-location map synchronisation on scale-out (paper section 3.4.2).

"In every new blade cluster deployed, a data location stage instance is
created automatically [...] this distribution stage instance syncs its
identity-location maps with peer instances in other blade clusters [...]
however, this synchronization takes some time, during which operations issued
on the PoA realized by the new blade cluster cannot be handled.  Therefore
data availability (R) is affected by the data location sync mechanism
introduced to facilitate S."

The synchroniser provides both an analytic estimate (for the capacity
planner) and a simulation process that actually copies the entries over the
backbone in chunks, keeping the new locator in the "syncing" state until the
copy finishes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.directory.locator import ProvisionedLocator
from repro.sim import units


@dataclass
class MapSyncEstimate:
    """Analytic estimate of one map synchronisation."""

    entries: int
    bytes_transferred: int
    duration: float

    @property
    def unavailable_seconds(self) -> float:
        """Time during which the new PoA cannot serve operations."""
        return self.duration


class MapSynchroniser:
    """Copies identity-location maps from a peer locator to a new one."""

    def __init__(self, entry_bytes: int = 64,
                 backbone_bandwidth: float = 100 * units.MIB,
                 per_entry_cpu: float = 2 * units.MICROSECOND,
                 chunk_entries: int = 50_000):
        if entry_bytes <= 0 or backbone_bandwidth <= 0:
            raise ValueError("entry size and bandwidth must be positive")
        if chunk_entries < 1:
            raise ValueError("chunk size must be at least one entry")
        self.entry_bytes = entry_bytes
        self.backbone_bandwidth = backbone_bandwidth
        self.per_entry_cpu = per_entry_cpu
        self.chunk_entries = chunk_entries

    # -- analytic -----------------------------------------------------------------

    def estimate(self, entries: int) -> MapSyncEstimate:
        """Duration of a sync of ``entries`` identity-location tuples."""
        if entries < 0:
            raise ValueError("entries cannot be negative")
        total_bytes = entries * self.entry_bytes
        duration = (total_bytes / self.backbone_bandwidth
                    + entries * self.per_entry_cpu)
        return MapSyncEstimate(entries=entries, bytes_transferred=total_bytes,
                               duration=duration)

    # -- simulation -----------------------------------------------------------------

    def sync(self, sim, network, source_site, target_site,
             source: ProvisionedLocator, target: ProvisionedLocator):
        """Generator: copy all entries from ``source`` into ``target``.

        The target locator is unavailable (raises
        :class:`~repro.directory.errors.LocatorSyncInProgress`) until the
        copy completes.  Returns the produced :class:`MapSyncEstimate`.
        """
        entries = source.export_entries()
        target.begin_sync(len(entries))
        transferred = 0
        for start in range(0, len(entries), self.chunk_entries):
            chunk = entries[start:start + self.chunk_entries]
            payload = len(chunk) * self.entry_bytes
            yield from network.transfer(source_site, target_site,
                                        payload_bytes=payload)
            # Serialisation/deserialisation cost on the new stage.
            yield sim.timeout(len(chunk) * self.per_entry_cpu)
            target.import_entries(chunk)
            target.sync_progress(len(chunk))
            transferred += payload
        target.complete_sync()
        return MapSyncEstimate(entries=len(entries),
                               bytes_transferred=transferred,
                               duration=0.0)
