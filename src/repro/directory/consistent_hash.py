"""Consistent hashing, the alternative to identity-location maps.

Section 3.5: "One such alternative would be to use consistent hashing to
index locations.  To apply consistent hashing to the UDR, we need multiple
replicas being each replica indexed by a different identity.  The high number
of current and future identities the UDR has to support might render this
approach impractical."

The ring is the standard virtual-node construction: locations are hashed onto
a circle a configurable number of times; a key's owner is the first virtual
node clockwise from the key's hash.  Lookup cost is O(log V) in the number of
virtual nodes -- crucially **independent of the number of subscribers**, which
is the property experiment E10 contrasts with the O(log N) identity maps.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence


def _hash_position(value: str) -> int:
    digest = hashlib.md5(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """A consistent-hash ring mapping keys to locations."""

    def __init__(self, locations: Optional[Sequence[str]] = None,
                 virtual_nodes: int = 64):
        if virtual_nodes < 1:
            raise ValueError("need at least one virtual node per location")
        self.virtual_nodes = virtual_nodes
        self._ring: List[int] = []
        self._owners: Dict[int, str] = {}
        self._locations: List[str] = []
        self.lookups = 0
        self.comparisons = 0
        for location in locations or []:
            self.add_location(location)

    # -- membership -----------------------------------------------------------------

    def add_location(self, location: str) -> None:
        if location in self._locations:
            return
        self._locations.append(location)
        for replica in range(self.virtual_nodes):
            position = _hash_position(f"{location}#{replica}")
            # Extremely unlikely collisions are resolved by nudging.
            while position in self._owners:
                position += 1
            self._owners[position] = location
            bisect.insort(self._ring, position)

    def remove_location(self, location: str) -> None:
        if location not in self._locations:
            raise KeyError(f"unknown location {location!r}")
        self._locations.remove(location)
        positions = [position for position, owner in self._owners.items()
                     if owner == location]
        for position in positions:
            del self._owners[position]
            index = bisect.bisect_left(self._ring, position)
            del self._ring[index]

    @property
    def locations(self) -> List[str]:
        return list(self._locations)

    # -- lookup ------------------------------------------------------------------------

    def locate(self, key: str) -> str:
        """Location owning ``key``; cost independent of the subscriber count."""
        if not self._ring:
            raise LookupError("the hash ring has no locations")
        self.lookups += 1
        position = _hash_position(key)
        index = bisect.bisect_right(self._ring, position)
        # The binary search cost depends on the ring size only.
        self.comparisons += max(1, (len(self._ring)).bit_length())
        if index == len(self._ring):
            index = 0
        return self._owners[self._ring[index]]

    def average_lookup_cost(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.comparisons / self.lookups

    def distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """How many of ``keys`` map to each location (balance check)."""
        counts = {location: 0 for location in self._locations}
        for key in keys:
            counts[self.locate(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self._locations)

    def __repr__(self) -> str:
        return (f"<ConsistentHashRing locations={len(self._locations)} "
                f"virtual_nodes={self.virtual_nodes}>")
