"""A single identity -> location map with O(log N) lookups.

The paper's data location stage is state-full: it stores identity-location
tuples (e.g. MSISDN -> storage element address) and its "processing cost
typically grows as O(log N), being N the number of subscribers in the UDR
NF".  The map is implemented over a sorted key array with binary search and
*counts the comparisons it performs*, so experiment E10 can plot the measured
lookup cost against the subscriber count and check the O(log N) claim
directly rather than by wall-clock proxy.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.directory.errors import UnknownIdentity


class IdentityLocationMap:
    """Sorted map from one identity namespace to storage locations."""

    def __init__(self, identity_type: str):
        self.identity_type = identity_type
        self._keys: List[str] = []
        self._locations: Dict[str, str] = {}
        self.lookups = 0
        self.comparisons = 0

    # -- mutation -----------------------------------------------------------------

    def insert(self, identity: str, location: str) -> None:
        """Add or update the location of ``identity``."""
        if identity not in self._locations:
            index = bisect.bisect_left(self._keys, identity)
            self._keys.insert(index, identity)
        self._locations[identity] = location

    def remove(self, identity: str) -> None:
        if identity not in self._locations:
            raise UnknownIdentity(self.identity_type, identity)
        del self._locations[identity]
        index = bisect.bisect_left(self._keys, identity)
        if index < len(self._keys) and self._keys[index] == identity:
            del self._keys[index]

    def bulk_load(self, entries: Iterable[Tuple[str, str]]) -> None:
        """Load many entries at once (initial sync of a new location stage).

        ``dict.update`` consumes the pairs in C instead of a per-entry
        Python loop -- same O(N) stores plus one O(N log N) sort, but
        without the interpreter overhead per entry.  This is the hot path
        of locator synchronisation and of the E10 population build.
        """
        self._locations.update(entries)
        self._keys = sorted(self._locations)

    # -- lookup ---------------------------------------------------------------------

    def locate(self, identity: str) -> str:
        """Return the location of ``identity``; O(log N) with counted cost."""
        self.lookups += 1
        self.comparisons += self._binary_search_cost(identity)
        try:
            return self._locations[identity]
        except KeyError:
            raise UnknownIdentity(self.identity_type, identity) from None

    def _binary_search_cost(self, identity: str) -> int:
        """Number of key comparisons a binary search for ``identity`` makes."""
        low, high, steps = 0, len(self._keys), 0
        while low < high:
            steps += 1
            middle = (low + high) // 2
            if self._keys[middle] < identity:
                low = middle + 1
            else:
                high = middle
        return max(steps, 1)

    def contains(self, identity: str) -> bool:
        return identity in self._locations

    def get(self, identity: str, default: Optional[str] = None) -> Optional[str]:
        return self._locations.get(identity, default)

    # -- bulk access -------------------------------------------------------------------

    def entries(self) -> Iterator[Tuple[str, str]]:
        for key in self._keys:
            yield key, self._locations[key]

    def average_lookup_cost(self) -> float:
        """Mean comparisons per lookup since creation (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.comparisons / self.lookups

    def reset_counters(self) -> None:
        self.lookups = 0
        self.comparisons = 0

    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, identity: str) -> bool:
        return identity in self._locations

    def __repr__(self) -> str:
        return (f"<IdentityLocationMap {self.identity_type} "
                f"entries={len(self._locations)}>")
