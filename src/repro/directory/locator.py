"""Locator strategies: provisioned maps, cached maps, consistent hashing.

Section 3.5 discusses a subtle trade-off in the F-R-S triangle: if the
identity-location maps are **provisioned** (the paper's assumption) a new
data-location stage must copy all entries from a peer before it can serve,
hurting availability on scale-out; if the maps are **cached and built on the
fly** availability is unaffected but "every cache miss implies locating the
subscriber data by querying multiple or even all the SE in the system".  The
consistent-hash alternative avoids both costs but cannot support selective
placement and needs one data replica per identity namespace.

All three are implemented behind one interface so the UDR core can swap them
by configuration and the experiments can compare the consequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.directory.consistent_hash import ConsistentHashRing
from repro.directory.errors import LocatorSyncInProgress, UnknownIdentity
from repro.directory.indexes import IdentityType, MultiIndexDirectory


@dataclass
class LocatorStats:
    """Counters shared by every locator implementation."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    broadcasts: int = 0
    elements_queried_on_miss: int = 0
    registrations: int = 0

    def hit_ratio(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class Locator:
    """Interface of a data-location stage instance at one Point of Access."""

    name = "abstract"
    supports_selective_placement = True

    def __init__(self):
        self.stats = LocatorStats()

    def locate(self, identity_type: str, value: str) -> str:
        """Return the storage element holding the subscription's data."""
        raise NotImplementedError

    def register(self, identities: Mapping[str, str], location: str) -> None:
        """Record a (new) subscription's location."""
        raise NotImplementedError

    def deregister(self, identities: Mapping[str, str]) -> None:
        raise NotImplementedError

    def lookup_cost(self) -> float:
        """Average comparisons per lookup (the H-F link's x-axis)."""
        return 0.0


class ProvisionedLocator(Locator):
    """The paper's choice: identity-location maps written at provisioning time."""

    name = "provisioned"
    supports_selective_placement = True

    def __init__(self, identity_types=None):
        super().__init__()
        self.directory = MultiIndexDirectory(identity_types)
        self._syncing = False
        self._sync_remaining = 0

    # -- sync state (scale-out) ----------------------------------------------------

    @property
    def syncing(self) -> bool:
        return self._syncing

    def begin_sync(self, total_entries: int) -> None:
        """The new PoA starts copying maps from a peer; it cannot serve yet."""
        self._syncing = True
        self._sync_remaining = total_entries

    def sync_progress(self, entries_loaded: int) -> None:
        self._sync_remaining = max(0, self._sync_remaining - entries_loaded)

    def complete_sync(self) -> None:
        self._syncing = False
        self._sync_remaining = 0

    # -- Locator interface ------------------------------------------------------------

    def locate(self, identity_type: str, value: str) -> str:
        if self._syncing:
            raise LocatorSyncInProgress(self._sync_remaining)
        self.stats.lookups += 1
        try:
            location = self.directory.resolve(identity_type, value)
        except UnknownIdentity:
            self.stats.misses += 1
            raise
        self.stats.hits += 1
        return location

    def register(self, identities: Mapping[str, str], location: str) -> None:
        self.stats.registrations += 1
        self.directory.register(identities, location)

    def deregister(self, identities: Mapping[str, str]) -> None:
        self.directory.deregister(identities)

    def export_entries(self) -> List:
        """All entries, for synchronising a newly deployed peer instance."""
        return self.directory.all_entries()

    def import_entries(self, entries) -> None:
        self.directory.bulk_load(entries)

    def lookup_cost(self) -> float:
        return self.directory.average_lookup_cost()

    def __repr__(self) -> str:
        return (f"<ProvisionedLocator entries={self.directory.total_entries()} "
                f"syncing={self._syncing}>")


class CachedLocator(Locator):
    """Maps built on the fly; a miss queries the storage elements directly.

    ``authority`` is a callable ``(identity_type, value) -> element name or
    None`` provided by the UDR deployment: it searches the primary copies of
    all storage elements, which is exactly the "querying multiple or even all
    the SE in the system" cost the paper warns about.  ``fanout`` reports how
    many elements such a broadcast touches, so experiments can charge it.
    """

    name = "cached"
    supports_selective_placement = True

    def __init__(self, authority: Callable[[str, str], Optional[str]],
                 fanout: int = 1, identity_types=None):
        super().__init__()
        if fanout < 1:
            raise ValueError("fanout must be at least 1")
        self.authority = authority
        self.fanout = fanout
        self.cache = MultiIndexDirectory(identity_types)

    def locate(self, identity_type: str, value: str) -> str:
        self.stats.lookups += 1
        if self.cache.contains(identity_type, value):
            self.stats.hits += 1
            return self.cache.resolve(identity_type, value)
        self.stats.misses += 1
        self.stats.broadcasts += 1
        self.stats.elements_queried_on_miss += self.fanout
        location = self.authority(identity_type, value)
        if location is None:
            raise UnknownIdentity(identity_type, value)
        self.cache.register({identity_type: value}, location)
        return location

    def register(self, identities: Mapping[str, str], location: str) -> None:
        # Nothing to provision: the cache warms itself.  Pre-warming on
        # registration is still worthwhile for the local PoA.
        self.stats.registrations += 1
        self.cache.register(identities, location)

    def deregister(self, identities: Mapping[str, str]) -> None:
        self.cache.deregister(identities)

    def invalidate(self, identities: Mapping[str, str]) -> None:
        """Drop cached entries (after a relocation)."""
        self.cache.deregister(identities)

    def lookup_cost(self) -> float:
        return self.cache.average_lookup_cost()

    def __repr__(self) -> str:
        return (f"<CachedLocator entries={self.cache.total_entries()} "
                f"hit_ratio={self.stats.hit_ratio():.2f}>")


class ConsistentHashLocator(Locator):
    """O(1)-style location by hashing, the paper's discarded alternative.

    Placement is implied by the hash of each identity, so the same
    subscription's data would have to be replicated once per identity
    namespace (``storage_overhead_factor``) and cannot be pinned to a chosen
    element (``supports_selective_placement`` is False).
    """

    name = "consistent-hash"
    supports_selective_placement = False

    def __init__(self, element_names, identity_types=None, virtual_nodes: int = 64):
        super().__init__()
        self.identity_types = list(identity_types or IdentityType.ALL)
        self.ring = ConsistentHashRing(element_names, virtual_nodes=virtual_nodes)

    @property
    def storage_overhead_factor(self) -> int:
        """Data copies required so every identity namespace can be hashed."""
        return len(self.identity_types)

    def locate(self, identity_type: str, value: str) -> str:
        self.stats.lookups += 1
        self.stats.hits += 1
        return self.ring.locate(f"{identity_type}:{value}")

    def placement_for(self, identities: Mapping[str, str]) -> Dict[str, str]:
        """Element each identity namespace hashes to (they usually differ)."""
        return {identity_type: self.ring.locate(f"{identity_type}:{value}")
                for identity_type, value in identities.items()}

    def register(self, identities: Mapping[str, str], location: str) -> None:
        # Hashing dictates placement; an explicit location cannot be honoured.
        self.stats.registrations += 1

    def deregister(self, identities: Mapping[str, str]) -> None:
        return None

    def lookup_cost(self) -> float:
        return self.ring.average_lookup_cost()

    def __repr__(self) -> str:
        return (f"<ConsistentHashLocator elements={len(self.ring)} "
                f"overhead_factor={self.storage_overhead_factor}>")
