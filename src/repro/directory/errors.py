"""Exceptions raised by the data location stage."""


class UnknownIdentity(KeyError):
    """No location is known for the given subscriber identity."""

    def __init__(self, identity_type, value):
        super().__init__(f"unknown identity {identity_type}={value!r}")
        self.identity_type = identity_type
        self.value = value


class LocatorSyncInProgress(RuntimeError):
    """The locator instance is still synchronising its identity-location maps.

    The paper (section 3.4.2): "this synchronization takes some time, during
    which operations issued on the PoA realized by the new blade cluster
    cannot be handled."
    """

    def __init__(self, remaining_entries):
        super().__init__(
            f"data location stage still syncing ({remaining_entries} entries "
            "to go); operations cannot be handled yet")
        self.remaining_entries = remaining_entries
