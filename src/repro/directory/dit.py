"""Interval-indexed directory information tree (the XPath-accelerator trick).

Scoped LDAP Search is a tree problem: ``scope=SUBTREE`` asks for the
descendants of a base DN, ``scope=ONE_LEVEL`` for its children.  Walking the
directory per query costs O(entries); annotating every node with a
*pre/post-order interval* instead makes both scopes one range scan over a
sorted array, because

    x is a descendant of a  <=>  pre(a) < pre(x) < post(a)

(Grust's XPath accelerator; a descendant axis *is* an LDAP subtree scope).
The labels are **gapped integers**: a new node takes two labels out of its
parent's tail gap, so the hot path (provisioning appends under the flat
``ou=subscribers`` base) never renumbers anything.  Only when a parent's gap
is exhausted does the tree relabel -- one DFS that re-sizes every gap
proportionally to the node's fan-out, so relabels stay amortised O(1) per
insert (each relabel buys room for a constant fraction of the current
subtree before the next one).  Relabels are counted and surfaced as the
``directory.dit.relabels`` metric: a hot path accidentally triggering full
renumbering shows up loudly.

:class:`DirectoryCatalog` combines the DIT with the attribute secondary
indexes (:class:`~repro.directory.indexes.AttributeIndexSet`) and keeps both
current from commit records -- the deployment subscribes it to every
partition copy's WAL, filtered to locally-originated commits, so a CREATE,
MODIFY or DELETE maintains the index incrementally on the commit hook
instead of rebuilding anything.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.directory.indexes import AttributeIndexSet
from repro.ldap.dn import DistinguishedName
from repro.storage.records import TOMBSTONE

#: Tail gap granted per node at relabel time: room for this many direct
#: children (plus a constant floor) before the parent must relabel again.
_RELABEL_SLACK_FLOOR = 16


class _Node:
    """One DIT node: an entry, or an interior container on an entry's path."""

    __slots__ = ("dn", "rdn_key", "parent", "children", "depth",
                 "pre", "post", "entry_id", "last_child")

    def __init__(self, dn: Optional[DistinguishedName], rdn_key: str,
                 parent: Optional["_Node"], depth: int):
        self.dn = dn
        self.rdn_key = rdn_key
        self.parent = parent
        self.children: Dict[str, "_Node"] = {}
        self.depth = depth
        self.pre = 0
        self.post = 0
        #: The directory entry stored at this DN (None for pure containers).
        self.entry_id: Optional[str] = None
        #: The child with the highest pre label (new siblings append after
        #: its post), maintained on insert/delete.
        self.last_child: Optional["_Node"] = None

    def __repr__(self) -> str:
        return (f"<_Node {self.rdn_key!r} pre={self.pre} post={self.post} "
                f"entry={self.entry_id!r}>")


def _rdn_key(attribute: str, value: str) -> str:
    return f"{attribute}={value}"


class DITIndex:
    """Pre/post-order interval labels over the directory information tree.

    ``insert`` / ``remove`` maintain the labels incrementally (two labels out
    of the parent's tail gap per insert); ``subtree`` / ``one_level`` /
    ``base`` resolve a search scope as one binary search plus a contiguous
    slice of the pre-ordered node array, returning the entry ids in document
    order together with the comparison count the caller charges as work.
    """

    def __init__(self):
        self._root = _Node(None, "", None, depth=0)
        self._root.pre = 0
        self._root.post = 1 << 62
        self._nodes: Dict[str, _Node] = {}
        #: Pre labels of all non-root nodes, ascending (document order).
        self._pres: List[int] = []
        #: Nodes parallel to ``_pres``.
        self._order: List[_Node] = []
        #: Full renumbering passes (the ``directory.dit.relabels`` metric).
        self.relabels = 0
        self.entries = 0
        self._bulk = False

    # -- lookup ----------------------------------------------------------------

    def __len__(self) -> int:
        return self.entries

    def node_count(self) -> int:
        return len(self._order)

    def find(self, dn: DistinguishedName) -> Optional[_Node]:
        return self._nodes.get(str(dn))

    def contains(self, dn: DistinguishedName) -> bool:
        return str(dn) in self._nodes

    # -- maintenance ------------------------------------------------------------

    def insert(self, dn: DistinguishedName, entry_id: str) -> None:
        """Store ``entry_id`` at ``dn``, creating container nodes on the way."""
        node = self._ensure_node(dn)
        if node.entry_id is None:
            self.entries += 1
        node.entry_id = entry_id

    def remove(self, dn: DistinguishedName) -> bool:
        """Remove the entry at ``dn``; empty container nodes are pruned.

        Deleting only unlinks nodes from the sorted array -- the labels they
        held become reusable gap for later siblings, no renumbering happens.
        """
        node = self._nodes.get(str(dn))
        if node is None or node.entry_id is None:
            return False
        node.entry_id = None
        self.entries -= 1
        while node is not None and node.parent is not None and \
                node.entry_id is None and not node.children:
            parent = node.parent
            self._unlink(node)
            node = parent
        return True

    def bulk_load(self, items: Iterable[Tuple[DistinguishedName, str]]) -> None:
        """Load many entries with a single labelling pass (initial builds)."""
        self._bulk = True
        try:
            for dn, entry_id in items:
                self.insert(dn, entry_id)
        finally:
            self._bulk = False
        self._relabel()

    # -- scope resolution ----------------------------------------------------------

    def subtree(self, base: DistinguishedName) -> Optional[Tuple[List[str], int]]:
        """Entry ids under ``base`` (base included), plus comparisons spent.

        Returns ``None`` when the base DN is not in the tree at all.
        """
        node = self._nodes.get(str(base))
        if node is None:
            return None
        low, high, comparisons = self._interval_slice(node)
        ids = [] if node.entry_id is None else [node.entry_id]
        for inner in self._order[low:high]:
            if inner.entry_id is not None:
                ids.append(inner.entry_id)
        return ids, comparisons + (high - low)

    def one_level(self, base: DistinguishedName
                  ) -> Optional[Tuple[List[str], int]]:
        """Entry ids exactly one level below ``base`` (base excluded)."""
        node = self._nodes.get(str(base))
        if node is None:
            return None
        low, high, comparisons = self._interval_slice(node)
        child_depth = node.depth + 1
        ids = [inner.entry_id for inner in self._order[low:high]
               if inner.depth == child_depth and inner.entry_id is not None]
        return ids, comparisons + (high - low)

    def base(self, base: DistinguishedName) -> Optional[Tuple[List[str], int]]:
        """The entry at exactly ``base`` (empty when it is a pure container)."""
        node = self._nodes.get(str(base))
        if node is None:
            return None
        ids = [] if node.entry_id is None else [node.entry_id]
        return ids, 1

    def _interval_slice(self, node: _Node) -> Tuple[int, int, int]:
        low = bisect_right(self._pres, node.pre)
        high = bisect_left(self._pres, node.post)
        # Two binary searches over the sorted pre array.
        comparisons = 2 * max(1, len(self._pres).bit_length())
        return low, high, comparisons

    # -- labelling ----------------------------------------------------------------

    def _ensure_node(self, dn: DistinguishedName) -> _Node:
        key = str(dn)
        node = self._nodes.get(key)
        if node is not None:
            return node
        parent_dn = dn.parent()
        parent = self._root if parent_dn is None else self._ensure_node(parent_dn)
        node = _Node(dn, _rdn_key(*dn.rdns[0]), parent, depth=parent.depth + 1)
        self._nodes[key] = node
        parent.children[node.rdn_key] = node
        if not self._bulk:
            self._assign_labels(node, parent)
        return node

    def _assign_labels(self, node: _Node, parent: _Node) -> None:
        left = parent.last_child.post if parent.last_child is not None \
            else parent.pre
        if parent.post - left < 3:
            # The node already hangs off its parent, so the renumbering DFS
            # labels it (and re-sorts everything) -- nothing left to do.
            self._relabel()
            return
        node.pre = left + 1
        node.post = left + 2
        parent.last_child = node
        index = bisect_left(self._pres, node.pre)
        self._pres.insert(index, node.pre)
        self._order.insert(index, node)

    def _unlink(self, node: _Node) -> None:
        parent = node.parent
        del parent.children[node.rdn_key]
        del self._nodes[str(node.dn)]
        index = bisect_left(self._pres, node.pre)
        del self._pres[index]
        del self._order[index]
        if parent.last_child is node:
            parent.last_child = (
                max(parent.children.values(), key=lambda child: child.pre)
                if parent.children else None)

    def _relabel(self) -> None:
        """Renumber the whole tree, granting every node a fan-out-sized gap.

        O(nodes); amortised away by the gap sizing -- a node with ``k``
        children leaves room for ``2k + floor`` more before its gap can run
        out again, so relabel events thin out geometrically as a hot spot
        grows.
        """
        self.relabels += 1
        counter = [0]
        pres: List[int] = []
        order: List[_Node] = []

        def assign(node: _Node) -> None:
            node.pre = counter[0]
            counter[0] += 1
            if node is not self._root:
                pres.append(node.pre)
                order.append(node)
            last = None
            # Children dicts preserve insertion order, which is document
            # order (packed inserts always append after the last sibling) --
            # and it covers nodes a relabel reached before their first
            # labels were assigned.
            for child in node.children.values():
                assign(child)
                last = child
            node.last_child = last
            counter[0] += 2 * len(node.children) + _RELABEL_SLACK_FLOOR
            node.post = counter[0]
            counter[0] += 1

        # Iterative DFS via explicit recursion limit safety: directory trees
        # are shallow (a handful of levels), plain recursion is fine.
        assign(self._root)
        self._pres = pres
        self._order = order

    def __repr__(self) -> str:
        return (f"<DITIndex entries={self.entries} "
                f"nodes={len(self._order)} relabels={self.relabels}>")


class _CatalogEntry:
    __slots__ = ("entry_id", "dn", "partition_index", "sort_key", "values")

    def __init__(self, entry_id: str, dn: DistinguishedName,
                 partition_index: int, sort_key: str,
                 values: Dict[str, Tuple[str, ...]]):
        self.entry_id = entry_id
        self.dn = dn
        self.partition_index = partition_index
        self.sort_key = sort_key
        #: Indexed attribute -> normalised value tuple, the snapshot diffed
        #: against on MODIFY so stale postings are withdrawn.
        self.values = values


class DirectoryCatalog:
    """DIT intervals + attribute postings, maintained from commit records.

    ``entry_view(key, value)`` adapts a raw storage record to the directory:
    it returns ``(dn, ldap_entry_dict)`` for records that are directory
    entries and ``None`` for everything else (the schema layer provides it,
    keeping this module free of subscriber specifics).
    """

    def __init__(self, entry_view: Callable[[str, Any],
                                            Optional[Tuple[DistinguishedName,
                                                           Dict[str, Any]]]],
                 indexed_attributes: Iterable[str]):
        self.entry_view = entry_view
        self.dit = DITIndex()
        self.attributes = AttributeIndexSet(indexed_attributes)
        self._entries: Dict[str, _CatalogEntry] = {}
        self._metrics = None
        self._reported_relabels = 0

    # -- metrics -----------------------------------------------------------------

    def bind_metrics(self, metrics) -> None:
        """Report relabel events to ``metrics`` (counter
        ``directory.dit.relabels``); catches up on any already counted."""
        self._metrics = metrics
        self._flush_relabels()

    def _flush_relabels(self) -> None:
        if self._metrics is None:
            return
        delta = self.dit.relabels - self._reported_relabels
        if delta > 0:
            self._metrics.increment("directory.dit.relabels", delta)
            self._reported_relabels = self.dit.relabels

    # -- bookkeeping ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def relabels(self) -> int:
        return self.dit.relabels

    def entry(self, entry_id: str) -> Optional[_CatalogEntry]:
        return self._entries.get(entry_id)

    def partition_of(self, entry_id: str) -> Optional[int]:
        entry = self._entries.get(entry_id)
        return None if entry is None else entry.partition_index

    def sort_key_of(self, entry_id: str) -> str:
        entry = self._entries.get(entry_id)
        return "" if entry is None else entry.sort_key

    # -- maintenance -----------------------------------------------------------------

    def apply_commit(self, partition_index: int, record) -> None:
        """Fold one WAL commit record into the catalog (the commit hook)."""
        for operation in record.operations:
            if operation.value is TOMBSTONE:
                self.remove(operation.key)
            else:
                self.upsert(operation.key, operation.value, partition_index)
        self._flush_relabels()

    def upsert(self, key: str, value: Any, partition_index: int) -> None:
        existing = self._entries.get(key)
        if existing is not None and isinstance(value, dict):
            # MODIFY fast path: the DN of a stored key never changes, so
            # the indexed values diff straight off the raw record -- no
            # LDAP entry is materialised on the write hot path.
            self._diff_values(existing, key, value, partition_index)
            return
        view = self.entry_view(key, value)
        if view is None:
            return
        dn, ldap_entry = view
        new_values = self.attributes.normalised_values(ldap_entry)
        self.dit.insert(dn, key)
        self._entries[key] = _CatalogEntry(
            key, dn, partition_index, dn.leaf_value, new_values)
        for attribute, values in new_values.items():
            self.attributes.add(attribute, key, values)

    def _diff_values(self, existing: _CatalogEntry, key: str,
                     record: Dict[str, Any], partition_index: int) -> None:
        new_values = self.attributes.normalised_values(record)
        existing.partition_index = partition_index
        old_values = existing.values
        for attribute, values in old_values.items():
            if new_values.get(attribute) != values:
                self.attributes.discard(attribute, key, values)
        for attribute, values in new_values.items():
            if old_values.get(attribute) != values:
                self.attributes.add(attribute, key, values)
        existing.values = new_values

    def remove(self, key: str) -> None:
        existing = self._entries.pop(key, None)
        if existing is None:
            return
        self.dit.remove(existing.dn)
        for attribute, values in existing.values.items():
            self.attributes.discard(attribute, key, values)
        self._flush_relabels()

    def bulk_load(self, items: Iterable[Tuple[str, Any, int]]) -> None:
        """Load ``(key, value, partition_index)`` records in one labelling
        pass -- the initial-base fast path (incremental inserts afterwards)."""
        staged: List[Tuple[DistinguishedName, str]] = []
        for key, value, partition_index in items:
            view = self.entry_view(key, value)
            if view is None:
                continue
            dn, ldap_entry = view
            values = self.attributes.normalised_values(ldap_entry)
            self._entries[key] = _CatalogEntry(
                key, dn, partition_index, dn.leaf_value, values)
            for attribute, value_tuple in values.items():
                self.attributes.add(attribute, key, value_tuple)
            staged.append((dn, key))
        self.dit.bulk_load(staged)
        self._flush_relabels()

    # -- scope resolution ---------------------------------------------------------------

    def scope_candidates(self, base: DistinguishedName, scope
                         ) -> Optional[Tuple[List[str], int]]:
        """Entry ids matching an LDAP search scope, plus comparisons spent.

        ``scope`` is a :class:`~repro.ldap.operations.SearchScope`; returns
        ``None`` when the base DN does not exist in the tree.
        """
        # Compared by value to avoid importing the ldap layer here.
        name = getattr(scope, "name", str(scope))
        if name == "BASE":
            return self.dit.base(base)
        if name == "ONE_LEVEL":
            return self.dit.one_level(base)
        return self.dit.subtree(base)

    def __repr__(self) -> str:
        return (f"<DirectoryCatalog entries={len(self._entries)} "
                f"relabels={self.dit.relabels}>")
