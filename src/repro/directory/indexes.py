"""The multi-index directory: one identity-location map per identity type.

"Data location uses identity-location maps since the UDR must support
multiple indexes (one index per subscriber identity, i.e. MSISDN, IMSI, IMPU
etc.)" -- paper, section 3.3.1.  Registering a subscription therefore inserts
one entry per identity, and any of the subscriber's identities resolves to
the same storage location.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.directory.errors import UnknownIdentity
from repro.directory.identity_map import IdentityLocationMap
# Re-exported for the many importers that treat the directory as the home
# of identity namespaces; the definition lives in the LDAP layer so the
# ldap <-> directory import edge points one way only (reprolint LAY001).
from repro.ldap.identity import IdentityType

__all__ = ["IdentityType", "MultiIndexDirectory"]


class MultiIndexDirectory:
    """Identity-location maps for every supported identity type."""

    def __init__(self, identity_types: Optional[Iterable[str]] = None):
        types = (tuple(identity_types) if identity_types is not None
                 else IdentityType.ALL)
        if not types:
            raise ValueError("need at least one identity type")
        self._maps: Dict[str, IdentityLocationMap] = {
            identity_type: IdentityLocationMap(identity_type)
            for identity_type in types}

    @property
    def identity_types(self) -> List[str]:
        return list(self._maps)

    def map_for(self, identity_type: str) -> IdentityLocationMap:
        try:
            return self._maps[identity_type]
        except KeyError:
            raise UnknownIdentity(identity_type, "<any>") from None

    # -- registration ----------------------------------------------------------------

    def register(self, identities: Mapping[str, str], location: str) -> int:
        """Register a subscription's identities at ``location``.

        ``identities`` maps identity type to value (a subscription has one
        IMSI, one MSISDN, possibly several IMPUs handled as separate calls).
        Returns the number of index entries written, which is what the
        provisioning transaction pays for.
        """
        written = 0
        for identity_type, value in identities.items():
            if identity_type not in self._maps:
                continue
            self._maps[identity_type].insert(value, location)
            written += 1
        return written

    def deregister(self, identities: Mapping[str, str]) -> int:
        removed = 0
        for identity_type, value in identities.items():
            index = self._maps.get(identity_type)
            if index is None or not index.contains(value):
                continue
            index.remove(value)
            removed += 1
        return removed

    def relocate(self, identities: Mapping[str, str], new_location: str) -> int:
        """Point all of a subscription's identities at a new location."""
        return self.register(identities, new_location)

    # -- resolution --------------------------------------------------------------------

    def resolve(self, identity_type: str, value: str) -> str:
        """Location of the subscription owning ``value`` in that namespace."""
        return self.map_for(identity_type).locate(value)

    def contains(self, identity_type: str, value: str) -> bool:
        index = self._maps.get(identity_type)
        return bool(index and index.contains(value))

    # -- bulk / stats -------------------------------------------------------------------

    def all_entries(self) -> List[Tuple[str, str, str]]:
        """Every (identity_type, identity, location) tuple in the directory."""
        result = []
        for identity_type, index in self._maps.items():
            for identity, location in index.entries():
                result.append((identity_type, identity, location))
        return result

    def bulk_load(self, entries: Iterable[Tuple[str, str, str]]) -> None:
        grouped: Dict[str, List[Tuple[str, str]]] = {}
        for identity_type, identity, location in entries:
            grouped.setdefault(identity_type, []).append((identity, location))
        for identity_type, pairs in grouped.items():
            if identity_type in self._maps:
                self._maps[identity_type].bulk_load(pairs)

    def total_entries(self) -> int:
        return sum(len(index) for index in self._maps.values())

    def total_lookups(self) -> int:
        return sum(index.lookups for index in self._maps.values())

    def total_comparisons(self) -> int:
        return sum(index.comparisons for index in self._maps.values())

    def average_lookup_cost(self) -> float:
        lookups = self.total_lookups()
        if lookups == 0:
            return 0.0
        return self.total_comparisons() / lookups

    def __repr__(self) -> str:
        return (f"<MultiIndexDirectory types={len(self._maps)} "
                f"entries={self.total_entries()}>")


def normalise_attribute_values(raw: Any) -> Tuple[str, ...]:
    """The string forms an attribute value matches under LDAP filters.

    Mirrors :class:`~repro.ldap.filters.EqualityFilter`: collections index
    each item, scalars index ``str(value)``, absent/None values index
    nothing.  Postings built from this normalisation therefore agree exactly
    with brute-force filter evaluation.
    """
    if raw is None:
        return ()
    if isinstance(raw, (list, tuple, set, frozenset)):
        return tuple(sorted(str(item) for item in raw))
    return (str(raw),)


class AttributeIndex:
    """Inverted postings for one attribute: value -> set of entry ids."""

    def __init__(self, attribute: str):
        self.attribute = attribute.lower()
        self._postings: Dict[str, Set[str]] = {}
        #: Every entry holding the attribute at all (presence filter support).
        self._present: Set[str] = set()

    def __len__(self) -> int:
        return len(self._present)

    def add(self, entry_id: str, values: Tuple[str, ...]) -> None:
        if not values:
            return
        self._present.add(entry_id)
        for value in values:
            self._postings.setdefault(value, set()).add(entry_id)

    def discard(self, entry_id: str, values: Tuple[str, ...]) -> None:
        self._present.discard(entry_id)
        for value in values:
            bucket = self._postings.get(value)
            if bucket is None:
                continue
            bucket.discard(entry_id)
            if not bucket:
                del self._postings[value]

    def postings(self, value: str) -> Set[str]:
        return self._postings.get(value, set())

    def present(self) -> Set[str]:
        return self._present

    def count(self, value: str) -> int:
        """Posting-list length: the planner's selectivity estimate."""
        return len(self._postings.get(value, ()))

    def present_count(self) -> int:
        return len(self._present)

    def __repr__(self) -> str:
        return (f"<AttributeIndex {self.attribute!r} "
                f"values={len(self._postings)} entries={len(self._present)}>")


class AttributeIndexSet:
    """The secondary indexes a directory catalog maintains per entry."""

    def __init__(self, attributes: Iterable[str]):
        self._indexes: Dict[str, AttributeIndex] = {
            attribute.lower(): AttributeIndex(attribute)
            for attribute in attributes}

    @property
    def attributes(self) -> List[str]:
        return list(self._indexes)

    def covers(self, attribute: str) -> bool:
        return attribute.lower() in self._indexes

    def index_for(self, attribute: str) -> Optional[AttributeIndex]:
        return self._indexes.get(attribute.lower())

    def normalised_values(self, entry: Mapping[str, Any]
                          ) -> Dict[str, Tuple[str, ...]]:
        """The indexed-attribute snapshot of ``entry`` (case-insensitive)."""
        lowered = {key.lower(): value for key, value in entry.items()}
        snapshot: Dict[str, Tuple[str, ...]] = {}
        for attribute in self._indexes:
            values = normalise_attribute_values(lowered.get(attribute))
            if values:
                snapshot[attribute] = values
        return snapshot

    def add(self, attribute: str, entry_id: str,
            values: Tuple[str, ...]) -> None:
        index = self._indexes.get(attribute.lower())
        if index is not None:
            index.add(entry_id, values)

    def discard(self, attribute: str, entry_id: str,
                values: Tuple[str, ...]) -> None:
        index = self._indexes.get(attribute.lower())
        if index is not None:
            index.discard(entry_id, values)

    def equality_postings(self, attribute: str, value: str) -> Optional[Set[str]]:
        """Entry ids with ``attribute == value``; None when not indexed."""
        index = self._indexes.get(attribute.lower())
        return None if index is None else index.postings(value)

    def presence_postings(self, attribute: str) -> Optional[Set[str]]:
        index = self._indexes.get(attribute.lower())
        return None if index is None else index.present()

    def estimate_equality(self, attribute: str, value: str) -> Optional[int]:
        index = self._indexes.get(attribute.lower())
        return None if index is None else index.count(value)

    def estimate_presence(self, attribute: str) -> Optional[int]:
        index = self._indexes.get(attribute.lower())
        return None if index is None else index.present_count()

    def __repr__(self) -> str:
        return f"<AttributeIndexSet attributes={sorted(self._indexes)}>"
