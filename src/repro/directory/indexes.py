"""The multi-index directory: one identity-location map per identity type.

"Data location uses identity-location maps since the UDR must support
multiple indexes (one index per subscriber identity, i.e. MSISDN, IMSI, IMPU
etc.)" -- paper, section 3.3.1.  Registering a subscription therefore inserts
one entry per identity, and any of the subscriber's identities resolves to
the same storage location.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.directory.errors import UnknownIdentity
from repro.directory.identity_map import IdentityLocationMap


class IdentityType:
    """Identity namespaces used by 3GPP subscriber data."""

    IMSI = "imsi"
    MSISDN = "msisdn"
    IMPU = "impu"
    IMPI = "impi"

    ALL = (IMSI, MSISDN, IMPU, IMPI)


class MultiIndexDirectory:
    """Identity-location maps for every supported identity type."""

    def __init__(self, identity_types: Optional[Iterable[str]] = None):
        types = (tuple(identity_types) if identity_types is not None
                 else IdentityType.ALL)
        if not types:
            raise ValueError("need at least one identity type")
        self._maps: Dict[str, IdentityLocationMap] = {
            identity_type: IdentityLocationMap(identity_type)
            for identity_type in types}

    @property
    def identity_types(self) -> List[str]:
        return list(self._maps)

    def map_for(self, identity_type: str) -> IdentityLocationMap:
        try:
            return self._maps[identity_type]
        except KeyError:
            raise UnknownIdentity(identity_type, "<any>") from None

    # -- registration ----------------------------------------------------------------

    def register(self, identities: Mapping[str, str], location: str) -> int:
        """Register a subscription's identities at ``location``.

        ``identities`` maps identity type to value (a subscription has one
        IMSI, one MSISDN, possibly several IMPUs handled as separate calls).
        Returns the number of index entries written, which is what the
        provisioning transaction pays for.
        """
        written = 0
        for identity_type, value in identities.items():
            if identity_type not in self._maps:
                continue
            self._maps[identity_type].insert(value, location)
            written += 1
        return written

    def deregister(self, identities: Mapping[str, str]) -> int:
        removed = 0
        for identity_type, value in identities.items():
            index = self._maps.get(identity_type)
            if index is None or not index.contains(value):
                continue
            index.remove(value)
            removed += 1
        return removed

    def relocate(self, identities: Mapping[str, str], new_location: str) -> int:
        """Point all of a subscription's identities at a new location."""
        return self.register(identities, new_location)

    # -- resolution --------------------------------------------------------------------

    def resolve(self, identity_type: str, value: str) -> str:
        """Location of the subscription owning ``value`` in that namespace."""
        return self.map_for(identity_type).locate(value)

    def contains(self, identity_type: str, value: str) -> bool:
        index = self._maps.get(identity_type)
        return bool(index and index.contains(value))

    # -- bulk / stats -------------------------------------------------------------------

    def all_entries(self) -> List[Tuple[str, str, str]]:
        """Every (identity_type, identity, location) tuple in the directory."""
        result = []
        for identity_type, index in self._maps.items():
            for identity, location in index.entries():
                result.append((identity_type, identity, location))
        return result

    def bulk_load(self, entries: Iterable[Tuple[str, str, str]]) -> None:
        grouped: Dict[str, List[Tuple[str, str]]] = {}
        for identity_type, identity, location in entries:
            grouped.setdefault(identity_type, []).append((identity, location))
        for identity_type, pairs in grouped.items():
            if identity_type in self._maps:
                self._maps[identity_type].bulk_load(pairs)

    def total_entries(self) -> int:
        return sum(len(index) for index in self._maps.values())

    def total_lookups(self) -> int:
        return sum(index.lookups for index in self._maps.values())

    def total_comparisons(self) -> int:
        return sum(index.comparisons for index in self._maps.values())

    def average_lookup_cost(self) -> float:
        lookups = self.total_lookups()
        if lookups == 0:
            return 0.0
        return self.total_comparisons() / lookups

    def __repr__(self) -> str:
        return (f"<MultiIndexDirectory types={len(self._maps)} "
                f"entries={self.total_entries()}>")
