"""The consolidated subscriber profile stored in the UDR.

One profile is one record in a storage element's primary partition copy,
keyed by a stable subscriber key.  The profile carries static subscription
data (identities, authentication material, service settings, home region,
organisation) and the dynamic state network procedures update (serving nodes,
registration status, last-seen region).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.subscriber.identities import IdentitySet
from repro.subscriber.services import ServiceProfile


@dataclass
class SubscriberProfile:
    """The full consolidated data of one subscription."""

    identities: IdentitySet
    home_region: str
    organisation: Optional[str] = None
    services: ServiceProfile = field(default_factory=ServiceProfile)
    authentication_key: str = ""
    subscriber_status: str = "active"           # active / suspended / terminated
    serving_msc: Optional[str] = None            # circuit-switched serving node
    serving_sgsn: Optional[str] = None           # packet-switched serving node
    ims_registered: bool = False
    current_region: Optional[str] = None

    def __post_init__(self):
        if self.current_region is None:
            self.current_region = self.home_region

    # -- keys -----------------------------------------------------------------

    @property
    def key(self) -> str:
        """The storage key of this subscription (IMSI-based, stable)."""
        return f"sub:{self.identities.imsi}"

    # -- conversions -------------------------------------------------------------

    def to_record(self) -> Dict[str, Any]:
        """The attribute map stored in the UDR for this subscription."""
        record: Dict[str, Any] = {
            "imsi": self.identities.imsi,
            "msisdn": self.identities.msisdn,
            "impu": self.identities.impu,
            "impi": self.identities.impi,
            "homeRegion": self.home_region,
            "organisation": self.organisation,
            "authKey": self.authentication_key,
            "subscriberStatus": self.subscriber_status,
            "servingMsc": self.serving_msc,
            "servingSgsn": self.serving_sgsn,
            "imsRegistered": self.ims_registered,
            "currentRegion": self.current_region,
        }
        record.update(self.services.to_attributes())
        return record

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "SubscriberProfile":
        identities = IdentitySet(
            imsi=record["imsi"], msisdn=record["msisdn"],
            impu=record["impu"], impi=record["impi"])
        return cls(
            identities=identities,
            home_region=record.get("homeRegion", ""),
            organisation=record.get("organisation"),
            services=ServiceProfile.from_attributes(record),
            authentication_key=record.get("authKey", ""),
            subscriber_status=record.get("subscriberStatus", "active"),
            serving_msc=record.get("servingMsc"),
            serving_sgsn=record.get("servingSgsn"),
            ims_registered=bool(record.get("imsRegistered", False)),
            current_region=record.get("currentRegion"),
        )

    # -- convenience --------------------------------------------------------------

    def roaming(self) -> bool:
        """Is the subscriber currently outside the home region?"""
        return self.current_region != self.home_region

    def with_location(self, region: str, serving_msc: str) -> "SubscriberProfile":
        """A copy updated by a location-management procedure."""
        return replace(self, current_region=region, serving_msc=serving_msc)

    def __str__(self) -> str:
        return f"{self.identities} ({self.home_region})"
