"""Service settings of a subscription (the provisionable attributes).

These are the attributes provisioning transactions touch and the paper uses
as examples: "if you set up a pay-call barring for the line, you wouldn't be
very happy if you find your kids speaking on it to a hi-toll number" --
partially applied or mis-ordered provisioning must not leave such settings in
an inconsistent state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class ServiceProfile:
    """Supplementary-service settings of one subscription."""

    barring_outgoing_international: bool = False
    barring_premium_numbers: bool = False
    call_forwarding_unconditional: Optional[str] = None
    call_forwarding_busy: Optional[str] = None
    roaming_allowed: bool = True
    data_allowed: bool = True
    ims_enabled: bool = False
    operator_services: List[str] = field(default_factory=list)

    def to_attributes(self) -> Dict[str, Any]:
        """Flatten into the attribute map stored in the UDR record."""
        return {
            "svcBarOutInternational": self.barring_outgoing_international,
            "svcBarPremium": self.barring_premium_numbers,
            "svcCfu": self.call_forwarding_unconditional,
            "svcCfb": self.call_forwarding_busy,
            "svcRoamingAllowed": self.roaming_allowed,
            "svcDataAllowed": self.data_allowed,
            "svcImsEnabled": self.ims_enabled,
            "svcOperatorServices": list(self.operator_services),
        }

    @classmethod
    def from_attributes(cls, attributes: Dict[str, Any]) -> "ServiceProfile":
        return cls(
            barring_outgoing_international=bool(
                attributes.get("svcBarOutInternational", False)),
            barring_premium_numbers=bool(attributes.get("svcBarPremium", False)),
            call_forwarding_unconditional=attributes.get("svcCfu"),
            call_forwarding_busy=attributes.get("svcCfb"),
            roaming_allowed=bool(attributes.get("svcRoamingAllowed", True)),
            data_allowed=bool(attributes.get("svcDataAllowed", True)),
            ims_enabled=bool(attributes.get("svcImsEnabled", False)),
            operator_services=list(attributes.get("svcOperatorServices", [])),
        )

    def enabled_service_count(self) -> int:
        """Number of supplementary services switched on (profile 'weight')."""
        count = 0
        count += self.barring_outgoing_international
        count += self.barring_premium_numbers
        count += self.call_forwarding_unconditional is not None
        count += self.call_forwarding_busy is not None
        count += self.ims_enabled
        count += len(self.operator_services)
        return count
