"""Deterministic synthetic subscriber base generation.

The paper reasons about hundreds of millions of subscribers with an "average
profile"; the experiments need much smaller but structurally identical
populations.  The generator produces profiles deterministically from a seed:
home regions follow a configurable population split, a fraction of
subscriptions belongs to pinned organisations (for the regulatory-placement
experiments), IMS is enabled for a configurable share (IMS procedures cost
more LDAP operations), and a few percent carry non-default service settings.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence

from repro.sim.rng import derive_seed
from repro.subscriber.identities import IdentitySet
from repro.subscriber.profile import SubscriberProfile
from repro.subscriber.services import ServiceProfile


class SubscriberGenerator:
    """Generates deterministic subscriber profiles.

    Parameters
    ----------
    regions:
        Region names of the operator's footprint.
    seed:
        Root seed; the same seed and parameters always produce the same base.
    region_weights:
        Optional relative population weights per region (defaults to uniform).
    ims_share:
        Fraction of subscriptions with IMS enabled.
    organisation_share:
        Fraction of subscriptions belonging to a named organisation
        (candidates for regulatory pinning).
    """

    def __init__(self, regions: Sequence[str], seed: int = 0,
                 region_weights: Optional[Dict[str, float]] = None,
                 ims_share: float = 0.3,
                 organisation_share: float = 0.02):
        if not regions:
            raise ValueError("need at least one region")
        if not 0.0 <= ims_share <= 1.0:
            raise ValueError("ims_share must be within [0, 1]")
        if not 0.0 <= organisation_share <= 1.0:
            raise ValueError("organisation_share must be within [0, 1]")
        self.regions = list(regions)
        self.seed = seed
        self.ims_share = ims_share
        self.organisation_share = organisation_share
        weights = region_weights or {}
        self.region_weights = [max(0.0, weights.get(region, 1.0))
                               for region in self.regions]
        if sum(self.region_weights) <= 0:
            raise ValueError("region weights must not all be zero")
        self._rng = random.Random(derive_seed(seed, "subscriber-generator"))
        # Different seeds generate disjoint identity ranges, so populations
        # built for different purposes (initial base, later provisioning
        # batches) never collide on IMSI/MSISDN.
        self._next_serial = 1 + (derive_seed(seed, "serial-base") % 90_000) \
            * 10_000

    # -- generation -------------------------------------------------------------

    def generate_one(self) -> SubscriberProfile:
        """Generate the next subscriber profile."""
        serial = self._next_serial
        self._next_serial += 1
        region = self._rng.choices(self.regions,
                                   weights=self.region_weights, k=1)[0]
        identities = IdentitySet.for_serial(region, serial)
        services = self._random_services()
        organisation = None
        if self._rng.random() < self.organisation_share:
            organisation = f"org-{region}-{self._rng.randint(1, 5)}"
        return SubscriberProfile(
            identities=identities,
            home_region=region,
            organisation=organisation,
            services=services,
            authentication_key=f"k{serial:032x}",
        )

    def generate(self, count: int) -> List[SubscriberProfile]:
        """Generate ``count`` profiles as a list."""
        if count < 0:
            raise ValueError("count cannot be negative")
        return [self.generate_one() for _ in range(count)]

    def stream(self, count: int) -> Iterator[SubscriberProfile]:
        """Generate ``count`` profiles lazily (for large populations)."""
        for _ in range(count):
            yield self.generate_one()

    def _random_services(self) -> ServiceProfile:
        rng = self._rng
        services = ServiceProfile()
        services.ims_enabled = rng.random() < self.ims_share
        if rng.random() < 0.10:
            services.barring_premium_numbers = True
        if rng.random() < 0.05:
            services.barring_outgoing_international = True
        if rng.random() < 0.15:
            services.call_forwarding_unconditional = \
                f"+999{rng.randint(10_000_000, 99_999_999)}"
        if rng.random() < 0.08:
            services.roaming_allowed = False
        return services

    # -- statistics ----------------------------------------------------------------

    def region_distribution(self, profiles: Sequence[SubscriberProfile]
                            ) -> Dict[str, int]:
        """Count of generated profiles per home region."""
        counts = {region: 0 for region in self.regions}
        for profile in profiles:
            counts[profile.home_region] = counts.get(profile.home_region, 0) + 1
        return counts

    def __repr__(self) -> str:
        return (f"<SubscriberGenerator regions={self.regions} "
                f"generated={self._next_serial - 1}>")
