"""Subscriber data model: identities, profiles, services and generation.

The UDR stores the consolidated subscriber data of a telecom operator.  A
subscription is identified by several identities at once -- IMSI (the SIM),
MSISDN (the phone number), and for IMS networks IMPI/IMPU (private/public
user identities) -- and carries the profile that network procedures read and
provisioning writes: authentication material, service settings (barring,
forwarding, roaming permissions), and dynamic location/registration state.

The synthetic generator produces deterministic, realistic-looking subscriber
bases of arbitrary size with home regions and organisations, which is what
the workload and placement experiments operate on.
"""

from repro.subscriber.identities import (
    IdentitySet,
    format_impi,
    format_impu,
    format_imsi,
    format_msisdn,
)
from repro.subscriber.services import ServiceProfile
from repro.subscriber.profile import SubscriberProfile
from repro.subscriber.generator import SubscriberGenerator

__all__ = [
    "IdentitySet",
    "ServiceProfile",
    "SubscriberGenerator",
    "SubscriberProfile",
    "format_impi",
    "format_impu",
    "format_imsi",
    "format_msisdn",
]
