"""Subscriber identities: IMSI, MSISDN, IMPU, IMPI.

Every subscription carries several identities in different namespaces; the
UDR's data location stage keeps one index per namespace (paper section
3.3.1).  The formatting helpers produce syntactically plausible values from
compact numeric components so the generator stays deterministic and readable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.directory.indexes import IdentityType

#: Mobile country codes used by the synthetic operator, per region name.
REGION_MCC = {
    "spain": "214",
    "sweden": "240",
    "germany": "262",
    "france": "208",
    "italy": "222",
    "usa": "310",
    "china": "460",
}

DEFAULT_MCC = "999"
DEFAULT_MNC = "07"


def format_imsi(region: str, serial: int, mnc: str = DEFAULT_MNC) -> str:
    """International Mobile Subscriber Identity (15 digits: MCC+MNC+MSIN)."""
    mcc = REGION_MCC.get(region, DEFAULT_MCC)
    return f"{mcc}{mnc}{serial:010d}"


def format_msisdn(region: str, serial: int) -> str:
    """The subscriber's phone number in international format."""
    country_code = {"spain": "34", "sweden": "46", "germany": "49",
                    "france": "33", "italy": "39", "usa": "1",
                    "china": "86"}.get(region, "00")
    return f"+{country_code}6{serial:08d}"


def format_impu(region: str, serial: int, domain: str = "ims.example.net") -> str:
    """IMS Public User Identity (a SIP URI)."""
    return f"sip:user{serial:010d}.{region}@{domain}"


def format_impi(region: str, serial: int, domain: str = "ims.example.net") -> str:
    """IMS Private User Identity (used for authentication only)."""
    return f"user{serial:010d}@{region}.{domain}"


@dataclass(frozen=True)
class IdentitySet:
    """All identities of one subscription."""

    imsi: str
    msisdn: str
    impu: str
    impi: str

    def as_mapping(self) -> Dict[str, str]:
        """Identity-type keyed mapping, as the directory expects it."""
        return {
            IdentityType.IMSI: self.imsi,
            IdentityType.MSISDN: self.msisdn,
            IdentityType.IMPU: self.impu,
            IdentityType.IMPI: self.impi,
        }

    @classmethod
    def for_serial(cls, region: str, serial: int) -> "IdentitySet":
        """Deterministically derive all identities from a region and serial."""
        return cls(
            imsi=format_imsi(region, serial),
            msisdn=format_msisdn(region, serial),
            impu=format_impu(region, serial),
            impi=format_impi(region, serial),
        )

    def __str__(self) -> str:
        return f"IMSI {self.imsi} / MSISDN {self.msisdn}"
