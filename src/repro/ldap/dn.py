"""Distinguished names (RFC 4514, simplified).

The UDR addresses subscriber entries by DN, e.g.::

    imsi=214070000000001,ou=subscribers,dc=udr,dc=operator,dc=example

The implementation supports the subset needed by the reproduction: parsing
and formatting of comma-separated RDNs with single attribute-value pairs,
case-insensitive attribute types, and basic escaping of commas, plus signs
and equals signs inside values.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

_ESCAPABLE = {",", "+", "=", "\\", ";", "<", ">", "#"}


def _escape_value(value: str) -> str:
    escaped = []
    for char in value:
        if char in _ESCAPABLE:
            escaped.append("\\" + char)
        else:
            escaped.append(char)
    return "".join(escaped)


def _split_on_unescaped(text: str, separator: str) -> List[str]:
    parts: List[str] = []
    current: List[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\" and index + 1 < len(text):
            current.append(text[index + 1])
            index += 2
            continue
        if char == separator:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
        index += 1
    parts.append("".join(current))
    return parts


class DistinguishedName:
    """An ordered sequence of relative distinguished names."""

    def __init__(self, rdns: Sequence[Tuple[str, str]]):
        if not rdns:
            raise ValueError("a DN needs at least one RDN")
        cleaned = []
        for attribute, value in rdns:
            attribute = attribute.strip().lower()
            if not attribute or not value:
                raise ValueError(f"invalid RDN ({attribute!r}={value!r})")
            cleaned.append((attribute, value))
        self.rdns: Tuple[Tuple[str, str], ...] = tuple(cleaned)

    # -- construction -------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "DistinguishedName":
        """Parse a string DN; raises ``ValueError`` on malformed input."""
        if not text or not text.strip():
            raise ValueError("empty DN")
        rdns = []
        for component in _split_on_unescaped(text.strip(), ","):
            component = component.strip()
            if not component:
                raise ValueError(f"empty RDN component in {text!r}")
            if "=" not in component:
                raise ValueError(f"RDN without '=': {component!r}")
            attribute, _, value = component.partition("=")
            rdns.append((attribute.strip(), value.strip()))
        return cls(rdns)

    @classmethod
    def build(cls, *rdns: Tuple[str, str]) -> "DistinguishedName":
        return cls(list(rdns))

    # -- accessors --------------------------------------------------------------------

    @property
    def leaf_attribute(self) -> str:
        """Attribute type of the left-most (most specific) RDN."""
        return self.rdns[0][0]

    @property
    def leaf_value(self) -> str:
        return self.rdns[0][1]

    @property
    def depth(self) -> int:
        """Number of RDNs, i.e. the entry's depth in the directory tree."""
        return len(self.rdns)

    def parent(self) -> Optional["DistinguishedName"]:
        """The DN with the leaf RDN removed (None for a single-RDN DN)."""
        if len(self.rdns) == 1:
            return None
        return DistinguishedName(self.rdns[1:])

    def ancestors(self) -> List["DistinguishedName"]:
        """Every proper ancestor, closest parent first (root last)."""
        result: List["DistinguishedName"] = []
        for start in range(1, len(self.rdns)):
            result.append(DistinguishedName(self.rdns[start:]))
        return result

    def child(self, attribute: str, value: str) -> "DistinguishedName":
        """A DN one level below this one."""
        return DistinguishedName(((attribute, value),) + self.rdns)

    def is_descendant_of(self, ancestor: "DistinguishedName") -> bool:
        """True if this DN sits under ``ancestor`` (or equals it)."""
        if len(ancestor.rdns) > len(self.rdns):
            return False
        return self.rdns[len(self.rdns) - len(ancestor.rdns):] == ancestor.rdns

    # -- formatting -------------------------------------------------------------------

    def __str__(self) -> str:
        return ",".join(f"{attribute}={_escape_value(value)}"
                        for attribute, value in self.rdns)

    def __repr__(self) -> str:
        return f"DistinguishedName({str(self)!r})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, DistinguishedName):
            return NotImplemented
        return self.rdns == other.rdns

    def __hash__(self) -> int:
        return hash(self.rdns)

    def __len__(self) -> int:
        return len(self.rdns)
