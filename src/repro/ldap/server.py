"""Stateless LDAP server processes and their capacity model.

"The UDR NF runs a distributed, state-less LDAP server providing the
northbound interface to clients of the UDR" (paper, section 3.4.1).  Being
stateless, any server instance can handle any request; scaling LDAP
processing is a matter of deploying more instances behind the Point of
Access' L4 balancer.

A server does two things here:

* **translate** an LDAP request into an operation plan -- which subscriber
  identity is addressed, whether the operation reads or writes, which
  attributes change -- validating DNs, filters and schema rules on the way;
* **account for CPU capacity**: the paper sizes one server at 10^6 indexed
  single-subscriber read/write operations per second, so each operation costs
  one microsecond of server time and a pool of servers saturates at the sum
  of its members' capacities.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.ldap.dn import DistinguishedName
from repro.ldap.filters import EqualityFilter, FilterError, parse_filter
from repro.ldap.operations import (
    AddRequest,
    DeleteRequest,
    LdapRequest,
    ModifyRequest,
    ResultCode,
    SearchRequest,
    SearchScope,
)
from repro.ldap.schema import SubscriberSchema


class PlanKind(enum.Enum):
    """What the UDR has to do for a request."""

    READ = "read"
    SEARCH = "search"
    UPDATE = "update"
    CREATE = "create"
    DELETE = "delete"


@dataclass
class OperationPlan:
    """The distilled intent of one LDAP request."""

    kind: PlanKind
    identity_type: Optional[str] = None
    identity_value: Optional[str] = None
    changes: Dict[str, Any] = field(default_factory=dict)
    attributes: Dict[str, Any] = field(default_factory=dict)
    requested_attributes: Tuple[str, ...] = ()
    error: Optional[ResultCode] = None
    diagnostic: str = ""
    # -- SEARCH plans only ------------------------------------------------------
    scope: Optional["SearchScope"] = None
    base_dn: Optional[DistinguishedName] = None
    filter_text: str = ""
    page_size: Optional[int] = None
    cursor: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def is_write(self) -> bool:
        return self.kind in (PlanKind.UPDATE, PlanKind.CREATE, PlanKind.DELETE)


class LdapServer:
    """One stateless LDAP server process."""

    #: The paper's measured capacity of one server on a state-of-the-art blade.
    DEFAULT_CAPACITY_OPS_PER_SECOND = 1_000_000

    def __init__(self, name: str,
                 capacity_ops_per_second: int = DEFAULT_CAPACITY_OPS_PER_SECOND,
                 schema: type = SubscriberSchema):
        if capacity_ops_per_second <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity_ops_per_second = capacity_ops_per_second
        self.schema = schema
        self.operations_processed = 0
        self.translation_errors = 0

    # -- capacity ------------------------------------------------------------------

    def service_time(self) -> float:
        """CPU time one indexed single-subscriber operation costs."""
        return 1.0 / self.capacity_ops_per_second

    # -- translation -----------------------------------------------------------------

    def plan(self, request: LdapRequest) -> OperationPlan:
        """Translate ``request`` into an :class:`OperationPlan`."""
        self.operations_processed += 1
        if isinstance(request, SearchRequest):
            plan = self._plan_search(request)
        elif isinstance(request, ModifyRequest):
            plan = self._plan_modify(request)
        elif isinstance(request, AddRequest):
            plan = self._plan_add(request)
        elif isinstance(request, DeleteRequest):
            plan = self._plan_delete(request)
        else:
            plan = OperationPlan(kind=PlanKind.READ,
                                 error=ResultCode.UNWILLING_TO_PERFORM,
                                 diagnostic=f"unsupported request {request!r}")
        if not plan.ok:
            self.translation_errors += 1
        return plan

    def _plan_search(self, request: SearchRequest) -> OperationPlan:
        try:
            parse_filter(request.filter_text)
        except FilterError as error:
            return OperationPlan(
                kind=PlanKind.SEARCH, error=ResultCode.UNWILLING_TO_PERFORM,
                diagnostic=f"malformed filter: {error}")
        if request.page_size is not None and request.page_size < 1:
            return OperationPlan(
                kind=PlanKind.SEARCH, error=ResultCode.UNWILLING_TO_PERFORM,
                diagnostic=f"invalid page size {request.page_size}")
        # The fast path -- an index-based single-subscriber read -- applies
        # only to BASE scope: ONE_LEVEL/SUBTREE on a subscriber DN address
        # the entry's (empty) children or subtree, not the entry itself.
        if request.scope is SearchScope.BASE:
            identity = self.schema.identity_from_dn(request.dn)
            if identity is None:
                identity = self._identity_from_filter(request.filter_text)
            if identity is not None:
                identity_type, identity_value = identity
                return OperationPlan(
                    kind=PlanKind.READ,
                    identity_type=identity_type,
                    identity_value=identity_value,
                    requested_attributes=tuple(request.attributes))
        return OperationPlan(kind=PlanKind.SEARCH,
                             scope=request.scope,
                             base_dn=request.dn,
                             filter_text=request.filter_text,
                             page_size=request.page_size,
                             cursor=request.cursor,
                             requested_attributes=tuple(request.attributes))

    def _identity_from_filter(self, filter_text: str) -> Optional[Tuple[str, str]]:
        try:
            parsed = parse_filter(filter_text)
        except FilterError:
            return None
        assertions: Dict[str, str] = {}
        stack: List = [parsed]
        while stack:
            node = stack.pop()
            if isinstance(node, EqualityFilter):
                assertions[node.attribute] = node.value
            children = getattr(node, "children", None)
            if children:
                stack.extend(children)
            child = getattr(node, "child", None)
            if child is not None:
                stack.append(child)
        return self.schema.identity_from_assertions(assertions)

    def _plan_modify(self, request: ModifyRequest) -> OperationPlan:
        identity = self.schema.identity_from_dn(request.dn)
        if identity is None:
            return OperationPlan(kind=PlanKind.UPDATE,
                                 error=ResultCode.NO_SUCH_OBJECT,
                                 diagnostic=f"not a subscriber DN: {request.dn}")
        if not request.changes:
            return OperationPlan(kind=PlanKind.UPDATE,
                                 error=ResultCode.UNWILLING_TO_PERFORM,
                                 diagnostic="modify with no changes")
        identity_type, identity_value = identity
        return OperationPlan(kind=PlanKind.UPDATE,
                             identity_type=identity_type,
                             identity_value=identity_value,
                             changes=dict(request.changes))

    def _plan_add(self, request: AddRequest) -> OperationPlan:
        problems = self.schema.validate_new_entry(request.attributes)
        if problems:
            return OperationPlan(kind=PlanKind.CREATE,
                                 error=ResultCode.UNWILLING_TO_PERFORM,
                                 diagnostic="; ".join(problems))
        identity = self.schema.identity_from_dn(request.dn)
        if identity is None:
            return OperationPlan(kind=PlanKind.CREATE,
                                 error=ResultCode.UNWILLING_TO_PERFORM,
                                 diagnostic=f"not a subscriber DN: {request.dn}")
        identity_type, identity_value = identity
        if request.attributes.get("imsi") != identity_value:
            return OperationPlan(kind=PlanKind.CREATE,
                                 error=ResultCode.UNWILLING_TO_PERFORM,
                                 diagnostic="DN and imsi attribute disagree")
        return OperationPlan(kind=PlanKind.CREATE,
                             identity_type=identity_type,
                             identity_value=identity_value,
                             attributes=dict(request.attributes))

    def _plan_delete(self, request: DeleteRequest) -> OperationPlan:
        identity = self.schema.identity_from_dn(request.dn)
        if identity is None:
            return OperationPlan(kind=PlanKind.DELETE,
                                 error=ResultCode.NO_SUCH_OBJECT,
                                 diagnostic=f"not a subscriber DN: {request.dn}")
        identity_type, identity_value = identity
        return OperationPlan(kind=PlanKind.DELETE,
                             identity_type=identity_type,
                             identity_value=identity_value)

    def __repr__(self) -> str:
        return (f"<LdapServer {self.name!r} "
                f"processed={self.operations_processed}>")


class LdapServerPool:
    """The LDAP servers deployed at one Point of Access (blade cluster)."""

    def __init__(self, name: str, servers: Optional[List[LdapServer]] = None):
        self.name = name
        self.servers: List[LdapServer] = list(servers or [])
        self._next = 0

    @classmethod
    def of_size(cls, name: str, count: int,
                capacity_ops_per_second: int =
                LdapServer.DEFAULT_CAPACITY_OPS_PER_SECOND) -> "LdapServerPool":
        if count < 1:
            raise ValueError("a pool needs at least one LDAP server")
        servers = [LdapServer(f"{name}-ldap-{index}", capacity_ops_per_second)
                   for index in range(count)]
        return cls(name, servers)

    def add_server(self, server: LdapServer) -> None:
        """Scale up: the balancer detects new instances automatically."""
        self.servers.append(server)

    def next_server(self) -> LdapServer:
        """Round-robin selection, as an L4 balancer would do."""
        if not self.servers:
            raise RuntimeError(f"LDAP pool {self.name!r} has no servers")
        server = self.servers[self._next % len(self.servers)]
        self._next += 1
        return server

    @property
    def capacity_ops_per_second(self) -> int:
        return sum(server.capacity_ops_per_second for server in self.servers)

    def total_operations(self) -> int:
        return sum(server.operations_processed for server in self.servers)

    def service_time(self) -> float:
        """Per-operation processing time (one server handles each operation).

        Adding servers raises the pool's aggregate throughput but does not
        make an individual operation faster, so the latency contribution is a
        single server's service time.
        """
        if not self.servers:
            return 0.0
        return min(server.service_time() for server in self.servers)

    def __len__(self) -> int:
        return len(self.servers)

    def __repr__(self) -> str:
        return f"<LdapServerPool {self.name!r} servers={len(self.servers)}>"
