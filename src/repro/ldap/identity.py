"""Identity namespaces used by 3GPP subscriber data.

"Data location uses identity-location maps since the UDR must support
multiple indexes (one index per subscriber identity, i.e. MSISDN, IMSI,
IMPU etc.)" -- paper, section 3.3.1.

This lives in the LDAP layer (the bottom of the directory stack) because
both the schema and the data-location directory key off it: the schema
maps LDAP attribute names onto these namespaces and the directory builds
one identity-location map per namespace.  Keeping it here keeps the layer
DAG acyclic -- ``directory`` imports ``ldap``, never the reverse
(enforced by reprolint rule LAY001 against ``analysis/layers.toml``).
"""

from __future__ import annotations


class IdentityType:
    """Identity namespaces used by 3GPP subscriber data."""

    IMSI = "imsi"
    MSISDN = "msisdn"
    IMPU = "impu"
    IMPI = "impi"

    ALL = (IMSI, MSISDN, IMPU, IMPI)
