"""The subscriber-entry schema exposed over the UDR's LDAP interface.

The 3GPP UDC specifications mandate LDAP but "the structure and semantics of
subscriber data are not detailed by the UDC specifications" (paper, section
1), so each vendor defines its own directory information tree.  The
reproduction uses a single flat subtree of subscriber entries::

    ou=subscribers,dc=udr,dc=operator,dc=example
        imsi=<imsi>,ou=subscribers,...      one entry per subscription

The schema maps LDAP attribute names to the identity namespaces of the data
location stage, names the attributes application front-ends may write
(dynamic state) versus those only provisioning may touch, and validates Add
requests.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.ldap.dn import DistinguishedName
from repro.ldap.identity import IdentityType


class SubscriberSchema:
    """Names, identity attributes and validation rules for subscriber entries."""

    BASE_DN = DistinguishedName.parse("ou=subscribers,dc=udr,dc=operator,dc=example")
    OBJECT_CLASS = "udrSubscriber"

    #: LDAP attribute name -> identity namespace of the location stage.
    IDENTITY_ATTRIBUTES: Dict[str, str] = {
        "imsi": IdentityType.IMSI,
        "msisdn": IdentityType.MSISDN,
        "impu": IdentityType.IMPU,
        "impi": IdentityType.IMPI,
    }

    #: Attributes application front-ends are allowed to modify (dynamic state).
    FRONT_END_WRITABLE = frozenset({
        "servingMsc", "servingSgsn", "imsRegistered", "currentRegion",
    })

    #: Attributes that must be present in every new subscriber entry.
    REQUIRED_ATTRIBUTES = ("imsi", "msisdn", "homeRegion", "subscriberStatus")

    #: Attributes the directory catalog maintains secondary indexes for --
    #: the identities plus the grouping attributes scoped searches filter
    #: on.  ``objectClass`` is deliberately absent: it is constant over
    #: every entry, so its postings would be the whole directory (zero
    #: selectivity) while taxing every single write with index upkeep.
    INDEXED_ATTRIBUTES = ("imsi", "msisdn", "impu", "impi", "homeRegion",
                          "subscriberStatus", "currentRegion",
                          "organisation")

    #: Storage-key prefix of subscriber records (see SubscriberProfile.key).
    RECORD_KEY_PREFIX = "sub:"

    # -- DN helpers ---------------------------------------------------------------

    @classmethod
    def subscriber_dn(cls, imsi: str) -> DistinguishedName:
        """The DN of the subscription whose IMSI is ``imsi``."""
        return cls.BASE_DN.child("imsi", imsi)

    @classmethod
    def is_subscriber_dn(cls, dn: DistinguishedName) -> bool:
        return (dn.leaf_attribute == "imsi"
                and dn.is_descendant_of(cls.BASE_DN)
                and len(dn) == len(cls.BASE_DN) + 1)

    # -- entry views --------------------------------------------------------------

    @classmethod
    def ldap_entry(cls, record: Dict[str, Any],
                   dn: Optional[DistinguishedName] = None) -> Dict[str, Any]:
        """The directory view of a stored record: attributes plus the
        schema-level ``objectClass`` and ``dn`` the raw record omits."""
        if dn is None:
            dn = cls.subscriber_dn(str(record.get("imsi", "")))
        entry = dict(record)
        entry["objectClass"] = cls.OBJECT_CLASS
        entry["dn"] = str(dn)
        return entry

    @classmethod
    def catalog_view(cls, key: str, value: Any
                     ) -> Optional[Tuple[DistinguishedName, Dict[str, Any]]]:
        """Adapt a raw storage record for the directory catalog.

        Returns ``(dn, ldap_entry)`` for subscriber records and ``None`` for
        any other key the storage layer may hold.
        """
        if not key.startswith(cls.RECORD_KEY_PREFIX):
            return None
        if not isinstance(value, dict):
            return None
        imsi = str(value.get("imsi") or key[len(cls.RECORD_KEY_PREFIX):])
        dn = cls.subscriber_dn(imsi)
        return dn, cls.ldap_entry(value, dn)

    # -- identity extraction ---------------------------------------------------------

    @classmethod
    def identity_from_dn(cls, dn: DistinguishedName) -> Optional[Tuple[str, str]]:
        """(identity type, value) addressed by a subscriber DN, if any."""
        if not cls.is_subscriber_dn(dn):
            return None
        return IdentityType.IMSI, dn.leaf_value

    @classmethod
    def identity_from_assertions(cls, assertions: Dict[str, str]
                                 ) -> Optional[Tuple[str, str]]:
        """Pick the identity assertion out of a filter's equality tests.

        Index-based single-subscriber queries always carry exactly one
        identity; when several are present the IMSI (the primary key) wins.
        """
        found: Dict[str, str] = {}
        for attribute, value in assertions.items():
            identity_type = cls.IDENTITY_ATTRIBUTES.get(attribute.lower())
            if identity_type is not None:
                found[identity_type] = value
        for preferred in (IdentityType.IMSI, IdentityType.MSISDN,
                          IdentityType.IMPU, IdentityType.IMPI):
            if preferred in found:
                return preferred, found[preferred]
        return None

    # -- validation ---------------------------------------------------------------------

    @classmethod
    def validate_new_entry(cls, attributes: Dict[str, Any]) -> List[str]:
        """Return the list of problems with a new entry (empty when valid)."""
        problems = []
        for required in cls.REQUIRED_ATTRIBUTES:
            if not attributes.get(required):
                problems.append(f"missing required attribute {required!r}")
        status = attributes.get("subscriberStatus")
        if status not in (None, "active", "suspended", "terminated"):
            problems.append(f"invalid subscriberStatus {status!r}")
        return problems

    @classmethod
    def front_end_may_write(cls, attributes: Dict[str, Any]) -> bool:
        """True when all modified attributes are dynamic-state attributes."""
        return all(attribute in cls.FRONT_END_WRITABLE
                   for attribute in attributes)
