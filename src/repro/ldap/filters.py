"""LDAP search filters (RFC 4515 string representation, simplified).

Application front-ends find subscriber entries by identity, e.g.
``(msisdn=+34600000001)`` or ``(&(objectClass=subscriber)(imsi=21407...))``.
The parser supports equality, presence, substring, AND, OR and NOT filters,
which covers every query the reproduction issues while staying small enough
to be obviously correct.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class FilterError(ValueError):
    """Raised for malformed filter strings."""


class LdapFilter:
    """Base class for parsed filters; evaluates against attribute maps."""

    def matches(self, entry: Dict[str, Any]) -> bool:
        raise NotImplementedError

    def referenced_attributes(self) -> List[str]:
        """Attribute names the filter tests (used to extract identities)."""
        raise NotImplementedError


class EqualityFilter(LdapFilter):
    def __init__(self, attribute: str, value: str):
        self.attribute = attribute.lower()
        self.value = value

    def matches(self, entry: Dict[str, Any]) -> bool:
        actual = _get_attribute(entry, self.attribute)
        if actual is None:
            return False
        if isinstance(actual, (list, tuple, set)):
            return any(str(item) == self.value for item in actual)
        return str(actual) == self.value

    def referenced_attributes(self) -> List[str]:
        return [self.attribute]

    def __repr__(self) -> str:
        return f"({self.attribute}={self.value})"


class PresenceFilter(LdapFilter):
    def __init__(self, attribute: str):
        self.attribute = attribute.lower()

    def matches(self, entry: Dict[str, Any]) -> bool:
        return _get_attribute(entry, self.attribute) is not None

    def referenced_attributes(self) -> List[str]:
        return [self.attribute]

    def __repr__(self) -> str:
        return f"({self.attribute}=*)"


class SubstringFilter(LdapFilter):
    def __init__(self, attribute: str, pattern: str):
        self.attribute = attribute.lower()
        self.pattern = pattern
        self.parts = pattern.split("*")

    def matches(self, entry: Dict[str, Any]) -> bool:
        actual = _get_attribute(entry, self.attribute)
        if actual is None:
            return False
        text = str(actual)
        position = 0
        parts = self.parts
        if parts[0] and not text.startswith(parts[0]):
            return False
        if parts[-1] and not text.endswith(parts[-1]):
            return False
        for part in parts:
            if not part:
                continue
            index = text.find(part, position)
            if index < 0:
                return False
            position = index + len(part)
        return True

    def referenced_attributes(self) -> List[str]:
        return [self.attribute]

    def __repr__(self) -> str:
        return f"({self.attribute}={self.pattern})"


class AndFilter(LdapFilter):
    def __init__(self, children: List[LdapFilter]):
        self.children = children

    def matches(self, entry: Dict[str, Any]) -> bool:
        return all(child.matches(entry) for child in self.children)

    def referenced_attributes(self) -> List[str]:
        return [attr for child in self.children
                for attr in child.referenced_attributes()]

    def __repr__(self) -> str:
        return "(&" + "".join(repr(child) for child in self.children) + ")"


class OrFilter(LdapFilter):
    def __init__(self, children: List[LdapFilter]):
        self.children = children

    def matches(self, entry: Dict[str, Any]) -> bool:
        return any(child.matches(entry) for child in self.children)

    def referenced_attributes(self) -> List[str]:
        return [attr for child in self.children
                for attr in child.referenced_attributes()]

    def __repr__(self) -> str:
        return "(|" + "".join(repr(child) for child in self.children) + ")"


class NotFilter(LdapFilter):
    def __init__(self, child: LdapFilter):
        self.child = child

    def matches(self, entry: Dict[str, Any]) -> bool:
        return not self.child.matches(entry)

    def referenced_attributes(self) -> List[str]:
        return self.child.referenced_attributes()

    def __repr__(self) -> str:
        return f"(!{self.child!r})"


def _get_attribute(entry: Dict[str, Any], attribute: str) -> Optional[Any]:
    """Case-insensitive attribute lookup, treating None values as absent."""
    for key, value in entry.items():
        if key.lower() == attribute:
            return value if value is not None else None
    return None


class PlannedPredicate:
    """One indexable conjunct with its selectivity estimate."""

    __slots__ = ("attribute", "value", "estimate", "presence")

    def __init__(self, attribute: str, value: Optional[str], estimate: int):
        self.attribute = attribute
        self.value = value
        self.estimate = estimate
        self.presence = value is None

    def __repr__(self) -> str:
        assertion = "*" if self.presence else self.value
        return f"<predicate ({self.attribute}={assertion}) ~{self.estimate}>"


class FilterPlan:
    """The index-access strategy for one parsed filter.

    ``predicates`` holds the indexable conjuncts ordered most-selective
    first (smallest estimated postings count; ties broken by attribute then
    value so the order is deterministic).  ``candidates()`` intersects their
    postings starting from the smallest list, so the working set only ever
    shrinks.  A plan with no indexable conjunct (``indexed`` False) means the
    caller must scan; either way the full filter is still re-evaluated on
    every fetched entry, so the index only ever prunes, never decides.
    """

    def __init__(self, parsed: LdapFilter,
                 predicates: List[PlannedPredicate], indexes):
        self.filter = parsed
        self.predicates = predicates
        self._indexes = indexes

    @property
    def indexed(self) -> bool:
        return bool(self.predicates)

    def candidates(self) -> Optional[frozenset]:
        """Entry ids surviving every indexed conjunct; None when unindexed."""
        if not self.predicates:
            return None
        result: Optional[set] = None
        for predicate in self.predicates:
            if predicate.presence:
                postings = self._indexes.presence_postings(predicate.attribute)
            else:
                postings = self._indexes.equality_postings(
                    predicate.attribute, predicate.value)
            if postings is None:
                continue
            if result is None:
                result = set(postings)
            else:
                result &= postings
            if not result:
                break
        return None if result is None else frozenset(result)

    def __repr__(self) -> str:
        return f"<FilterPlan indexed={self.indexed} {self.predicates}>"


class FilterPlanner:
    """Orders conjunctive predicates by estimated selectivity.

    Only top-level AND conjuncts (and the filter itself when it is a simple
    equality or presence test) are indexable: anything under OR/NOT or a
    substring match cannot safely prune candidates, so it is left to the
    per-entry re-evaluation.
    """

    def __init__(self, indexes):
        self._indexes = indexes

    def plan(self, parsed: LdapFilter) -> FilterPlan:
        predicates = [predicate
                      for conjunct in self._conjuncts(parsed)
                      for predicate in [self._plan_conjunct(conjunct)]
                      if predicate is not None]
        predicates.sort(key=lambda p: (p.estimate, p.attribute, p.value or ""))
        return FilterPlan(parsed, predicates, self._indexes)

    @staticmethod
    def _conjuncts(parsed: LdapFilter) -> List[LdapFilter]:
        """Flatten top-level (possibly nested) AND into its conjuncts."""
        if not isinstance(parsed, AndFilter):
            return [parsed]
        flat: List[LdapFilter] = []
        stack = list(parsed.children)
        while stack:
            child = stack.pop(0)
            if isinstance(child, AndFilter):
                stack = list(child.children) + stack
            else:
                flat.append(child)
        return flat

    def _plan_conjunct(self, conjunct: LdapFilter
                       ) -> Optional[PlannedPredicate]:
        if isinstance(conjunct, EqualityFilter):
            estimate = self._indexes.estimate_equality(
                conjunct.attribute, conjunct.value)
            if estimate is None:
                return None
            return PlannedPredicate(conjunct.attribute, conjunct.value,
                                    estimate)
        if isinstance(conjunct, PresenceFilter):
            estimate = self._indexes.estimate_presence(conjunct.attribute)
            if estimate is None:
                return None
            return PlannedPredicate(conjunct.attribute, None, estimate)
        return None


def parse_filter(text: str) -> LdapFilter:
    """Parse an RFC 4515 filter string into an :class:`LdapFilter` tree."""
    if not text or not text.strip():
        raise FilterError("empty filter")
    text = text.strip()
    parsed, consumed = _parse_component(text, 0)
    if consumed != len(text):
        raise FilterError(f"trailing characters after filter: {text[consumed:]!r}")
    return parsed


def _parse_component(text: str, start: int) -> Tuple[LdapFilter, int]:
    if start >= len(text) or text[start] != "(":
        raise FilterError(f"expected '(' at position {start} in {text!r}")
    index = start + 1
    if index >= len(text):
        raise FilterError("unterminated filter")
    operator = text[index]
    if operator in "&|":
        index += 1
        children: List[LdapFilter] = []
        while index < len(text) and text[index] == "(":
            child, index = _parse_component(text, index)
            children.append(child)
        if index >= len(text) or text[index] != ")":
            raise FilterError("unterminated composite filter")
        if not children:
            raise FilterError("composite filter with no children")
        combinator = AndFilter if operator == "&" else OrFilter
        return combinator(children), index + 1
    if operator == "!":
        child, index = _parse_component(text, index + 1)
        if index >= len(text) or text[index] != ")":
            raise FilterError("unterminated NOT filter")
        return NotFilter(child), index + 1
    # Simple item: attribute=value up to the matching ')'
    end = text.find(")", index)
    if end < 0:
        raise FilterError("unterminated simple filter")
    item = text[index:end]
    if "=" not in item:
        raise FilterError(f"simple filter without '=': {item!r}")
    attribute, _, value = item.partition("=")
    attribute = attribute.strip()
    if not attribute:
        raise FilterError(f"missing attribute in {item!r}")
    if value == "*":
        return PresenceFilter(attribute), end + 1
    if "*" in value:
        return SubstringFilter(attribute, value), end + 1
    return EqualityFilter(attribute, value), end + 1
