"""LDAP request/response objects and result codes.

Only the operations the UDC front door actually needs are modelled: Search
(index-based single-subscriber reads), Modify (dynamic state updates and
provisioning changes), Add (provisioning a subscription) and Delete
(terminating one).  Result codes follow RFC 4511 numbering so logs read like
real directory traces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.ldap.dn import DistinguishedName


class ResultCode(enum.Enum):
    """RFC 4511 result codes used by the reproduction."""

    SUCCESS = 0
    OPERATIONS_ERROR = 1
    TIME_LIMIT_EXCEEDED = 3
    NO_SUCH_OBJECT = 32
    BUSY = 51
    UNAVAILABLE = 52
    UNWILLING_TO_PERFORM = 53
    ENTRY_ALREADY_EXISTS = 68
    OTHER = 80
    #: Private-extension range (RFC 4511 reserves 118+ for APIs): the write
    #: reached a copy deposed by a newer promotion epoch; retry re-locates.
    FENCED = 118

    @property
    def is_success(self) -> bool:
        return self is ResultCode.SUCCESS


class SearchScope(enum.Enum):
    BASE = "base"
    ONE_LEVEL = "one"
    SUBTREE = "sub"


@dataclass(frozen=True)
class LdapRequest:
    """Base class of all LDAP requests."""

    dn: DistinguishedName

    @property
    def is_write(self) -> bool:
        return False

    @property
    def operation_name(self) -> str:
        return type(self).__name__.replace("Request", "").lower()


@dataclass(frozen=True)
class SearchRequest(LdapRequest):
    """An index-based read of subscriber data.

    ``page_size``/``cursor`` opt into keyset-paged result streaming: the
    response carries at most ``page_size`` entries plus a ``next_cursor``
    (``{sort_key}|{entry_id}``) that resumes the scan strictly after the
    last returned entry.  ``cursor=None`` starts from the beginning.
    """

    scope: SearchScope = SearchScope.BASE
    filter_text: str = "(objectClass=*)"
    attributes: Tuple[str, ...] = ()
    page_size: Optional[int] = None
    cursor: Optional[str] = None

    @property
    def is_write(self) -> bool:
        return False

    @property
    def paged(self) -> bool:
        return self.page_size is not None

    def next_page(self, cursor: str) -> "SearchRequest":
        """The request fetching the page after ``cursor``."""
        return SearchRequest(dn=self.dn, scope=self.scope,
                             filter_text=self.filter_text,
                             attributes=self.attributes,
                             page_size=self.page_size, cursor=cursor)


@dataclass(frozen=True)
class ModifyRequest(LdapRequest):
    """Attribute changes on an existing entry (None values delete attributes)."""

    changes: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_write(self) -> bool:
        return True


@dataclass(frozen=True)
class AddRequest(LdapRequest):
    """Creation of a new subscriber entry (provisioning)."""

    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_write(self) -> bool:
        return True


@dataclass(frozen=True)
class DeleteRequest(LdapRequest):
    """Removal of a subscriber entry (provisioning)."""

    @property
    def is_write(self) -> bool:
        return True


@dataclass
class LdapResponse:
    """Outcome of one LDAP request."""

    result_code: ResultCode
    request: Optional[LdapRequest] = None
    entries: List[Dict[str, Any]] = field(default_factory=list)
    diagnostic_message: str = ""
    latency: float = 0.0
    served_from: str = ""
    #: Retries the batch pipeline's RetryStage spent on the request
    #: (0 = answered on the first attempt; always 0 on the sequential path).
    attempts: int = 0
    #: Keyset cursor resuming a paged search after the last entry of this
    #: page (``{sort_key}|{entry_id}``); None once the result set is drained.
    next_cursor: Optional[str] = None
    #: True while a paged search may have further matching entries.
    has_more: bool = False

    @property
    def ok(self) -> bool:
        return self.result_code.is_success

    @property
    def entry(self) -> Optional[Dict[str, Any]]:
        """The single entry of an index-based search (None when absent)."""
        return self.entries[0] if self.entries else None

    def __repr__(self) -> str:
        return (f"<LdapResponse {self.result_code.name} "
                f"entries={len(self.entries)} latency={self.latency:.6f}s>")
