"""LDAP front door of the UDR (the 3GPP Ud reference point).

The UDC specifications mandate an LDAP-based interface for reading and
writing subscriber data.  The reproduction implements the pieces of LDAP the
paper's analysis depends on:

* distinguished names and search filters (:mod:`repro.ldap.dn`,
  :mod:`repro.ldap.filters`),
* the subscriber schema and the mapping between LDAP attributes and
  subscriber identities (:mod:`repro.ldap.schema`),
* request/response objects with standard result codes
  (:mod:`repro.ldap.operations`),
* the stateless LDAP server process with its throughput capacity model
  (:mod:`repro.ldap.server`) -- the paper sizes a server at one million
  indexed single-subscriber read/write operations per second.
"""

from repro.ldap.dn import DistinguishedName
from repro.ldap.filters import (
    FilterError,
    FilterPlan,
    FilterPlanner,
    LdapFilter,
    parse_filter,
)
from repro.ldap.schema import SubscriberSchema
from repro.ldap.operations import (
    AddRequest,
    DeleteRequest,
    LdapRequest,
    LdapResponse,
    ModifyRequest,
    ResultCode,
    SearchRequest,
    SearchScope,
)
from repro.ldap.server import LdapServer, LdapServerPool

__all__ = [
    "AddRequest",
    "DeleteRequest",
    "DistinguishedName",
    "FilterError",
    "FilterPlan",
    "FilterPlanner",
    "LdapFilter",
    "LdapRequest",
    "LdapResponse",
    "LdapServer",
    "LdapServerPool",
    "ModifyRequest",
    "ResultCode",
    "SearchRequest",
    "SearchScope",
    "SubscriberSchema",
    "parse_filter",
]
