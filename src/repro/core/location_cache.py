"""Per-PoA read-through cache in front of the data-location stage.

The paper's data-location stage resolves every request's identity to the
storage element holding the subscription (O(log N) over the provisioned
maps).  On the hot path most requests resolve identities that were resolved
moments earlier, so each Point of Access keeps a small read-through cache of
``(identity type, value) -> storage element`` in front of its locator: a hit
is a single O(1) probe, a miss falls through to the locator and the answer is
remembered.

Caching a location is only safe while the location cannot silently change,
so the cache is explicitly invalidated by the lifecycle layer:

* on **fail-over** every entry pointing at the failed element is dropped;
* on **placement changes** (subscriber delete / relocation) the affected
  identities are dropped from every PoA's cache;
* on **locator sync** (a scaled-out PoA copying its maps) the PoA's cache is
  cleared and bypassed until the maps are in place.

``UDRConfig.location_cache_enabled`` turns the fast path off entirely and
``location_cache_capacity`` bounds each PoA's cache (LRU eviction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple


@dataclass
class LocationCacheStats:
    """Counters for one PoA's location cache."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    invalidations: int = 0

    def hit_ratio(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class PoALocationCache:
    """LRU map of ``(identity type, value) -> element name`` for one PoA."""

    def __init__(self, name: str, capacity: int = 0):
        if capacity < 0:
            raise ValueError("cache capacity cannot be negative")
        self.name = name
        self.capacity = capacity  # 0 = unbounded
        self.stats = LocationCacheStats()
        self._entries: Dict[Tuple[str, str], str] = {}

    # -- fast path -----------------------------------------------------------------

    def get(self, identity_type: str, value: str) -> Optional[str]:
        """The cached element name, or ``None`` on a miss."""
        self.stats.lookups += 1
        key = (identity_type, value)
        location = self._entries.get(key)
        if location is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if self.capacity:
            # Move to the back of the (insertion-ordered) dict: LRU refresh.
            del self._entries[key]
            self._entries[key] = location
        return location

    def store(self, identity_type: str, value: str, location: str) -> None:
        key = (identity_type, value)
        if key in self._entries:
            del self._entries[key]
        elif self.capacity and len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
            self.stats.evictions += 1
        self._entries[key] = location
        self.stats.stores += 1

    # -- invalidation --------------------------------------------------------------

    def invalidate_identity(self, identity_type: str, value: str) -> None:
        if self._entries.pop((identity_type, value), None) is not None:
            self.stats.invalidations += 1

    def invalidate_identities(self, identities: Mapping[str, str]) -> None:
        for identity_type, value in identities.items():
            self.invalidate_identity(identity_type, value)

    def invalidate_element(self, element_name: str) -> int:
        """Drop every entry pointing at ``element_name`` (fail-over)."""
        stale = [key for key, location in self._entries.items()
                 if location == element_name]
        for key in stale:
            del self._entries[key]
        self.stats.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        self.stats.invalidations += len(self._entries)
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        return (f"<PoALocationCache {self.name!r} entries={len(self)} "
                f"hit_ratio={self.stats.hit_ratio():.2f}>")


class LocationCacheGroup:
    """All per-PoA caches of one deployment, with fleet-wide invalidation."""

    def __init__(self, capacity: int = 0):
        self.capacity = capacity
        self._caches: Dict[str, PoALocationCache] = {}

    def for_poa(self, poa) -> PoALocationCache:
        """The cache serving ``poa`` (created on first use)."""
        cache = self._caches.get(poa.name)
        if cache is None:
            cache = PoALocationCache(poa.name, capacity=self.capacity)
            self._caches[poa.name] = cache
        return cache

    def cache(self, poa_name: str) -> Optional[PoALocationCache]:
        return self._caches.get(poa_name)

    @property
    def caches(self) -> Dict[str, PoALocationCache]:
        return dict(self._caches)

    def invalidate_element(self, element_name: str) -> int:
        """Fail-over invalidation across every PoA; returns entries dropped."""
        return sum(cache.invalidate_element(element_name)
                   for cache in self._caches.values())

    def invalidate_identities(self, identities: Mapping[str, str]) -> None:
        """Placement-change invalidation (delete / relocation) everywhere."""
        for cache in self._caches.values():
            cache.invalidate_identities(identities)

    def clear_all(self) -> None:
        for cache in self._caches.values():
            cache.clear()

    def __len__(self) -> int:
        return len(self._caches)

    def __repr__(self) -> str:
        return f"<LocationCacheGroup caches={len(self._caches)}>"
