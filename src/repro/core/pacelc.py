"""PACELC classification of a UDR configuration (experiment E12).

PACELC (the paper's reference [12], Abadi 2012): "on a Partition be either
Available or Consistent, Else favour either Latency or Consistency".  The
paper's section 3.6 concludes that the described UDR is **PA/EL for
transactions coming from application front-ends but PC/EC for transactions
coming from PS instances**: front-end traffic is read-mostly and may be
served (possibly stale) from local slave copies even during a partition,
while provisioning writes must reach the single master and never read slaves.

The classifier derives those verdicts from the configuration knobs, so
changing a knob (e.g. enabling multi-master) changes the classification the
same way section 5 predicts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import (
    ClientType,
    PartitionPolicy,
    ReplicationMode,
    UDRConfig,
)


@dataclass(frozen=True)
class PacelcClassification:
    """The four-letter verdict for one client class."""

    client: ClientType
    on_partition: str      # "A" or "C"
    else_case: str         # "L" or "C"
    rationale_partition: str = ""
    rationale_else: str = ""

    @property
    def label(self) -> str:
        return f"P{self.on_partition}/E{self.else_case}"

    def __str__(self) -> str:
        return f"{self.client.value}: {self.label}"


#: Typical share of reads in application front-end traffic (the paper argues
#: FE transactions are "composed of mostly reads").
FE_READ_SHARE = 0.85
#: Provisioning transactions are write-dominated.
PS_READ_SHARE = 0.25


def classify(config: UDRConfig, client: ClientType) -> PacelcClassification:
    """Classify one client class under the given configuration."""
    read_share = FE_READ_SHARE if client is ClientType.APPLICATION_FE \
        else PS_READ_SHARE
    reads_from_slave = config.reads_from_slave(client)
    multi_master = config.partition_policy is PartitionPolicy.PREFER_AVAILABILITY

    # P: what happens to this client's traffic during a partition?
    # Writes survive only with multi-master; reads survive if a local copy may
    # serve them.  A read-mostly client with slave reads enabled therefore
    # still sees most of its transactions succeed -> effectively Available.
    if multi_master:
        on_partition = "A"
        rationale_partition = ("multi-master accepts writes on any reachable "
                               "copy during the partition")
    elif reads_from_slave and read_share >= 0.75:
        on_partition = "A"
        rationale_partition = ("read-mostly traffic keeps being served from "
                               "local copies; only the rare writes fail")
    else:
        on_partition = "C"
        rationale_partition = ("writes (and reads restricted to the master) "
                               "fail when the master is unreachable")

    # ELC: without a partition, does the design pay latency or consistency?
    synchronous = config.replication_mode in (ReplicationMode.DUAL_IN_SEQUENCE,
                                              ReplicationMode.QUORUM)
    if synchronous and not reads_from_slave:
        else_case = "C"
        rationale_else = ("synchronous replication and master-only reads pay "
                          "latency for consistency")
    elif reads_from_slave:
        else_case = "L"
        rationale_else = ("asynchronously replicated slave copies serve local, "
                          "possibly stale reads")
    elif config.replication_mode is ReplicationMode.ASYNCHRONOUS:
        # Master-only reads over async replication: reads are consistent, and
        # the commit path does not wait for replicas.  The paper calls the PS
        # side EC because correctness, not latency, drives its choices.
        else_case = "C"
        rationale_else = ("master-only reads give consistent results; the "
                          "client accepts the latency of reaching the master")
    else:
        else_case = "C"
        rationale_else = "synchronous replication favours consistency"

    return PacelcClassification(
        client=client,
        on_partition=on_partition,
        else_case=else_case,
        rationale_partition=rationale_partition,
        rationale_else=rationale_else,
    )


def classify_both(config: UDRConfig):
    """Classification of both client classes (the paper's section 3.6 claim)."""
    return {client: classify(config, client)
            for client in (ClientType.APPLICATION_FE, ClientType.PROVISIONING)}
