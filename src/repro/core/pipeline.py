"""Pipeline layer: one LDAP request as a sequence of composable stages.

``execute()`` used to be one monolithic generator; it is now an
:class:`OperationPipeline` walking a fixed sequence of stage objects, each
owning one of the hops the paper describes:

* :class:`AdmissionStage` -- reach the closest Point of Access;
* :class:`LdapPlanStage` -- LDAP server time and request translation;
* :class:`LocateStage` -- resolve the data location, with the per-PoA
  read-through cache fast path (:mod:`repro.core.location_cache`);
* :class:`ReadPath` / :class:`WritePath` -- the intra-SE transaction against
  the chosen copy (master, slave when the client's policy allows it, or a
  fallback master under multi-master);
* :class:`ReplicateStage` -- the synchronous replication modes' commit cost;
* :class:`RespondStage` -- the answer back to the client (lost responses are
  counted in the ``response_lost`` metric).

Stages share a per-request :class:`OperationContext` and signal failures by
raising :class:`OperationFailure`, which the pipeline maps to an LDAP result
code -- never an exception to the caller, exactly as a directory server
would answer.  New scenarios (batched provisioning, priority classes, retry
policies) plug in as additional stages instead of more branches.

Metric recording is batched: stages record into a
:class:`~repro.metrics.collector.MetricsBatch` that is flushed every
``UDRConfig.metrics_batch_size`` completed requests (default 1, i.e. at the
end of each request).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.balancer import PointOfAccess, closest_point_of_access
from repro.directory.errors import LocatorSyncInProgress, UnknownIdentity
from repro.ldap.operations import LdapRequest, LdapResponse, ResultCode
from repro.ldap.schema import SubscriberSchema
from repro.ldap.server import OperationPlan, PlanKind
from repro.metrics.collector import MetricsBatch, MetricsRegistry
from repro.net.errors import NetworkError
from repro.net.topology import Site
from repro.replication.errors import MasterUnreachable, NotEnoughReplicas
from repro.replication.replica_set import ReplicaSet
from repro.storage.errors import RecordNotFound, WriteConflict
from repro.core.config import (
    ClientType,
    LocationMode,
    ReplicationMode,
    UDRConfig,
)
from repro.core.deployment import Deployment, IDENTITY_RECORD_ATTRIBUTE
from repro.core.location_cache import LocationCacheGroup, PoALocationCache


class OperationFailure(Exception):
    """Control-flow exception mapping operational failures to result codes."""

    def __init__(self, code: ResultCode, reason: str, respond: bool = True):
        super().__init__(reason)
        self.code = code
        self.reason = reason
        #: Whether the PoA still sends an answer back to the client (false
        #: when the client could not even reach a PoA).
        self.respond = respond


class OperationContext:
    """Everything one in-flight request's stages share."""

    __slots__ = ("request", "client_type", "client_site", "start", "poa",
                 "plan", "located_element", "entries", "served_from")

    def __init__(self, request: LdapRequest, client_type: ClientType,
                 client_site: Site, start: float):
        self.request = request
        self.client_type = client_type
        self.client_site = client_site
        self.start = start
        self.poa: Optional[PointOfAccess] = None
        self.plan: Optional[OperationPlan] = None
        self.located_element: Optional[str] = None
        self.entries: List[dict] = []
        self.served_from = ""


class PipelineStage:
    """Base class: stages share the deployment handle and the simulation."""

    def __init__(self, pipeline: "OperationPipeline"):
        self.pipeline = pipeline
        self.sim = pipeline.sim
        self.config = pipeline.config
        self.deployment = pipeline.deployment
        self.network = pipeline.deployment.network


class AdmissionStage(PipelineStage):
    """Reach the closest serving Point of Access."""

    def run(self, ctx: OperationContext):
        poa = closest_point_of_access(self.network, ctx.client_site,
                                      self.deployment.points_of_access)
        if poa is None:
            raise OperationFailure(ResultCode.UNAVAILABLE, "no reachable PoA",
                                   respond=False)
        ctx.poa = poa
        try:
            yield from self.network.transfer(ctx.client_site, poa.site)
        except NetworkError:
            raise OperationFailure(ResultCode.UNAVAILABLE,
                                   "client to PoA failed",
                                   respond=False) from None


class LdapPlanStage(PipelineStage):
    """LDAP server processing: request translation and service time."""

    def run(self, ctx: OperationContext):
        server = ctx.poa.select_server()
        plan = server.plan(ctx.request)
        ctx.plan = plan
        yield self.sim.timeout(server.service_time())
        if not plan.ok:
            raise OperationFailure(plan.error, plan.diagnostic)


class LocateStage(PipelineStage):
    """Resolve the data location, serving repeats from the per-PoA cache.

    A syncing locator (scale-out) bypasses and clears the PoA's cache: the
    maps being copied may supersede anything cached before the sync began.
    Synchronous stage -- location is a local map probe, not a network hop.
    """

    def run(self, ctx: OperationContext) -> None:
        plan = ctx.plan
        try:
            ctx.located_element = self._resolve(ctx)
        except LocatorSyncInProgress:
            raise OperationFailure(ResultCode.BUSY,
                                   "locator syncing") from None
        except UnknownIdentity:
            if plan.kind is not PlanKind.CREATE:
                raise OperationFailure(ResultCode.NO_SUCH_OBJECT,
                                       "unknown identity") from None
            ctx.located_element = None

    def _resolve(self, ctx: OperationContext) -> str:
        poa, plan = ctx.poa, ctx.plan
        cache = self.pipeline.cache_for(poa)
        if cache is not None and not poa.locator_ready:
            cache.clear()
            cache = None
        if cache is None:
            return poa.locator.locate(plan.identity_type, plan.identity_value)
        location = cache.get(plan.identity_type, plan.identity_value)
        if location is not None:
            return location
        location = poa.locator.locate(plan.identity_type, plan.identity_value)
        cache.store(plan.identity_type, plan.identity_value, location)
        return location


class ReadPath(PipelineStage):
    """Serve a read from the best reachable copy the client may use."""

    def run(self, ctx: OperationContext):
        plan, poa, client_type = ctx.plan, ctx.poa, ctx.client_type
        replica_set = self.deployment.replica_set_of_element(
            ctx.located_element)
        key = f"sub:{self._imsi_of(plan, replica_set, ctx.located_element)}"
        copy_element = self._choose_read_element(replica_set, poa.site,
                                                 client_type)
        if copy_element is None:
            raise OperationFailure(ResultCode.UNAVAILABLE,
                                   "no reachable copy for read")
        element = self.deployment.elements[copy_element]
        copy = replica_set.copy_on(copy_element)
        if poa.site != element.site:
            try:
                yield from self.network.round_trip(poa.site, element.site)
            except NetworkError:
                raise OperationFailure(ResultCode.UNAVAILABLE,
                                       "copy unreachable") from None
        yield self.sim.timeout(
            element.service_times.transaction_time(reads=1, writes=0))
        transaction = copy.transactions.begin()
        try:
            record = transaction.read(key)
        except RecordNotFound:
            transaction.abort()
            raise OperationFailure(ResultCode.NO_SUCH_OBJECT,
                                   "record not found") from None
        transaction.commit()
        served_from_slave = copy_element != replica_set.master_element_name
        stale, versions_behind = self._staleness(replica_set, copy_element,
                                                 key)
        self.pipeline.batch.record_read(
            client_type.value, served_from_slave=served_from_slave,
            stale=stale, versions_behind=versions_behind)
        entry = dict(record)
        entry["dn"] = str(SubscriberSchema.subscriber_dn(entry.get("imsi", "")))
        if plan.requested_attributes:
            wanted = set(plan.requested_attributes) | {"dn"}
            entry = {name: value for name, value in entry.items()
                     if name in wanted}
        ctx.entries = [entry]
        ctx.served_from = copy_element

    def _imsi_of(self, plan: OperationPlan, replica_set: ReplicaSet,
                 located_element: str) -> str:
        if plan.identity_type == "imsi":
            return plan.identity_value
        # Non-IMSI identities: find the record through the master copy's
        # attribute values (the LDAP server would use the SE's local index).
        attribute = IDENTITY_RECORD_ATTRIBUTE.get(plan.identity_type, "")
        copy = replica_set.copy_on(located_element)
        for key in copy.store.keys():
            record = copy.store.get(key)
            if isinstance(record, dict) and record.get(attribute) == \
                    plan.identity_value:
                return record.get("imsi", plan.identity_value)
        return plan.identity_value

    def _choose_read_element(self, replica_set: ReplicaSet, poa_site: Site,
                             client_type: ClientType) -> Optional[str]:
        reachable = [name for name in replica_set.member_names
                     if replica_set.element(name).available
                     and self.network.reachable(
                         poa_site, replica_set.element(name).site)]
        if not reachable:
            return None
        master = replica_set.master_element_name
        if not self.config.reads_from_slave(client_type):
            return master if master in reachable else None
        # Prefer a copy co-located with the PoA, then the closest one.
        for name in reachable:
            if replica_set.element(name).site == poa_site:
                return name
        return min(reachable,
                   key=lambda name: self.network.mean_one_way_latency(
                       poa_site, replica_set.element(name).site))

    def _staleness(self, replica_set: ReplicaSet, copy_element: str,
                   key: str) -> Tuple[bool, int]:
        master_name = replica_set.master_element_name
        if master_name is None or copy_element == master_name:
            return False, 0
        master_version = replica_set.master_copy.store.latest(key)
        copy_version = replica_set.copy_on(copy_element).store.latest(key)
        if master_version is None:
            return False, 0
        if copy_version is None:
            return True, 1
        behind = master_version.commit_seq - copy_version.commit_seq
        return behind > 0, max(0, behind)


class WritePath(PipelineStage):
    """Run a write plan against the partition's write copy."""

    def run(self, ctx: OperationContext):
        plan, poa, located_element = ctx.plan, ctx.poa, ctx.located_element
        if plan.kind is PlanKind.CREATE and located_element is None:
            located_element = self.deployment.place_subscriber(
                _PlacementView(plan.attributes),
                plan.attributes.get("imsi", ""))
            ctx.located_element = located_element
        replica_set = self.deployment.replica_set_of_element(located_element)
        partition_index = self.deployment.primary_partition_of_element[
            located_element]
        coordinator = self.deployment.coordinators[partition_index]
        reachable = [name for name in replica_set.member_names
                     if replica_set.element(name).available
                     and self.network.reachable(
                         poa.site, replica_set.element(name).site)]
        try:
            target_name = coordinator.choose_write_element(
                reachable, timestamp=self.sim.now)
        except MasterUnreachable as error:
            raise OperationFailure(
                ResultCode.UNAVAILABLE,
                f"master unreachable ({error.reason})") from None
        element = self.deployment.elements[target_name]
        copy = replica_set.copy_on(target_name)
        if poa.site != element.site:
            try:
                yield from self.network.round_trip(poa.site, element.site)
            except NetworkError:
                raise OperationFailure(ResultCode.UNAVAILABLE,
                                       "write copy unreachable") from None
        reads = 1 if plan.kind is PlanKind.UPDATE else 0
        yield self.sim.timeout(element.service_times.transaction_time(
            reads=reads, writes=1,
            synchronous_commit=self.config.synchronous_commit))

        key, record, prior_value = self._apply_write(plan, copy)

        # Synchronous replication modes add their commit-path cost here.
        if record is not None and \
                self.config.replication_mode is not ReplicationMode.ASYNCHRONOUS:
            yield from self.pipeline.replicate.run(partition_index, record)

        if plan.kind is PlanKind.CREATE:
            identities = {itype: plan.attributes.get(attr)
                          for itype, attr in IDENTITY_RECORD_ATTRIBUTE.items()
                          if plan.attributes.get(attr)}
            self.deployment.register_identities(
                identities, located_element,
                all_locators=self.config.location_mode is
                LocationMode.PROVISIONED_MAPS,
                serving_locator=poa.locator)
            self.pipeline.warm_cache(poa, identities, located_element)
        elif plan.kind is PlanKind.DELETE and isinstance(prior_value, dict):
            deleted_identities = {
                itype: prior_value.get(attr)
                for itype, attr in IDENTITY_RECORD_ATTRIBUTE.items()
                if prior_value.get(attr)}
            self.deployment.deregister_identities(deleted_identities)
            # Placement change: the location must not be served from any
            # PoA's cache any more.
            self.pipeline.caches.invalidate_identities(deleted_identities)

        ctx.entries = []
        ctx.served_from = target_name

    def _apply_write(self, plan: OperationPlan, copy):
        """Run the intra-SE transaction for a write plan.

        Returns ``(key, commit_record, prior_value)``; the commit record is
        ``None`` for no-op writes and ``prior_value`` is the record that
        existed before a DELETE (used to deregister its identities).  Raises
        :class:`OperationFailure` on business errors.
        """
        transactions = copy.transactions
        key_imsi = plan.identity_value if plan.identity_type == "imsi" else None
        if plan.kind is PlanKind.CREATE:
            key = f"sub:{plan.attributes['imsi']}"
        else:
            if key_imsi is None:
                key_imsi = self._imsi_by_attribute(copy, plan)
                if key_imsi is None:
                    raise OperationFailure(ResultCode.NO_SUCH_OBJECT,
                                           "record not found")
            key = f"sub:{key_imsi}"
        transaction = transactions.begin()
        prior_value = None
        try:
            if plan.kind is PlanKind.CREATE:
                if transaction.exists(key):
                    transaction.abort()
                    raise OperationFailure(ResultCode.ENTRY_ALREADY_EXISTS,
                                           "entry already exists")
                transaction.write(key, dict(plan.attributes))
            elif plan.kind is PlanKind.UPDATE:
                if not transaction.exists(key):
                    transaction.abort()
                    raise OperationFailure(ResultCode.NO_SUCH_OBJECT,
                                           "record not found")
                transaction.modify(key, plan.changes)
            else:  # DELETE
                prior_value = transaction.read_or_default(key)
                if prior_value is None:
                    transaction.abort()
                    raise OperationFailure(ResultCode.NO_SUCH_OBJECT,
                                           "record not found")
                transaction.delete(key)
        except WriteConflict:
            raise OperationFailure(ResultCode.BUSY,
                                   "write conflict, retry") from None
        record = transaction.commit(timestamp=self.sim.now)
        return key, record, prior_value

    def _imsi_by_attribute(self, copy, plan: OperationPlan) -> Optional[str]:
        attribute = IDENTITY_RECORD_ATTRIBUTE.get(plan.identity_type, "")
        for key in copy.store.keys():
            record = copy.store.get(key)
            if isinstance(record, dict) and \
                    record.get(attribute) == plan.identity_value:
                return record.get("imsi")
        return None


class ReplicateStage(PipelineStage):
    """Synchronous replication cost on the commit path."""

    def run(self, partition_index: int, record):
        try:
            if self.config.replication_mode is ReplicationMode.DUAL_IN_SEQUENCE:
                yield from self.deployment.dual_replicators[partition_index] \
                    .replicate_commit(record)
            elif self.config.replication_mode is ReplicationMode.QUORUM:
                yield from self.deployment.quorum_replicators[partition_index] \
                    .replicate_commit(record)
        except NotEnoughReplicas:
            raise OperationFailure(
                ResultCode.UNAVAILABLE,
                "not enough replicas for the configured durability") from None


class RespondStage(PipelineStage):
    """The answer travels back from the PoA to the client."""

    def run(self, ctx: OperationContext):
        try:
            yield from self.network.transfer(ctx.poa.site, ctx.client_site)
        except NetworkError:
            # The response is lost; the client times out.  The operation's
            # outcome is still decided by what happened at the UDR, but the
            # loss itself must stay observable in experiment reports.
            self.pipeline.batch.increment("response_lost")


class OperationPipeline:
    """The staged operation path of one UDR deployment."""

    def __init__(self, sim, config: UDRConfig, deployment: Deployment,
                 metrics: MetricsRegistry, caches: LocationCacheGroup):
        self.sim = sim
        self.config = config
        self.deployment = deployment
        self.metrics = metrics
        self.caches = caches
        self.batch = MetricsBatch(metrics,
                                  flush_threshold=config.metrics_batch_size)
        self.admission = AdmissionStage(self)
        self.plan_stage = LdapPlanStage(self)
        self.locate = LocateStage(self)
        self.read_path = ReadPath(self)
        self.write_path = WritePath(self)
        self.replicate = ReplicateStage(self)
        self.respond = RespondStage(self)

    # -- cache plumbing ------------------------------------------------------------

    def cache_for(self, poa: PointOfAccess) -> Optional[PoALocationCache]:
        if not self.config.location_cache_enabled:
            return None
        return self.caches.for_poa(poa)

    def warm_cache(self, poa: PointOfAccess, identities: Dict[str, str],
                   element_name: str) -> None:
        """Pre-warm the serving PoA's cache after a CREATE placed data."""
        cache = self.cache_for(poa)
        if cache is None or not poa.locator_ready:
            return
        for identity_type, value in identities.items():
            cache.store(identity_type, value, element_name)

    # -- the operation path --------------------------------------------------------

    def execute(self, request: LdapRequest, client_type: ClientType,
                client_site: Site):
        """Generator: run one LDAP request through the stages.

        Returns an :class:`~repro.ldap.operations.LdapResponse`; never raises
        for operational failures -- they are encoded as result codes, exactly
        as a directory server would answer.
        """
        ctx = OperationContext(request, client_type, client_site,
                               start=self.sim.now)
        try:
            yield from self.admission.run(ctx)
            yield from self.plan_stage.run(ctx)
            self.locate.run(ctx)
            if ctx.plan.kind is PlanKind.READ:
                yield from self.read_path.run(ctx)
            else:
                yield from self.write_path.run(ctx)
        except OperationFailure as failure:
            if failure.respond:
                yield from self.respond.run(ctx)
            return self._finish(ctx, failure.code, reason=failure.reason)
        yield from self.respond.run(ctx)
        return self._finish(ctx, ResultCode.SUCCESS)

    def _finish(self, ctx: OperationContext, code: ResultCode,
                reason: str = "") -> LdapResponse:
        latency = self.sim.now - ctx.start
        response = LdapResponse(result_code=code, request=ctx.request,
                                entries=list(ctx.entries),
                                diagnostic_message=reason,
                                latency=latency, served_from=ctx.served_from)
        client = ctx.client_type.value
        if code.is_success:
            self.batch.record_outcome(client, success=True)
            self.batch.record_latency(client, latency)
        else:
            self.batch.record_outcome(client, success=False,
                                      reason=reason or code.name.lower())
        self.batch.request_done()
        return response

    def flush_metrics(self) -> None:
        """Apply any batched metric records to the registry now."""
        self.batch.flush()

    def __repr__(self) -> str:
        return (f"<OperationPipeline {self.config.name!r} "
                f"caches={len(self.caches)} "
                f"batch_size={self.config.metrics_batch_size}>")


class _PlacementView:
    """Adapts a new entry's attributes to the placement policy interface."""

    def __init__(self, attributes: Dict[str, object]):
        self.key = f"sub:{attributes.get('imsi', '')}"
        self.home_region = attributes.get("homeRegion")
        self.organisation = attributes.get("organisation")
