"""Pipeline layer: one LDAP request as a sequence of composable stages.

``execute()`` used to be one monolithic generator; it is now an
:class:`OperationPipeline` walking a fixed sequence of stage objects, each
owning one of the hops the paper describes:

* :class:`AdmissionStage` -- reach the closest Point of Access;
* :class:`LdapPlanStage` -- LDAP server time and request translation;
* :class:`LocateStage` -- resolve the data location, with the per-PoA
  read-through cache fast path (:mod:`repro.core.location_cache`);
* :class:`ReadPath` / :class:`WritePath` -- the intra-SE transaction against
  the chosen copy (master, slave when the client's policy allows it, or a
  fallback master under multi-master);
* :class:`ReplicateStage` -- the synchronous replication modes' commit cost;
* :class:`RespondStage` -- the answer back to the client (lost responses are
  counted in the ``response_lost`` metric).

Stages share a per-request :class:`OperationContext` and signal failures by
raising :class:`OperationFailure`, which the pipeline maps to an LDAP result
code -- never an exception to the caller, exactly as a directory server
would answer.

On top of the single-request walk, :meth:`OperationPipeline.execute_batch`
carries N requests through the front of the pipeline together:

* :class:`BatchAdmissionStage` -- weighted priority dequeue
  (signalling > provisioning > bulk, FIFO within each class), admission
  waves of at most ``UDRConfig.batch_max_size`` requests, and one shared
  client-to-PoA transfer per client site;
* the LDAP server is consulted once per wave (one service-time charge, one
  translation per request) and :meth:`LocateStage.run_group` resolves each
  distinct identity exactly once -- one location-cache lookup or locator
  probe per identity group;
* the per-request tail (:class:`ReadPath`/:class:`WritePath`) fans back out
  with per-request :class:`OperationContext`\\ s, wrapped by
  :class:`RetryStage` -- bounded retries with backoff ticks on transient
  result codes (``UDRConfig.retry_policy``), re-running data location on
  retry so a fail-over that invalidated the caches is picked up;
* one shared PoA-to-client transfer answers the wave
  (:class:`RespondStage`), and the metric batch is flushed exactly once at
  batch end.

Two extensions ride on the wave machinery:

* :meth:`OperationPipeline.execute_wave` drives one *pre-formed* wave --
  the arrival-driven :class:`~repro.core.dispatcher.BatchDispatcher`'s unit
  of work -- without the fixed linger surcharge an under-filled explicit
  wave pays (the dispatcher really spent the budget waiting in its queue);
* with ``UDRConfig.coalesce_writes`` the fan-out commits all of a wave's
  writes against one partition as a single multi-record intra-SE
  transaction (:class:`_CoalescedGroup`): one begin/commit charge per
  partition per wave, per-record results fanned back out, and a failing
  record rolled back to its savepoint without disturbing its group-mates.

Metric recording is batched: stages record into a
:class:`~repro.metrics.collector.MetricsBatch` that is flushed every
``UDRConfig.metrics_batch_size`` completed requests (default 1, i.e. at the
end of each request); ``execute_batch`` defers everything to one flush.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.balancer import PointOfAccess, closest_point_of_access
from repro.directory.errors import LocatorSyncInProgress, UnknownIdentity
from repro.ldap.operations import LdapRequest, LdapResponse, ResultCode
from repro.ldap.schema import SubscriberSchema
from repro.ldap.server import OperationPlan, PlanKind
from repro.metrics.collector import MetricsBatch, MetricsRegistry
from repro.net.errors import NetworkError
from repro.net.topology import Site
from repro.replication.errors import MasterUnreachable, NotEnoughReplicas
from repro.replication.replica_set import ReplicaSet
from repro.sim import units
from repro.storage.errors import FencedError, RecordNotFound, WriteConflict
from repro.core.config import (
    ClientType,
    LocationMode,
    Priority,
    ReplicationMode,
    RetryPolicy,
    UDRConfig,
)
from repro.core.deployment import Deployment, IDENTITY_RECORD_ATTRIBUTE
from repro.core.location_cache import LocationCacheGroup, PoALocationCache

#: Virtual duration of one ``UDRConfig.batch_linger_ticks`` tick: how long an
#: under-filled admission wave waits for late arrivals before being driven.
BATCH_LINGER_TICK = 1 * units.MILLISECOND


class OperationFailure(Exception):
    """Control-flow exception mapping operational failures to result codes."""

    def __init__(self, code: ResultCode, reason: str, respond: bool = True,
                 retryable: bool = True):
        super().__init__(reason)
        self.code = code
        self.reason = reason
        #: Whether the PoA still sends an answer back to the client (false
        #: when the client could not even reach a PoA).
        self.respond = respond
        #: Whether a retry policy may re-drive the request.  False for
        #: failures raised *after* the intra-SE commit (synchronous
        #: replication shortfall): the write is not idempotent any more, so
        #: a retry would observe its own first attempt and answer a wrong
        #: permanent code.
        self.retryable = retryable


class OperationContext:
    """Everything one in-flight request's stages share."""

    __slots__ = ("request", "client_type", "client_site", "start", "poa",
                 "plan", "located_element", "entries", "served_from",
                 "priority", "attempts", "location_resolved", "deadline",
                 "retry_policy", "next_cursor", "has_more", "epoch")

    def __init__(self, request: LdapRequest, client_type: ClientType,
                 client_site: Site, start: float,
                 priority: Optional[Priority] = None,
                 deadline: Optional[float] = None,
                 retry_policy=None):
        self.request = request
        self.client_type = client_type
        self.client_site = client_site
        self.start = start
        self.poa: Optional[PointOfAccess] = None
        self.plan: Optional[OperationPlan] = None
        self.located_element: Optional[str] = None
        self.entries: List[dict] = []
        self.served_from = ""
        self.priority = priority or Priority.for_client(client_type)
        #: Retries the RetryStage spent on this request (0 = first try).
        self.attempts = 0
        #: Whether data location ran (``located_element is None`` is a valid
        #: outcome for CREATE, so presence cannot stand in for "resolved").
        self.location_resolved = False
        #: Absolute virtual-time deadline of this request (session QoS);
        #: ``None`` -- the legacy default -- never expires.
        self.deadline = deadline
        #: The RetryPolicy governing this request's data path; resolved at
        #: context creation (per-session override, else the config default
        #: on the batched paths) so the RetryStage needs no fallback logic.
        self.retry_policy = retry_policy
        #: Keyset cursor and continuation flag of a paged SEARCH page.
        self.next_cursor: Optional[str] = None
        self.has_more = False
        #: Promotion epoch of the mastership that served a write (0 while
        #: the membership plane has never promoted, or for reads).
        self.epoch = 0

    def expired(self, now: float) -> bool:
        """Whether the request's deadline (if any) has passed."""
        return self.deadline is not None and now >= self.deadline


class PipelineStage:
    """Base class: stages share the deployment handle and the simulation."""

    def __init__(self, pipeline: "OperationPipeline"):
        self.pipeline = pipeline
        self.sim = pipeline.sim
        self.config = pipeline.config
        self.deployment = pipeline.deployment
        self.network = pipeline.deployment.network

    def element_round_trip(self, poa: PointOfAccess, element, reason: str,
                           ledger: Optional["_TransferLedger"] = None):
        """Generator: the PoA-to-storage-element round trip of a data path.

        Skipped for co-located copies; under a batch, the wave's ledger
        lets requests targeting copies at the same site share one bulk
        round trip.  Failed transfers are never recorded in the ledger, so
        every request observes the failure exactly as it would alone.
        """
        if poa.site == element.site:
            return
        if ledger is not None and ledger.covers(poa.site, element.site):
            return
        try:
            yield from self.network.round_trip(poa.site, element.site)
        except NetworkError:
            raise OperationFailure(ResultCode.UNAVAILABLE, reason) from None
        if ledger is not None:
            ledger.record(poa.site, element.site)


class AdmissionStage(PipelineStage):
    """Reach the closest serving Point of Access."""

    def run(self, ctx: OperationContext):
        ctx.poa = yield from self.reach_poa(ctx.client_site)

    def reach_poa(self, client_site: Site) -> "PointOfAccess":
        """Generator: choose the serving PoA and pay the client-side hop.

        Shared by the single-request walk and the batched admission (which
        pays this once per site group); raises
        :class:`OperationFailure` (``respond=False``) when no PoA serves.
        """
        poa = closest_point_of_access(self.network, client_site,
                                      self.deployment.points_of_access)
        if poa is None:
            raise OperationFailure(ResultCode.UNAVAILABLE, "no reachable PoA",
                                   respond=False)
        try:
            yield from self.network.transfer(client_site, poa.site)
        except NetworkError:
            raise OperationFailure(ResultCode.UNAVAILABLE,
                                   "client to PoA failed",
                                   respond=False) from None
        return poa


class LdapPlanStage(PipelineStage):
    """LDAP server processing: request translation and service time."""

    def run(self, ctx: OperationContext):
        if not ctx.poa.available:
            # The PoA was up when the plan stage picked it but went down
            # (site disaster, balancer failure) during the client hop; a
            # retry relocates to a surviving PoA.
            raise OperationFailure(ResultCode.UNAVAILABLE,
                                   f"PoA {ctx.poa.name} failed in flight")
        server = ctx.poa.select_server()
        failure = self.translate(ctx, server)
        yield self.sim.timeout(server.service_time())
        if failure is not None:
            raise failure

    @staticmethod
    def translate(ctx: OperationContext, server) -> Optional[OperationFailure]:
        """Translate one request into its plan; returns the translation
        failure (if any) so batch waves can collect per-request errors
        while charging the server's service time once."""
        plan = server.plan(ctx.request)
        ctx.plan = plan
        if not plan.ok:
            return OperationFailure(plan.error, plan.diagnostic)
        return None

    def run_group(self, poa: PointOfAccess, slots: List["_BatchSlot"]):
        """Generator: one server and one service-time charge for a site
        group; translation is still per request (each may fail
        independently, recorded on its slot)."""
        if not poa.available:
            # Mid-flight PoA loss fails the whole site group retryably
            # (each request relocates) instead of killing the wave.
            for slot in slots:
                slot.failure = OperationFailure(
                    ResultCode.UNAVAILABLE,
                    f"PoA {poa.name} failed in flight")
            return
        server = poa.select_server()
        yield self.sim.timeout(server.service_time())
        for slot in slots:
            failure = self.translate(slot.ctx, server)
            if failure is None:
                slot.runnable = True
            else:
                slot.failure = failure


class LocateStage(PipelineStage):
    """Resolve the data location, serving repeats from the per-PoA cache.

    A syncing locator (scale-out) bypasses and clears the PoA's cache: the
    maps being copied may supersede anything cached before the sync began.
    Synchronous stage -- location is a local map probe, not a network hop.
    """

    def run(self, ctx: OperationContext) -> None:
        plan = ctx.plan
        if plan.kind is PlanKind.SEARCH:
            # Scoped searches resolve their targets through the DIT catalog
            # (or a scan), not the identity-location maps.
            ctx.located_element = None
            ctx.location_resolved = True
            return
        try:
            ctx.located_element = self._resolve(ctx)
        except LocatorSyncInProgress:
            raise OperationFailure(ResultCode.BUSY,
                                   "locator syncing") from None
        except UnknownIdentity:
            if plan.kind is not PlanKind.CREATE:
                raise OperationFailure(ResultCode.NO_SUCH_OBJECT,
                                       "unknown identity") from None
            ctx.located_element = None
        ctx.location_resolved = True

    def run_group(self, slots: List["_BatchSlot"],
                  defer_unknown: bool = True) -> None:
        """Resolve a wave of contexts, one probe per distinct identity.

        Requests addressing the same ``(identity type, value)`` share a
        single location-cache lookup (or locator probe on a miss); failures
        are recorded per slot so one bad identity never fails its
        group-mates.

        ``defer_unknown`` controls identities unknown at wave start: when
        the wave contains placement-changing writes (CREATE/DELETE), an
        unknown identity may be created by an earlier request of the same
        batch, so resolution is deferred to each request's own turn in
        admission order (the RetryStage re-runs locate when unresolved).
        In a wave without such writes the unknown verdict is final and is
        applied immediately, keeping the one-probe-per-identity contract.
        """
        by_identity: Dict[Tuple[str, str], List[_BatchSlot]] = {}
        for slot in slots:
            plan = slot.ctx.plan
            if plan.kind is PlanKind.SEARCH:
                slot.ctx.located_element = None
                slot.ctx.location_resolved = True
                continue
            by_identity.setdefault(
                (plan.identity_type, plan.identity_value), []).append(slot)
        for group in by_identity.values():
            try:
                location = self._resolve(group[0].ctx)
            except LocatorSyncInProgress:
                failure = OperationFailure(ResultCode.BUSY, "locator syncing")
                for slot in group:
                    slot.failure = failure
                continue
            except UnknownIdentity:
                if defer_unknown:
                    continue
                for slot in group:
                    if slot.ctx.plan.kind is PlanKind.CREATE:
                        slot.ctx.located_element = None
                        slot.ctx.location_resolved = True
                    else:
                        slot.failure = OperationFailure(
                            ResultCode.NO_SUCH_OBJECT, "unknown identity")
                continue
            for slot in group:
                slot.ctx.located_element = location
                slot.ctx.location_resolved = True

    def _resolve(self, ctx: OperationContext) -> str:
        poa, plan = ctx.poa, ctx.plan
        cache = self.pipeline.cache_for(poa)
        if cache is not None and not poa.locator_ready:
            cache.clear()
            cache = None
        if cache is None:
            return poa.locator.locate(plan.identity_type, plan.identity_value)
        location = cache.get(plan.identity_type, plan.identity_value)
        if location is not None:
            return location
        location = poa.locator.locate(plan.identity_type, plan.identity_value)
        cache.store(plan.identity_type, plan.identity_value, location)
        return location


class _TransferLedger:
    """PoA-to-element round trips already paid within one admission wave.

    Requests of one wave that target copies at the same site ride a single
    bulk transfer: the first payer charges the round trip, the rest skip it.
    Failed transfers are *not* recorded, so every request against an
    unreachable site observes the failure exactly as it would alone.
    """

    __slots__ = ("_paid",)

    def __init__(self):
        self._paid: set = set()

    def covers(self, source: Site, destination: Site) -> bool:
        return (source, destination) in self._paid

    def record(self, source: Site, destination: Site) -> None:
        self._paid.add((source, destination))


class ReadPath(PipelineStage):
    """Serve a read from the best reachable copy the client may use."""

    def run(self, ctx: OperationContext,
            ledger: Optional[_TransferLedger] = None):
        plan, poa, client_type = ctx.plan, ctx.poa, ctx.client_type
        replica_set = self.deployment.replica_set_of_element(
            ctx.located_element)
        key = f"sub:{self._imsi_of(plan, replica_set, ctx.located_element)}"
        copy_element = self._choose_read_element(replica_set, poa.site,
                                                 client_type)
        if copy_element is None:
            raise OperationFailure(ResultCode.UNAVAILABLE,
                                   "no reachable copy for read")
        element = self.deployment.elements[copy_element]
        copy = replica_set.copy_on(copy_element)
        yield from self.element_round_trip(poa, element, "copy unreachable",
                                           ledger=ledger)
        yield self.sim.timeout(
            element.service_times.transaction_time(reads=1, writes=0))
        transaction = copy.transactions.begin()
        try:
            record = transaction.read(key)
        except RecordNotFound:
            transaction.abort()
            raise OperationFailure(ResultCode.NO_SUCH_OBJECT,
                                   "record not found") from None
        transaction.commit()
        served_from_slave = copy_element != replica_set.master_element_name
        stale, versions_behind = self._staleness(replica_set, copy_element,
                                                 key)
        self.pipeline.batch.record_read(
            client_type.value, served_from_slave=served_from_slave,
            stale=stale, versions_behind=versions_behind)
        entry = dict(record)
        entry["dn"] = str(SubscriberSchema.subscriber_dn(entry.get("imsi", "")))
        if plan.requested_attributes:
            wanted = set(plan.requested_attributes) | {"dn"}
            entry = {name: value for name, value in entry.items()
                     if name in wanted}
        ctx.entries = [entry]
        ctx.served_from = copy_element

    def _imsi_of(self, plan: OperationPlan, replica_set: ReplicaSet,
                 located_element: str) -> str:
        if plan.identity_type == "imsi":
            return plan.identity_value
        # Non-IMSI identities: find the record through the master copy's
        # attribute values (the LDAP server would use the SE's local index).
        attribute = IDENTITY_RECORD_ATTRIBUTE.get(plan.identity_type, "")
        copy = replica_set.copy_on(located_element)
        for key in copy.store.keys():
            record = copy.store.get(key)
            if isinstance(record, dict) and record.get(attribute) == \
                    plan.identity_value:
                return record.get("imsi", plan.identity_value)
        return plan.identity_value

    def _choose_read_element(self, replica_set: ReplicaSet, poa_site: Site,
                             client_type: ClientType) -> Optional[str]:
        reachable = [name for name in replica_set.member_names
                     if replica_set.element(name).available
                     and self.network.reachable(
                         poa_site, replica_set.element(name).site)]
        if not reachable:
            return None
        quarantine = self.pipeline.read_quarantine
        if quarantine:
            # Copies under reconciliation repair are skipped while another
            # live copy can serve.  The partition's own master is never
            # filtered: repairs only touch slave copies, and an element
            # quarantined as the slave of one partition may be the master
            # of another (a fully quarantined set still answers: better a
            # read racing a repair than an outage).
            cleared = [name for name in reachable
                       if name not in quarantine
                       or name == replica_set.master_element_name]
            if cleared and len(cleared) < len(reachable):
                reachable = cleared
                self.pipeline.batch.increment(
                    "reconciliation.reads_steered")
        master = replica_set.master_element_name
        if not self.config.reads_from_slave(client_type) and \
                not self.pipeline.shed_active:
            # Shed mode (sustained dispatcher overload) overrides a
            # master-only read policy: serving from the nearest replica
            # trades freshness for master capacity exactly while the queue
            # needs it.
            return master if master in reachable else None
        # Prefer a copy co-located with the PoA, then the closest one.
        choice = None
        for name in reachable:
            if replica_set.element(name).site == poa_site:
                choice = name
                break
        if choice is None:
            choice = min(reachable,
                         key=lambda name: self.network.mean_one_way_latency(
                             poa_site, replica_set.element(name).site))
        if choice != master and \
                not self.config.reads_from_slave(client_type):
            # Only possible in shed mode: count the reads it diverted.
            self.pipeline.batch.increment("dispatcher.shed.slave_reads")
        return choice

    def _staleness(self, replica_set: ReplicaSet, copy_element: str,
                   key: str) -> Tuple[bool, int]:
        master_name = replica_set.master_element_name
        if master_name is None or copy_element == master_name:
            return False, 0
        master_version = replica_set.master_copy.store.latest(key)
        copy_version = replica_set.copy_on(copy_element).store.latest(key)
        if master_version is None:
            return False, 0
        if copy_version is None:
            return True, 1
        behind = master_version.commit_seq - copy_version.commit_seq
        return behind > 0, max(0, behind)


class SearchPath(PipelineStage):
    """Serve a scoped Search: DIT interval scan, postings, keyset paging.

    The indexed path resolves the scope as one interval range-scan over the
    deployment's :class:`~repro.directory.dit.DirectoryCatalog`, intersects
    the filter planner's most-selective postings first, and only then fetches
    candidate records -- in ``(sort_key, entry_id)`` order, stopping as soon
    as a page is full, so a paged search touches storage proportionally to
    the page, not the result set.  With ``search_index_enabled`` off (or no
    catalog) it degrades to a full scan over every partition, which is the
    e20 baseline; either way the parsed filter is re-evaluated on every
    fetched entry, so the index only prunes, never decides, and both paths
    return bit-identical result sets.
    """

    def run(self, ctx: OperationContext,
            ledger: Optional[_TransferLedger] = None):
        from repro.ldap.filters import FilterPlanner, parse_filter
        plan = ctx.plan
        parsed = parse_filter(plan.filter_text)
        after = self._parse_cursor(plan.cursor)
        catalog = self.deployment.catalog
        if self.config.search_index_enabled and catalog is not None:
            self.pipeline.batch.increment("ldap.search.indexed")
            planner = FilterPlanner(catalog.attributes)
            yield from self._run_indexed(ctx, parsed, planner.plan(parsed),
                                         after, ledger)
        else:
            self.pipeline.batch.increment("ldap.search.scan")
            yield from self._run_scan(ctx, parsed, after, ledger)
        if plan.page_size is not None:
            self.pipeline.batch.increment("ldap.search.pages")

    # -- indexed ---------------------------------------------------------------

    def _run_indexed(self, ctx: OperationContext, parsed, filter_plan,
                     after: Optional[Tuple[str, str]],
                     ledger: Optional[_TransferLedger]):
        plan, poa = ctx.plan, ctx.poa
        catalog = self.deployment.catalog
        scoped = catalog.scope_candidates(plan.base_dn, plan.scope)
        if scoped is None:
            raise OperationFailure(ResultCode.NO_SUCH_OBJECT,
                                   f"search base {plan.base_dn} does not "
                                   f"exist")
        scope_ids, comparisons = scoped
        postings = filter_plan.candidates()
        if postings is not None:
            candidates = [entry_id for entry_id in scope_ids
                          if entry_id in postings]
        else:
            candidates = list(scope_ids)
        comparisons += len(candidates)
        ordered = sorted((catalog.sort_key_of(entry_id), entry_id)
                         for entry_id in candidates)
        if after is not None:
            ordered = [pair for pair in ordered if pair > after]
        # The interval scan, intersection and sort are LDAP-server CPU work.
        yield self.sim.timeout(comparisons * poa.ldap_pool.service_time())
        search_ledger = ledger if ledger is not None else _TransferLedger()
        page_size = plan.page_size
        matches: List[Tuple[str, str, dict]] = []
        consumed = 0
        for sort_key, entry_id in ordered:
            consumed += 1
            partition = catalog.partition_of(entry_id)
            if partition is None:
                continue
            replica_set = self.deployment.replica_sets[partition]
            entry = yield from self._fetch(ctx, replica_set, entry_id,
                                           search_ledger)
            if entry is None or not parsed.matches(entry):
                continue
            matches.append((sort_key, entry_id, entry))
            if page_size is not None and len(matches) >= page_size:
                break
        self._emit(ctx, matches,
                   exhausted=consumed >= len(ordered))

    def _fetch(self, ctx: OperationContext, replica_set: ReplicaSet,
               entry_id: str, ledger: _TransferLedger):
        """Generator: read one candidate record from its best copy.

        Returns the enriched LDAP entry, or ``None`` when the record vanished
        or its partition has no reachable copy (the candidate is skipped, the
        scan itself survives partial unavailability).
        """
        copy_element = self.pipeline.read_path._choose_read_element(
            replica_set, ctx.poa.site, ctx.client_type)
        if copy_element is None:
            return None
        element = self.deployment.elements[copy_element]
        copy = replica_set.copy_on(copy_element)
        try:
            yield from self.element_round_trip(ctx.poa, element,
                                               "copy unreachable",
                                               ledger=ledger)
        except OperationFailure:
            return None
        yield self.sim.timeout(
            element.service_times.operation_time(reads=1, writes=0))
        record = copy.store.get(entry_id)
        if not isinstance(record, dict):
            return None
        return SubscriberSchema.ldap_entry(record)

    # -- scan fallback ------------------------------------------------------------

    def _run_scan(self, ctx: OperationContext, parsed,
                  after: Optional[Tuple[str, str]],
                  ledger: Optional[_TransferLedger]):
        plan, poa = ctx.plan, ctx.poa
        base_dn, scope = plan.base_dn, plan.scope
        eval_time = poa.ldap_pool.service_time()
        search_ledger = ledger if ledger is not None else _TransferLedger()
        base_exists = False
        matches: List[Tuple[str, str, dict]] = []
        for replica_set in self.deployment.replica_sets.values():
            copy_element = self.pipeline.read_path._choose_read_element(
                replica_set, poa.site, ctx.client_type)
            if copy_element is None:
                raise OperationFailure(ResultCode.UNAVAILABLE,
                                       "no reachable copy for search scan")
            element = self.deployment.elements[copy_element]
            copy = replica_set.copy_on(copy_element)
            yield from self.element_round_trip(poa, element,
                                               "copy unreachable",
                                               ledger=search_ledger)
            keys = list(copy.store.keys())
            read_time = element.service_times.operation_time(reads=1,
                                                             writes=0)
            # One aggregate charge per partition: every record is read and
            # evaluated against the filter.
            yield self.sim.timeout(len(keys) * (read_time + eval_time))
            for key in keys:
                view = SubscriberSchema.catalog_view(key, copy.store.get(key))
                if view is None:
                    continue
                dn, entry = view
                if dn.is_descendant_of(base_dn):
                    base_exists = True
                if not _scope_matches(dn, base_dn, scope):
                    continue
                if parsed.matches(entry):
                    matches.append((dn.leaf_value, key, entry))
        if not base_exists:
            raise OperationFailure(ResultCode.NO_SUCH_OBJECT,
                                   f"search base {base_dn} does not exist")
        matches.sort(key=lambda match: (match[0], match[1]))
        if after is not None:
            matches = [m for m in matches if (m[0], m[1]) > after]
        page_size = plan.page_size
        if page_size is not None and len(matches) > page_size:
            self._emit(ctx, matches[:page_size], exhausted=False)
        else:
            self._emit(ctx, matches, exhausted=True)

    # -- shared tail --------------------------------------------------------------

    @staticmethod
    def _parse_cursor(cursor: Optional[str]) -> Optional[Tuple[str, str]]:
        if cursor is None:
            return None
        sort_key, separator, entry_id = cursor.rpartition("|")
        if not separator or not entry_id:
            raise OperationFailure(ResultCode.UNWILLING_TO_PERFORM,
                                   f"malformed page cursor {cursor!r}",
                                   retryable=False)
        return sort_key, entry_id

    def _emit(self, ctx: OperationContext,
              matches: List[Tuple[str, str, dict]], exhausted: bool) -> None:
        plan = ctx.plan
        entries = []
        for _sort_key, _entry_id, entry in matches:
            if plan.requested_attributes:
                wanted = set(plan.requested_attributes) | {"dn"}
                entry = {name: value for name, value in entry.items()
                         if name in wanted}
            entries.append(entry)
        ctx.entries = entries
        ctx.served_from = "dit-index" if (
            self.config.search_index_enabled
            and self.deployment.catalog is not None) else "full-scan"
        if plan.page_size is not None and not exhausted:
            last = matches[-1]
            ctx.next_cursor = f"{last[0]}|{last[1]}"
            ctx.has_more = True
        else:
            ctx.next_cursor = None
            ctx.has_more = False
        self.pipeline.batch.record_read(
            ctx.client_type.value, served_from_slave=False, stale=False,
            versions_behind=0)


def _scope_matches(dn, base_dn, scope) -> bool:
    """Whether ``dn`` falls inside an LDAP search scope (brute-force form)."""
    name = getattr(scope, "name", str(scope))
    if name == "BASE":
        return dn == base_dn
    if name == "ONE_LEVEL":
        return len(dn) == len(base_dn) + 1 and dn.is_descendant_of(base_dn)
    return dn.is_descendant_of(base_dn)


class WritePath(PipelineStage):
    """Run a write plan against the partition's write copy."""

    def run(self, ctx: OperationContext,
            ledger: Optional[_TransferLedger] = None):
        plan, poa, located_element = ctx.plan, ctx.poa, ctx.located_element
        if plan.kind is PlanKind.CREATE and located_element is None:
            located_element = self.deployment.place_subscriber(
                _PlacementView(plan.attributes),
                plan.attributes.get("imsi", ""))
            ctx.located_element = located_element
        replica_set = self.deployment.replica_set_of_element(located_element)
        partition_index = self.deployment.primary_partition_of_element[
            located_element]
        coordinator = self.deployment.coordinators[partition_index]
        reachable = [name for name in replica_set.member_names
                     if replica_set.element(name).available
                     and self.network.reachable(
                         poa.site, replica_set.element(name).site)]
        try:
            target_name = coordinator.choose_write_element(
                reachable, timestamp=self.sim.now)
        except MasterUnreachable as error:
            raise OperationFailure(
                ResultCode.UNAVAILABLE,
                f"master unreachable ({error.reason})") from None
        element = self.deployment.elements[target_name]
        copy = replica_set.copy_on(target_name)
        yield from self.element_round_trip(poa, element,
                                           "write copy unreachable",
                                           ledger=ledger)
        reads = 1 if plan.kind is PlanKind.UPDATE else 0
        yield self.sim.timeout(element.service_times.transaction_time(
            reads=reads, writes=1,
            synchronous_commit=self.config.synchronous_commit))

        key, record, prior_value = self._apply_write(plan, copy)
        ctx.epoch = copy.transactions.epoch

        # Synchronous replication modes add their commit-path cost here.
        if record is not None and \
                self.config.replication_mode is not ReplicationMode.ASYNCHRONOUS:
            yield from self.pipeline.replicate.run(partition_index, record)

        if plan.kind is PlanKind.CREATE:
            identities = {itype: plan.attributes.get(attr)
                          for itype, attr in IDENTITY_RECORD_ATTRIBUTE.items()
                          if plan.attributes.get(attr)}
            self.deployment.register_identities(
                identities, located_element,
                all_locators=self.config.location_mode is
                LocationMode.PROVISIONED_MAPS,
                serving_locator=poa.locator)
            self.pipeline.warm_cache(poa, identities, located_element)
        elif plan.kind is PlanKind.DELETE and isinstance(prior_value, dict):
            deleted_identities = {
                itype: prior_value.get(attr)
                for itype, attr in IDENTITY_RECORD_ATTRIBUTE.items()
                if prior_value.get(attr)}
            self.deployment.deregister_identities(deleted_identities)
            # Placement change: the location must not be served from any
            # PoA's cache any more.
            self.pipeline.caches.invalidate_identities(deleted_identities)

        ctx.entries = []
        ctx.served_from = target_name

    def _apply_write(self, plan: OperationPlan, copy):
        """Run the intra-SE transaction for a write plan.

        Returns ``(key, commit_record, prior_value)``; the commit record is
        ``None`` for no-op writes and ``prior_value`` is the record that
        existed before a DELETE (used to deregister its identities).  Raises
        :class:`OperationFailure` on business errors.
        """
        transaction = copy.transactions.begin()
        try:
            key, prior_value = self.apply_plan(transaction, plan, copy)
        except WriteConflict:
            # Transaction.write already aborted the transaction.
            raise OperationFailure(ResultCode.BUSY,
                                   "write conflict, retry") from None
        except FencedError as error:
            # Transaction.write already aborted; the retry stage re-locates
            # and lands the write on the copy the new epoch promoted.
            raise OperationFailure(ResultCode.FENCED,
                                   f"write copy fenced: {error}") from None
        except OperationFailure:
            transaction.abort()
            raise
        try:
            record = transaction.commit(timestamp=self.sim.now)
        except FencedError as error:
            # Fenced between apply and commit: nothing was installed.
            raise OperationFailure(ResultCode.FENCED,
                                   f"write copy fenced: {error}") from None
        return key, record, prior_value

    def apply_plan(self, transaction, plan: OperationPlan, copy):
        """Apply one write plan inside ``transaction`` (no begin/commit).

        The per-record half of the write path, shared by the one-transaction-
        per-write sequential path and the coalesced multi-record transaction
        of a batch wave.  Business errors raise :class:`OperationFailure`
        *without* touching the transaction (the caller owns its lifecycle);
        a :class:`WriteConflict` from the no-wait lock grab propagates raw --
        by then ``Transaction.write`` has aborted the whole transaction.
        Returns ``(key, prior_value)``.
        """
        key_imsi = plan.identity_value if plan.identity_type == "imsi" else None
        if plan.kind is PlanKind.CREATE:
            key = f"sub:{plan.attributes['imsi']}"
        else:
            if key_imsi is None:
                key_imsi = self._imsi_by_attribute(copy, plan)
                if key_imsi is None:
                    raise OperationFailure(ResultCode.NO_SUCH_OBJECT,
                                           "record not found")
            key = f"sub:{key_imsi}"
        prior_value = None
        if plan.kind is PlanKind.CREATE:
            if transaction.exists(key):
                raise OperationFailure(ResultCode.ENTRY_ALREADY_EXISTS,
                                       "entry already exists")
            transaction.write(key, dict(plan.attributes))
        elif plan.kind is PlanKind.UPDATE:
            if not transaction.exists(key):
                raise OperationFailure(ResultCode.NO_SUCH_OBJECT,
                                       "record not found")
            transaction.modify(key, plan.changes)
        else:  # DELETE
            prior_value = transaction.read_or_default(key)
            if prior_value is None:
                raise OperationFailure(ResultCode.NO_SUCH_OBJECT,
                                       "record not found")
            transaction.delete(key)
        return key, prior_value

    def _imsi_by_attribute(self, copy, plan: OperationPlan) -> Optional[str]:
        attribute = IDENTITY_RECORD_ATTRIBUTE.get(plan.identity_type, "")
        for key in copy.store.keys():
            record = copy.store.get(key)
            if isinstance(record, dict) and \
                    record.get(attribute) == plan.identity_value:
                return record.get("imsi")
        return None


class _CoalescedGroup:
    """One wave's multi-record write transaction against one partition.

    Writes of one admission wave that target the same partition are applied
    inside a single shared intra-SE transaction: one PoA round trip paid at
    group open, per-record engine time at each record's turn, and exactly one
    commit charge (plus one synchronous-replication charge) when the group is
    flushed at wave end.  A failing record rolls back to its savepoint, so
    its result code is isolated while the surviving records still commit.
    """

    __slots__ = ("partition_index", "target_name", "element", "copy",
                 "transaction", "slots", "undos")

    def __init__(self, partition_index: int, target_name: str, element, copy,
                 transaction):
        self.partition_index = partition_index
        self.target_name = target_name
        self.element = element
        self.copy = copy
        self.transaction = transaction
        #: Slots whose record was applied (still uncommitted) in this group.
        self.slots: List["_BatchSlot"] = []
        #: Undo callables for the eager identity bookkeeping of applied
        #: CREATE/DELETE records, run (in reverse) when the whole group's
        #: writes are discarded -- a conflict abort of the shared
        #: transaction, or a synchronous-replication shortfall at flush.
        self.undos: List = []


class ReplicateStage(PipelineStage):
    """Synchronous replication cost on the commit path."""

    def run(self, partition_index: int, record):
        try:
            if self.config.replication_mode is ReplicationMode.DUAL_IN_SEQUENCE:
                yield from self.deployment.dual_replicators[partition_index] \
                    .replicate_commit(record)
            elif self.config.replication_mode is ReplicationMode.QUORUM:
                yield from self.deployment.quorum_replicators[partition_index] \
                    .replicate_commit(record)
        except NotEnoughReplicas:
            # The local commit already happened: not retryable (see
            # OperationFailure.retryable).
            raise OperationFailure(
                ResultCode.UNAVAILABLE,
                "not enough replicas for the configured durability",
                retryable=False) from None


class RespondStage(PipelineStage):
    """The answer travels back from the PoA to the client."""

    def run(self, ctx: OperationContext):
        try:
            yield from self.network.transfer(ctx.poa.site, ctx.client_site)
        except NetworkError:
            # The response is lost; the client times out.  The operation's
            # outcome is still decided by what happened at the UDR, but the
            # loss itself must stay observable in experiment reports.
            self.pipeline.batch.increment("response_lost")

    def run_group(self, poa_site: Site, client_site: Site, answers: int):
        """One shared transfer carries a wave's ``answers`` back to a site;
        a loss still counts ``response_lost`` once per answer, matching the
        per-request accounting of the sequential path."""
        try:
            yield from self.network.transfer(poa_site, client_site)
        except NetworkError:
            self.pipeline.batch.increment("response_lost", answers)


@dataclass(frozen=True)
class BatchItem:
    """One request of a batch: what a client hands to ``execute_batch``.

    ``priority`` defaults to the client type's natural class
    (FE -> signalling, PS -> provisioning); bulk provisioning runs pass
    :attr:`Priority.BULK` explicitly.  ``deadline`` (absolute virtual time)
    and ``retry_policy`` carry per-session QoS overrides from the
    :mod:`repro.api` layer; both default to the legacy behaviour (no
    deadline, the config's retry policy).
    """

    request: LdapRequest
    client_type: ClientType
    client_site: Site
    priority: Optional[Priority] = None
    deadline: Optional[float] = None
    retry_policy: Optional["RetryPolicy"] = None

    def priority_class(self) -> Priority:
        return self.priority or Priority.for_client(self.client_type)


class _BatchSlot:
    """Mutable per-request state threaded through one batch run."""

    __slots__ = ("item", "index", "ctx", "failure", "runnable")

    def __init__(self, item: BatchItem, index: int):
        self.item = item
        self.index = index
        self.ctx: Optional[OperationContext] = None
        self.failure: Optional[OperationFailure] = None
        #: Whether the slot reached the data path (admitted and translated).
        self.runnable = False


class BatchAdmissionStage(PipelineStage):
    """Admission of a whole batch: priority dequeue plus shared PoA hops.

    The dequeue is a weighted round-robin over the priority classes in
    descending order (``UDRConfig.priority_weights`` quanta per turn), FIFO
    within each class, so signalling traffic overtakes provisioning and bulk
    without starving them.  Within one class, deadline-carrying work is
    ordered by remaining slack: the earlier absolute deadline goes first,
    deadline-free work keeps its FIFO position at the back of the class --
    so a wave that cannot take everything spends its slots on the requests
    closest to expiring instead of answering them ``TIME_LIMIT_EXCEEDED``
    a wave later.  With no deadlines in play the order is exactly the PR 6
    weighted round-robin (the sort is stable and every key ties).  The
    ordered queue is then cut into admission waves of at most
    ``batch_max_size`` requests; within a wave the requests of one client
    site share a single client-to-PoA transfer.
    """

    def order(self, slots: Sequence[_BatchSlot]) -> List[_BatchSlot]:
        """The weighted-priority admission order (slack-sorted in a class)."""
        queues: Dict[Priority, List[_BatchSlot]] = {p: [] for p in Priority}
        for slot in slots:
            queues[slot.item.priority_class()].append(slot)
        infinity = float("inf")
        for queue in queues.values():
            if any(slot.item.deadline is not None for slot in queue):
                queue.sort(key=lambda slot: slot.item.deadline
                           if slot.item.deadline is not None else infinity)
        ordered: List[_BatchSlot] = []
        cursors = {priority: 0 for priority in Priority}
        remaining = len(slots)
        while remaining:
            for priority in Priority:
                queue, cursor = queues[priority], cursors[priority]
                take = min(self.config.weight_of(priority),
                           len(queue) - cursor)
                if take <= 0:
                    continue
                ordered.extend(queue[cursor:cursor + take])
                cursors[priority] = cursor + take
                remaining -= take
        return ordered

    def waves(self, ordered: Sequence[_BatchSlot]) -> List[List[_BatchSlot]]:
        """Cut the admission order into waves of at most ``batch_max_size``."""
        size = self.config.batch_max_size
        return [list(ordered[start:start + size])
                for start in range(0, len(ordered), size)]

    def run(self, client_site: Site, slots: List[_BatchSlot]):
        """Generator: reach the PoA once for a wave's site group.

        Returns the serving :class:`PointOfAccess`; raises
        :class:`OperationFailure` (``respond=False``) for the whole group
        when no PoA is reachable -- exactly the sequential admission
        failure (shared via :meth:`AdmissionStage.reach_poa`), paid once
        instead of once per request.
        """
        poa = yield from self.pipeline.admission.reach_poa(client_site)
        for slot in slots:
            slot.ctx.poa = poa
        return poa


class RetryStage(PipelineStage):
    """Policy-driven retries around the per-request data path.

    Drives locate (when not already resolved by the shared group probe) and
    the read/write path for one context.  On an :class:`OperationFailure`
    whose code the context's :class:`~repro.core.config.RetryPolicy` calls
    transient, it waits the policy's backoff and tries again -- re-running
    data location from scratch (``relocate_on_retry``), so a fail-over that
    invalidated the PoA caches between attempts is honoured instead of
    retrying against the stale location.  The policy is resolved at context
    creation (the per-session QoS override, else ``UDRConfig.retry_policy``
    on the batched paths, else ``None``); without one the stage is a plain
    pass-through, preserving sequential-path behaviour bit for bit.

    Deadline propagation: a context whose ``deadline`` has passed
    short-circuits with ``TIME_LIMIT_EXCEEDED`` before touching the data
    path, and a retry whose backoff would land past the deadline is not
    driven at all -- expired work must not consume pipeline hops.
    """

    def run(self, ctx: OperationContext,
            pending_failure: Optional[OperationFailure] = None,
            ledger: Optional["_TransferLedger"] = None):
        policy = ctx.retry_policy
        batch = self.pipeline.batch
        failure = pending_failure
        attempt = 0
        while True:
            if failure is None and ctx.expired(self.sim.now):
                batch.increment("api.deadline_expired")
                raise OperationFailure(ResultCode.TIME_LIMIT_EXCEEDED,
                                       "deadline expired", retryable=False)
            if failure is None:
                try:
                    if not ctx.location_resolved:
                        self.pipeline.locate.run(ctx)
                    if ctx.plan.kind is PlanKind.READ:
                        yield from self.pipeline.read_path.run(ctx,
                                                               ledger=ledger)
                    elif ctx.plan.kind is PlanKind.SEARCH:
                        yield from self.pipeline.search_path.run(ctx,
                                                                 ledger=ledger)
                    else:
                        yield from self.pipeline.write_path.run(ctx,
                                                                ledger=ledger)
                    if attempt:
                        batch.increment("batch.retry_succeeded")
                    return
                except OperationFailure as error:
                    failure = error
            if policy is None or not failure.retryable or \
                    not policy.retries(failure.code):
                raise failure
            if attempt >= policy.max_retries:
                batch.increment("batch.retry_exhausted")
                raise failure
            attempt += 1
            # Count the attempt before deciding whether its backoff fits the
            # deadline: a deadline-refused retry still *ran* (and failed) an
            # attempt, and the response's ``attempts`` must say so.
            ctx.attempts = attempt
            if ctx.deadline is not None and \
                    self.sim.now + policy.backoff(attempt) >= ctx.deadline:
                # The backoff alone would outlive the deadline: answer now
                # instead of sleeping into certain expiry.
                batch.increment("api.deadline_expired")
                raise OperationFailure(ResultCode.TIME_LIMIT_EXCEEDED,
                                       "deadline expired before retry",
                                       retryable=False)
            batch.increment("batch.retries")
            yield self.sim.timeout(policy.backoff(attempt))
            if policy.relocate_on_retry:
                ctx.located_element = None
                ctx.location_resolved = False
            ctx.entries = []
            ctx.next_cursor = None
            ctx.has_more = False
            # A retry is a fresh message; it pays its own network hops.
            ledger = None
            failure = None


class OperationPipeline:
    """The staged operation path of one UDR deployment."""

    def __init__(self, sim, config: UDRConfig, deployment: Deployment,
                 metrics: MetricsRegistry, caches: LocationCacheGroup):
        self.sim = sim
        self.config = config
        self.deployment = deployment
        self.metrics = metrics
        self.caches = caches
        self.batch = MetricsBatch(metrics,
                                  flush_threshold=config.metrics_batch_size)
        self.admission = AdmissionStage(self)
        self.plan_stage = LdapPlanStage(self)
        self.locate = LocateStage(self)
        self.read_path = ReadPath(self)
        self.search_path = SearchPath(self)
        self.write_path = WritePath(self)
        self.replicate = ReplicateStage(self)
        self.respond = RespondStage(self)
        self.batch_admission = BatchAdmissionStage(self)
        self.retry_stage = RetryStage(self)
        #: Set by the dispatcher's shed controller while the deployment is
        #: in shed mode; the read path consults it to allow slave reads for
        #: master-only client types.  Plain attribute (not config) because
        #: it flips at simulation time.
        self.shed_active = False
        #: Element names whose partition copies are currently under
        #: reconciliation repair (:class:`repro.cdc.reconcile.Reconciler`);
        #: the read path avoids choosing them while another live copy can
        #: serve, so reads cannot observe half-repaired replica state.
        self.read_quarantine = set()

    # -- cache plumbing ------------------------------------------------------------

    def cache_for(self, poa: PointOfAccess) -> Optional[PoALocationCache]:
        if not self.config.location_cache_enabled:
            return None
        return self.caches.for_poa(poa)

    def warm_cache(self, poa: PointOfAccess, identities: Dict[str, str],
                   element_name: str) -> None:
        """Pre-warm the serving PoA's cache after a CREATE placed data."""
        cache = self.cache_for(poa)
        if cache is None or not poa.locator_ready:
            return
        for identity_type, value in identities.items():
            cache.store(identity_type, value, element_name)

    # -- the operation path --------------------------------------------------------

    def execute(self, request: LdapRequest, client_type: ClientType,
                client_site: Site, priority: Optional[Priority] = None,
                deadline: Optional[float] = None,
                retry_policy: Optional[RetryPolicy] = None):
        """Generator: run one LDAP request through the stages.

        Returns an :class:`~repro.ldap.operations.LdapResponse`; never raises
        for operational failures -- they are encoded as result codes, exactly
        as a directory server would answer.  ``UDRConfig.retry_policy`` does
        *not* apply here: a single request fails fast, retries are a batch
        admission feature (:meth:`execute_batch`) -- unless the caller (a
        session with a QoS override) passes ``retry_policy`` explicitly.
        ``deadline`` (absolute virtual time) short-circuits expired requests
        with ``TIME_LIMIT_EXCEEDED`` before they consume any pipeline hop.
        """
        ctx = OperationContext(request, client_type, client_site,
                               start=self.sim.now, priority=priority,
                               deadline=deadline, retry_policy=retry_policy)
        if ctx.expired(self.sim.now):
            # Expired before admission: no PoA hop, no LDAP charge, nothing.
            self.batch.increment("api.deadline_expired")
            return self._finish(ctx, ResultCode.TIME_LIMIT_EXCEEDED,
                                reason="deadline expired")
        try:
            yield from self.admission.run(ctx)
            yield from self.plan_stage.run(ctx)
            # The data path rides the retry stage: with neither a policy nor
            # a deadline on the context it is a pure pass-through (locate
            # plus read/write), bit for bit the legacy sequential walk.
            yield from self.retry_stage.run(ctx)
        except OperationFailure as failure:
            if failure.respond:
                yield from self.respond.run(ctx)
            return self._finish(ctx, failure.code, reason=failure.reason)
        yield from self.respond.run(ctx)
        return self._finish(ctx, ResultCode.SUCCESS)

    # -- the batched operation path ------------------------------------------------

    def execute_batch(self, items: Sequence[Union[BatchItem, LdapRequest]],
                      client_type: Optional[ClientType] = None,
                      client_site: Optional[Site] = None):
        """Generator: carry N requests through the stages together.

        ``items`` is a sequence of :class:`BatchItem`; bare
        :class:`LdapRequest` objects are accepted too when ``client_type``
        and ``client_site`` describe the whole batch.  Returns the list of
        :class:`~repro.ldap.operations.LdapResponse` in submission order.

        Equivalence: result codes and final store state are identical to N
        sequential :meth:`execute` calls issued in the batch's *admission
        order* -- which preserves submission order within each priority
        class but interleaves the classes by weight.  For workloads whose
        outcome does not depend on cross-class ordering (in particular,
        when no identity is written by one class and addressed by another
        in the same batch) this equals plain submission order; the property
        is pinned by ``tests/test_batch_equivalence.py``.  The batch
        amortises the shared hops and flushes the metric batch exactly once
        at the end.
        """
        slots = [_BatchSlot(self._as_item(item, client_type, client_site),
                            index)
                 for index, item in enumerate(items)]
        responses: List[Optional[LdapResponse]] = [None] * len(slots)
        waves = self.batch_admission.waves(self.batch_admission.order(slots))
        self.batch.increment("batch.batches")
        for wave in waves:
            yield from self._run_wave(wave, responses)
        self.batch.flush()
        return responses

    def execute_wave(self, items: Sequence[BatchItem]):
        """Generator: drive one pre-formed admission wave through the stages.

        The arrival-driven :class:`~repro.core.dispatcher.BatchDispatcher`'s
        unit of work: the wave was already sized (``<= batch_max_size``) and
        already *really* lingered in the dispatch queue, so it is not cut
        into sub-waves and never pays the explicit-batch linger surcharge.
        Responses come back in ``items`` order; the metric batch flushes
        exactly once.
        """
        slots = [_BatchSlot(item, index) for index, item in enumerate(items)]
        responses: List[Optional[LdapResponse]] = [None] * len(slots)
        yield from self._run_wave(self.batch_admission.order(slots),
                                  responses, charge_linger=False)
        self.batch.flush()
        return responses

    @staticmethod
    def _as_item(item, client_type, client_site) -> BatchItem:
        if isinstance(item, BatchItem):
            return item
        if client_type is None or client_site is None:
            raise TypeError("bare LdapRequest batch items need client_type "
                            "and client_site")
        return BatchItem(item, client_type, client_site)

    def _run_wave(self, wave: List[_BatchSlot],
                  responses: List[Optional[LdapResponse]],
                  charge_linger: bool = True):
        """Generator: drive one admission wave through the stages.

        The shared front of the pipeline (PoA hop, LDAP service charge,
        request translation, group location probes) runs once per client
        site; the transactional tail then fans out over the *whole* wave in
        global admission order -- not site group by site group -- so
        dependent requests of one priority class behave exactly as
        sequential execution regardless of which sites they arrive from.
        One shared answer transfer per site group closes the wave.

        ``charge_linger`` applies the fixed linger surcharge that models an
        under-filled *explicit* batch waiting for late arrivals; the
        arrival-driven dispatcher passes ``False`` because its waves already
        spent the linger budget for real in the queue.
        """
        config = self.config
        wave_start = self.sim.now  # a lingering wave's wait counts as latency
        if charge_linger and config.batch_linger_ticks and \
                len(wave) < config.batch_max_size:
            # An under-filled explicit wave lingers for late arrivals.
            yield self.sim.timeout(
                config.batch_linger_ticks * BATCH_LINGER_TICK)
        site_groups: Dict[Site, List[_BatchSlot]] = {}
        for slot in wave:
            site_groups.setdefault(slot.item.client_site, []).append(slot)
        admitted = []
        for client_site, group in site_groups.items():
            poa = yield from self._admit_site_group(client_site, group,
                                                    responses, wave_start)
            if poa is None:
                continue
            yield from self.plan_stage.run_group(poa, group)
            admitted.append((client_site, poa, group))
        # Identities unknown at wave start stay unresolved only when an
        # earlier request of this wave could register them (a CREATE; a
        # DELETE can only remove, which placement_changed below handles).
        defer_unknown = any(
            slot.ctx.plan.kind is PlanKind.CREATE
            for _site, _poa, group in admitted
            for slot in group if slot.runnable)
        for _site, _poa, group in admitted:
            # One location probe per distinct identity in the site group.
            self.locate.run_group(
                [slot for slot in group if slot.runnable],
                defer_unknown=defer_unknown)
        # Fan back out: the transactional tail is per request, in global
        # admission order, wrapped by the retry policy.  The wave's ledger
        # lets requests targeting copies at the same site share one bulk
        # round trip ("group by target partition").
        ledger = _TransferLedger()
        if config.coalesce_writes:
            yield from self._fan_out_coalesced(wave, ledger)
        else:
            yield from self._fan_out(wave, ledger)
        # One shared answer transfer back to each client site.  (Failures
        # with respond=False cannot reach this point: they early-return in
        # the admission handler.)
        for client_site, poa, group in admitted:
            yield from self.respond.run_group(poa.site, client_site,
                                              len(group))
            for slot in group:
                if slot.failure is None:
                    responses[slot.index] = self._finish(
                        slot.ctx, ResultCode.SUCCESS, batched=True)
                else:
                    responses[slot.index] = self._finish(
                        slot.ctx, slot.failure.code,
                        reason=slot.failure.reason, batched=True)

    def _fan_out(self, wave: List[_BatchSlot], ledger: _TransferLedger):
        """Generator: the per-request transactional tail of one wave."""
        placement_changed = False
        for slot in wave:
            if not slot.runnable:
                continue
            if placement_changed and slot.ctx.location_resolved:
                # An earlier CREATE/DELETE of this wave may have moved or
                # removed data the shared probe resolved: re-locate at this
                # request's own turn, as the sequential path would.
                slot.ctx.located_element = None
                slot.ctx.location_resolved = False
            pending = slot.failure
            slot.failure = None
            try:
                yield from self.retry_stage.run(slot.ctx,
                                                pending_failure=pending,
                                                ledger=ledger)
            except OperationFailure as failure:
                slot.failure = failure
            if slot.failure is None and \
                    slot.ctx.plan.kind in (PlanKind.CREATE, PlanKind.DELETE):
                placement_changed = True

    def _fan_out_coalesced(self, wave: List[_BatchSlot],
                           ledger: _TransferLedger):
        """Generator: the transactional tail with cross-wave write coalescing.

        Writes against one partition share a single multi-record intra-SE
        transaction (:class:`_CoalescedGroup`): one begin/commit charge per
        partition per wave, with per-record results fanned back out and a
        failing record rolled back to its savepoint without disturbing its
        group-mates.  Records are still *applied* in global admission order,
        so within-wave visibility (create-then-duplicate-create, delete-then-
        delete) matches sequential execution; a read addressing a partition
        with an open group flushes that group first, so it observes its
        wave-mates' earlier writes exactly as the sequential path would.
        Failures that a retry policy calls transient fall back to the
        per-record write path via :class:`RetryStage`.
        """
        groups: Dict[int, _CoalescedGroup] = {}
        placement_changed = False
        for slot in wave:
            if not slot.runnable:
                continue
            ctx = slot.ctx
            if placement_changed and ctx.location_resolved:
                ctx.located_element = None
                ctx.location_resolved = False
            pending = slot.failure
            slot.failure = None
            if pending is None and ctx.expired(self.sim.now):
                # Short-circuit before locate or the shared transaction:
                # expired work must not consume the group's hops.
                self.batch.increment("api.deadline_expired")
                pending = OperationFailure(ResultCode.TIME_LIMIT_EXCEEDED,
                                           "deadline expired",
                                           retryable=False)
            if pending is None and not ctx.location_resolved:
                try:
                    self.locate.run(ctx)
                except OperationFailure as failure:
                    pending = failure
            if pending is None and ctx.plan.is_write:
                pending = yield from self._coalesced_write(slot, groups,
                                                           ledger)
                if pending is None:
                    if ctx.plan.kind in (PlanKind.CREATE, PlanKind.DELETE):
                        placement_changed = True
                    continue
            elif pending is None and ctx.plan.kind is PlanKind.SEARCH:
                # A scoped search may touch any partition: commit every open
                # group first so it observes its wave-mates' earlier writes.
                for partition in list(groups):
                    yield from self._flush_group(groups.pop(partition))
            elif pending is None:
                # A read must observe its wave-mates' earlier writes: commit
                # the open group on its partition before serving it.
                partition = self.deployment.primary_partition_of_element.get(
                    ctx.located_element)
                group = groups.pop(partition, None)
                if group is not None:
                    yield from self._flush_group(group)
            try:
                yield from self.retry_stage.run(ctx, pending_failure=pending,
                                                ledger=ledger)
            except OperationFailure as failure:
                slot.failure = failure
            if slot.failure is None and \
                    ctx.plan.kind in (PlanKind.CREATE, PlanKind.DELETE):
                placement_changed = True
        for group in groups.values():
            yield from self._flush_group(group)

    def _coalesced_write(self, slot: _BatchSlot,
                         groups: Dict[int, _CoalescedGroup],
                         ledger: _TransferLedger):
        """Generator: apply one write inside its partition's shared
        transaction.

        Returns ``None`` on success or the :class:`OperationFailure` the
        caller should hand to the retry stage (group open failures and
        conflict aborts are transient; business errors are final either
        way).  Mirrors :meth:`WritePath.run` for placement, element choice
        and identity bookkeeping, but defers the commit (and its charge) to
        :meth:`_flush_group`.
        """
        ctx = slot.ctx
        plan = ctx.plan
        if plan.kind is PlanKind.CREATE and ctx.located_element is None:
            ctx.located_element = self.deployment.place_subscriber(
                _PlacementView(plan.attributes),
                plan.attributes.get("imsi", ""))
        partition_index = self.deployment.primary_partition_of_element[
            ctx.located_element]
        group = groups.get(partition_index)
        if group is None:
            try:
                group = yield from self._open_group(ctx, partition_index,
                                                    ledger)
            except OperationFailure as failure:
                return failure
            groups[partition_index] = group
        reads = 1 if plan.kind is PlanKind.UPDATE else 0
        yield self.sim.timeout(
            group.element.service_times.operation_time(reads=reads, writes=1))
        savepoint = group.transaction.savepoint()
        try:
            _key, prior_value = self.write_path.apply_plan(
                group.transaction, plan, group.copy)
        except (WriteConflict, FencedError) as error:
            # The no-wait lock grab lost against a transaction *outside* the
            # wave (or the membership plane fenced the copy mid-wave) and
            # aborted the shared transaction: every record applied so far is
            # discarded through no fault of its own.  Undo their eager
            # identity bookkeeping and re-drive each through the per-record
            # write path (their first attempt never committed, so this is
            # completion, not a retry); only the record that hit the
            # conflict/fence answers BUSY/FENCED, retryable under the
            # policy -- exactly the sequential outcome.
            del groups[partition_index]
            self.batch.increment("batch.coalesced.aborts")
            for undo in reversed(group.undos):
                undo()
            for member in group.slots:
                member.ctx.located_element = None
                member.ctx.location_resolved = False
                member.ctx.entries = []
                try:
                    # A re-drive is a fresh message: no wave ledger.
                    yield from self.retry_stage.run(member.ctx)
                except OperationFailure as member_failure:
                    member.failure = member_failure
            if isinstance(error, FencedError):
                return OperationFailure(ResultCode.FENCED,
                                        "write copy fenced, retry")
            return OperationFailure(ResultCode.BUSY, "write conflict, retry")
        except OperationFailure as failure:
            group.transaction.rollback_to(savepoint)
            self.batch.increment("batch.coalesced.rollbacks")
            return failure
        group.slots.append(slot)
        ctx.epoch = group.copy.transactions.epoch
        self.batch.increment("batch.coalesced.records")
        poa = ctx.poa
        if plan.kind is PlanKind.CREATE:
            # Register eagerly (sequential registers after its per-write
            # commit): later requests of this wave must locate the newcomer.
            identities = {itype: plan.attributes.get(attr)
                          for itype, attr in IDENTITY_RECORD_ATTRIBUTE.items()
                          if plan.attributes.get(attr)}
            self.deployment.register_identities(
                identities, ctx.located_element,
                all_locators=self.config.location_mode is
                LocationMode.PROVISIONED_MAPS,
                serving_locator=poa.locator)
            self.warm_cache(poa, identities, ctx.located_element)
            group.undos.append(
                lambda ids=identities: self._undo_create(ids))
        elif plan.kind is PlanKind.DELETE and isinstance(prior_value, dict):
            deleted_identities = {
                itype: prior_value.get(attr)
                for itype, attr in IDENTITY_RECORD_ATTRIBUTE.items()
                if prior_value.get(attr)}
            self.deployment.deregister_identities(deleted_identities)
            self.caches.invalidate_identities(deleted_identities)
            group.undos.append(
                lambda ids=deleted_identities, element=ctx.located_element:
                self._undo_delete(ids, element))
        ctx.entries = []
        ctx.served_from = group.target_name
        return None

    def _undo_create(self, identities: Dict[str, str]) -> None:
        """Reverse a CREATE's eager registration after its write was
        discarded (group abort) or left unlocatable (replication
        shortfall, matching the sequential path that registers only after
        a successful replicate)."""
        self.deployment.deregister_identities(identities)
        self.caches.invalidate_identities(identities)

    def _undo_delete(self, identities: Dict[str, str],
                     element_name: str) -> None:
        """Re-register a DELETE's identities when the group's outcome
        voided its eager deregistration: after a conflict abort the record
        still exists and must stay locatable; after a replication
        shortfall the sequential path would have raised *before* its
        deregistration ran, so the registrations must survive there too."""
        self.deployment.register_identities(identities, element_name,
                                            all_locators=True)

    def _open_group(self, ctx: OperationContext, partition_index: int,
                    ledger: _TransferLedger):
        """Generator: begin a partition's shared write transaction.

        Pays the PoA-to-element round trip once for the whole group (the
        opener's PoA; the wave ledger covers same-site repeats) and chooses
        the write element exactly as :class:`WritePath` would.
        """
        deployment = self.deployment
        replica_set = deployment.replica_set_of_element(ctx.located_element)
        coordinator = deployment.coordinators[partition_index]
        reachable = [name for name in replica_set.member_names
                     if replica_set.element(name).available
                     and deployment.network.reachable(
                         ctx.poa.site, replica_set.element(name).site)]
        try:
            target_name = coordinator.choose_write_element(
                reachable, timestamp=self.sim.now)
        except MasterUnreachable as error:
            raise OperationFailure(
                ResultCode.UNAVAILABLE,
                f"master unreachable ({error.reason})") from None
        element = deployment.elements[target_name]
        copy = replica_set.copy_on(target_name)
        yield from self.write_path.element_round_trip(
            ctx.poa, element, "write copy unreachable", ledger=ledger)
        return _CoalescedGroup(partition_index, target_name, element, copy,
                               copy.transactions.begin())

    def _flush_group(self, group: _CoalescedGroup):
        """Generator: commit one coalesced group -- one commit charge (and
        one synchronous-replication drive) for all its records.  A
        synchronous-replication shortfall marks every member with the same
        non-retryable code each would have earned sequentially, and
        reverses the eager identity bookkeeping: the sequential path
        raises *before* registering a CREATE (or deregistering a DELETE),
        so lookups must not diverge between the two modes."""
        yield self.sim.timeout(group.element.service_times.commit_charge(
            self.config.synchronous_commit))
        try:
            record = group.transaction.commit(timestamp=self.sim.now)
        except FencedError:
            # Fenced between apply and flush: nothing committed.  Undo the
            # eager bookkeeping and re-drive each member through the
            # per-record path, which relocates to the new epoch's master.
            self.batch.increment("batch.coalesced.fenced")
            for undo in reversed(group.undos):
                undo()
            for member in group.slots:
                member.ctx.located_element = None
                member.ctx.location_resolved = False
                member.ctx.entries = []
                try:
                    yield from self.retry_stage.run(
                        member.ctx,
                        pending_failure=OperationFailure(
                            ResultCode.FENCED, "write copy fenced"))
                except OperationFailure as member_failure:
                    member.failure = member_failure
            return
        self.batch.increment("batch.coalesced.groups")
        if record is not None and \
                self.config.replication_mode is not ReplicationMode.ASYNCHRONOUS:
            try:
                yield from self.replicate.run(group.partition_index, record)
            except OperationFailure as failure:
                for undo in reversed(group.undos):
                    undo()
                for member in group.slots:
                    if member.failure is None:
                        member.failure = failure

    def _admit_site_group(self, client_site: Site, group: List[_BatchSlot],
                          responses: List[Optional[LdapResponse]],
                          wave_start: float):
        """Generator: contexts plus the shared PoA hop for one site group.

        Returns the serving PoA, or ``None`` when admission failed -- the
        group's responses are recorded here in that case.
        """
        for slot in group:
            item = slot.item
            slot.ctx = OperationContext(
                item.request, item.client_type, client_site,
                start=wave_start, priority=item.priority_class(),
                deadline=item.deadline,
                retry_policy=item.retry_policy if item.retry_policy
                is not None else self.config.retry_policy)
        try:
            poa = yield from self.batch_admission.run(client_site, group)
        except OperationFailure as failure:
            for slot in group:
                slot.failure = failure
                responses[slot.index] = self._finish(
                    slot.ctx, failure.code, reason=failure.reason,
                    batched=True)
            return None
        self.batch.increment("batch.admitted", len(group))
        return poa

    def _finish(self, ctx: OperationContext, code: ResultCode,
                reason: str = "", batched: bool = False) -> LdapResponse:
        latency = self.sim.now - ctx.start
        response = LdapResponse(result_code=code, request=ctx.request,
                                entries=list(ctx.entries),
                                diagnostic_message=reason,
                                latency=latency, served_from=ctx.served_from,
                                attempts=ctx.attempts,
                                next_cursor=ctx.next_cursor,
                                has_more=ctx.has_more)
        client = ctx.client_type.value
        if code.is_success:
            self.batch.record_outcome(client, success=True)
            self.batch.record_latency(client, latency)
        else:
            self.batch.record_outcome(client, success=False,
                                      reason=reason or code.name.lower())
        if batched:
            # Batched requests defer to the single flush at batch end.
            self.batch.record_priority(ctx.priority.value, code.is_success)
        else:
            self.batch.request_done()
        return response

    def flush_metrics(self) -> None:
        """Apply any batched metric records to the registry now."""
        self.batch.flush()

    def __repr__(self) -> str:
        return (f"<OperationPipeline {self.config.name!r} "
                f"caches={len(self.caches)} "
                f"batch_size={self.config.metrics_batch_size}>")


class _PlacementView:
    """Adapts a new entry's attributes to the placement policy interface."""

    def __init__(self, attributes: Dict[str, object]):
        self.key = f"sub:{attributes.get('imsi', '')}"
        self.home_region = attributes.get("homeRegion")
        self.organisation = attributes.get("organisation")
