"""Lifecycle layer: everything that changes a deployment after it is built.

:class:`ClusterController` owns the dynamic side of a UDR NF: starting and
stopping background processes (replication channels, checkpoint loops),
crash/recovery of storage elements through the availability manager,
fail-over promotions, post-partition consistency restoration and scale-out
of new blade clusters.  It is the only writer of the
:class:`~repro.core.deployment.Deployment` handle, and it drives the
location-cache invalidations the pipeline's fast path depends on
(fail-over drops cached entries pointing at the failed element; a scaled-out
PoA's cache stays cold until its locator has synced).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.balancer import PointOfAccess
from repro.cluster.blade_cluster import BladeCluster
from repro.directory.locator import ProvisionedLocator
from repro.directory.sync import MapSynchroniser
from repro.replication.errors import ReplicationError
from repro.replication.restoration import (
    ConsistencyRestoration,
    RestorationReport,
)
from repro.storage.storage_element import StorageElement
from repro.core.config import UDRConfig
from repro.core.deployment import Deployment, DeploymentBuilder
from repro.core.location_cache import LocationCacheGroup


class ClusterController:
    """Crash, recover, fail over, resynchronise, scale out, restore."""

    def __init__(self, sim, config: UDRConfig, deployment: Deployment,
                 builder: DeploymentBuilder, caches: LocationCacheGroup):
        self.sim = sim
        self.config = config
        self.deployment = deployment
        self.builder = builder
        self.caches = caches
        self.started = False
        #: Set by the façade when ``config.membership`` is enabled; the
        #: membership plane's promotion protocol stamps every fail-over
        #: with a fresh epoch and fences the deposed master.
        self.membership = None
        for element in deployment.elements.values():
            deployment.availability_manager.manage(
                element.name,
                fail_action=element.crash,
                repair_action=self._make_recovery_action(element))

    # -- background processes ------------------------------------------------------

    def start(self) -> None:
        """Start background processes: replication and checkpoints.

        Under ``config.replication_mux`` (the default) asynchronous
        replication runs through the event-driven site-pair multiplexer --
        zero simulator wakeups while nothing commits; with it disabled,
        every channel polls on its own interval, the paper's literal
        per-``(partition, slave)`` description.
        """
        if self.started:
            return
        self.started = True
        if self.config.replication_mux:
            self.deployment.replication_mux.start()
        else:
            for channel in self.deployment.channels:
                channel.start()
        for element in self.deployment.elements.values():
            self.sim.process(self._checkpoint_loop(element),
                             name=f"checkpoint:{element.name}")

    def stop(self) -> None:
        self.deployment.replication_mux.stop()
        for channel in self.deployment.channels:
            channel.stop()
        self.started = False

    def _checkpoint_loop(self, element: StorageElement):
        period = self.config.checkpoint_period
        while self.started:
            yield self.sim.timeout(period)
            if not element.available:
                continue
            for copy in element.copies:
                copy.checkpointer.checkpoint(timestamp=self.sim.now)

    # -- fault handling ------------------------------------------------------------

    def crash_element(self, name: str, auto_repair: bool = False) -> None:
        self.deployment.availability_manager.fail_component(
            name, auto_repair=auto_repair)

    def recover_element(self, name: str) -> None:
        self.deployment.availability_manager.repair_component(name)

    def _make_recovery_action(self, element: StorageElement) -> Callable[[], None]:
        """Recovery restores the disk image and then resyncs from peer copies.

        A real storage element comes back with the state of its last dump and
        catches up from the surviving copies before taking traffic again; the
        resync here copies any newer record versions from the most up-to-date
        available peer copy of each hosted partition.
        """
        def recover() -> None:
            element.recover(timestamp=self.sim.now)
            self.resynchronise_element(element)
            # Backlog that accumulated while the element was down has no
            # future commit to wake the mux; the mux's availability-manager
            # subscription (bound by the deployment builder) re-arms those
            # links right after this repair action returns.
        return recover

    def resynchronise_element(self, element: StorageElement) -> None:
        for copy in element.copies:
            replica_set = self.deployment.replica_sets.get(copy.partition.index)
            if replica_set is None:
                continue
            best_name = replica_set.most_up_to_date(
                [name for name in replica_set.available_members()
                 if name != element.name])
            if best_name is None:
                continue
            source = replica_set.copy_on(best_name).store
            target = copy.store
            for key in source.keys():
                newest = source.latest(key)
                current = target.latest(key)
                if newest is None:
                    continue
                if current is None or current.position < newest.position:
                    # Position order -- ``(epoch, commit_seq)`` -- so a
                    # rejoining deposed master's stale high sequence numbers
                    # never shadow the new epoch's writes.
                    target.apply_version(newest)

    def fail_over(self, element_name: str,
                  candidates: Optional[List[str]] = None,
                  trigger: str = "oracle") -> Dict[int, str]:
        """Promote new masters for every partition mastered on ``element_name``.

        Cached locations pointing at the failed element are dropped from
        every PoA's cache so the next request re-resolves through the
        locator.  ``candidates`` restricts the promotion pool (the
        membership plane passes the quorum-side members); with
        ``config.membership`` enabled this method is the *internal arm* of
        the :class:`~repro.cluster.detector.PromotionProtocol`, which
        epoch-stamps every promotion it performs.
        """
        promotions: Dict[int, str] = {}
        for index, replica_set in self.deployment.replica_sets.items():
            if replica_set.master_element_name != element_name:
                continue
            try:
                promotions[index] = replica_set.fail_over(candidates)
            except ReplicationError:
                continue
        if promotions:
            self.caches.invalidate_element(element_name)
            # A new master means a new commit log to wake on and a new
            # (master site, slave site) link for the partition's shipments.
            self.deployment.replication_mux.rebind()
            if self.membership is not None:
                self.membership.register_promotions(element_name, promotions,
                                                    trigger=trigger)
        return promotions

    # -- restoration ---------------------------------------------------------------

    def restore_consistency(self, resolver=None) -> List[RestorationReport]:
        """Run post-partition consistency restoration over every partition."""
        restoration = ConsistencyRestoration(resolver=resolver)
        reports = []
        for index, replica_set in sorted(self.deployment.replica_sets.items()):
            reports.append(restoration.restore(replica_set,
                                               timestamp=self.sim.now))
            self.deployment.coordinators[index].clear_divergence()
        return reports

    # -- scale-out -----------------------------------------------------------------

    def scale_out_new_cluster(self, region: str,
                              synchroniser: Optional[MapSynchroniser] = None
                              ) -> Tuple[PointOfAccess, Optional[object]]:
        """Deploy an additional blade cluster (new PoA) in ``region``.

        With provisioned maps the new data-location stage instance must sync
        from a peer before the PoA can serve (returns the sync process);
        cached and hashed locators are ready immediately (returns ``None``).
        """
        deployment = self.deployment
        site_index = len([s for s in deployment.topology.sites
                          if s.region.name == region]) + 1
        site = deployment.topology.add_site(f"{region}-dc{site_index}", region)
        cluster = BladeCluster(name=f"cluster-{site.name}", site=site)
        for _ in range(self.config.ldap_servers_per_cluster):
            cluster.add_ldap_server()
        deployment.clusters.append(cluster)
        locator = self.builder.make_locator(cluster.name)
        deployment.locators[cluster.name] = locator
        poa = PointOfAccess(name=f"poa-{site.name}", site=site,
                            ldap_pool=cluster.ldap_pool, locator=locator)
        deployment.points_of_access.append(poa)
        sync_process = None
        if isinstance(locator, ProvisionedLocator):
            peer = next((existing for existing in deployment.locators.values()
                         if isinstance(existing, ProvisionedLocator)
                         and existing is not locator and not existing.syncing),
                        None)
            if peer is not None:
                # The PoA must not serve before its maps are in place, even
                # before the sync process gets its first slice of time.
                locator.begin_sync(peer.directory.total_entries())
                synchroniser = synchroniser or MapSynchroniser()
                source_site = deployment.clusters[0].site
                sync_process = self.sim.process(
                    synchroniser.sync(self.sim, deployment.network,
                                      source_site, site, peer, locator),
                    name=f"map-sync:{cluster.name}")
        return poa, sync_process
