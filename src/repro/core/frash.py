"""The FRASH trade-off graph of figures 5 and 6 (experiment E02).

Figure 5 draws the five FRASH characteristics (Fast, Resilient, ACID,
Scalable, Huge) with restriction arrows between those that constrain each
other; the grey oval around Resilient and ACID is the scope of the CAP
theorem.  Figure 6 places two operating points on each link -- blue for
application front-end transactions and red for provisioning transactions --
showing where the concrete design decisions of section 3 land.

The model here is deliberately ordinal, like the paper's figures: a position
on a link is a number in [0, 1], where 0 means "the trade-off is resolved
entirely in favour of the first endpoint" and 1 favours the second endpoint.
Positions are derived from a :class:`~repro.core.config.UDRConfig` by
accumulating the shifts of the design decisions that are active in that
configuration, so changing a knob moves the dots exactly the way section 3
narrates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import (
    ClientType,
    LocationMode,
    PartitionPolicy,
    ReplicationMode,
    UDRConfig,
)
from repro.sim import units


class Characteristic(enum.Enum):
    """The five FRASH characteristics of the UDR NF."""

    FAST = "F"
    RESILIENT = "R"
    ACID = "A"
    SCALABLE = "S"
    HUGE = "H"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class TradeOffLink:
    """A restriction arrow between two characteristics."""

    first: Characteristic
    second: Characteristic
    weak: bool = False
    in_cap_scope: bool = False

    @property
    def name(self) -> str:
        return f"{self.first.value}-{self.second.value}"

    def __str__(self) -> str:
        marker = " (weak)" if self.weak else ""
        return f"{self.name}{marker}"


#: The links drawn in figure 5.  R-A is the CAP oval; H-F is the dotted weak link.
PAPER_LINKS: Tuple[TradeOffLink, ...] = (
    TradeOffLink(Characteristic.FAST, Characteristic.RESILIENT),
    TradeOffLink(Characteristic.FAST, Characteristic.ACID),
    TradeOffLink(Characteristic.RESILIENT, Characteristic.ACID,
                 in_cap_scope=True),
    TradeOffLink(Characteristic.FAST, Characteristic.SCALABLE),
    TradeOffLink(Characteristic.FAST, Characteristic.HUGE),
    TradeOffLink(Characteristic.SCALABLE, Characteristic.RESILIENT),
    TradeOffLink(Characteristic.HUGE, Characteristic.RESILIENT),
    TradeOffLink(Characteristic.HUGE, Characteristic.FAST, weak=True),
)


@dataclass
class DesignDecision:
    """One of section 3's decisions and the shift it causes on a link.

    ``shift`` is positive when the decision moves the operating point toward
    the link's *second* characteristic and negative when it moves it toward
    the first.  ``applies_to`` restricts a decision to one client class
    (figure 6 distinguishes red/PS from blue/FE points).
    """

    name: str
    link: TradeOffLink
    shift: float
    applies_to: Optional[ClientType] = None
    rationale: str = ""


@dataclass
class TradeOffPosition:
    """Where one client class sits on one link (0 = first end, 1 = second end)."""

    link: TradeOffLink
    client: ClientType
    position: float
    decisions: List[str] = field(default_factory=list)

    def favours(self) -> Characteristic:
        return self.link.first if self.position < 0.5 else self.link.second


class FrashGraph:
    """Builds figure 5 (links) and figure 6 (positions) from a configuration."""

    def __init__(self, links: Tuple[TradeOffLink, ...] = PAPER_LINKS):
        self.links = links

    def link(self, name: str) -> TradeOffLink:
        for link in self.links:
            if link.name == name:
                return link
        raise KeyError(f"unknown trade-off link {name!r}")

    def cap_scope_links(self) -> List[TradeOffLink]:
        return [link for link in self.links if link.in_cap_scope]

    # -- decisions active in a configuration --------------------------------------

    def decisions_for(self, config: UDRConfig) -> List[DesignDecision]:
        """The section-3 design decisions implied by ``config``."""
        decisions: List[DesignDecision] = []
        f_r = self.link("F-R")
        f_a = self.link("F-A")
        r_a = self.link("R-A")
        f_s = self.link("F-S")
        f_h = self.link("F-H")
        s_r = self.link("S-R")
        h_r = self.link("H-R")
        h_f = self.link("H-F")

        # 3.1: periodic disk dumps and geo-redundant copies cost a little F
        # for a lot of R.  Shorter periods (or sync commit) cost more.
        dump_cost = 0.15
        if config.synchronous_commit:
            dump_cost = 0.45
        elif config.checkpoint_period < 5 * units.MINUTE:
            dump_cost = 0.25
        decisions.append(DesignDecision(
            name="periodic disk dump + geo-redundant copies",
            link=f_r, shift=+dump_cost,
            rationale="section 3.1: protect RAM contents, slightly slower"))

        # 3.2: ACID only within one SE, READ_COMMITTED -> strongly favour F.
        decisions.append(DesignDecision(
            name="intra-SE ACID at READ_COMMITTED only",
            link=f_a, shift=-0.30,
            rationale="section 3.2: no cross-SE 2PC, reads never blocked"))

        # 3.2: single-master replication -> consistency over availability on
        # partition (unless multi-master is enabled).
        if config.partition_policy is PartitionPolicy.PREFER_CONSISTENCY:
            decisions.append(DesignDecision(
                name="writes only at the master copy",
                link=r_a, shift=+0.25,
                rationale="section 3.2: favour C over A on partition"))
        else:
            decisions.append(DesignDecision(
                name="multi-master writes during partitions",
                link=r_a, shift=-0.25,
                rationale="section 5: favour A, restore consistency later"))

        # 3.3.1: local data location resolution favours F despite S and H.
        if config.location_mode is LocationMode.PROVISIONED_MAPS:
            decisions.append(DesignDecision(
                name="local (provisioned) data location maps",
                link=f_s, shift=-0.20,
                rationale="section 3.3.1: resolve locally, scale-out syncs"))
            decisions.append(DesignDecision(
                name="identity-location maps use SE memory",
                link=f_h, shift=-0.10,
                rationale="section 3.3.1: maps take RAM from data"))
            decisions.append(DesignDecision(
                name="provisioned maps must sync on scale-out",
                link=s_r, shift=-0.20,
                rationale="section 3.4.2: new PoA unavailable during sync"))

        # 3.3.1: asynchronous replication favours F over A.
        if config.replication_mode is ReplicationMode.ASYNCHRONOUS:
            decisions.append(DesignDecision(
                name="asynchronous master-to-slave replication",
                link=f_a, shift=-0.25,
                rationale="section 3.3.1: commits do not wait for slaves"))
        elif config.replication_mode is ReplicationMode.DUAL_IN_SEQUENCE:
            decisions.append(DesignDecision(
                name="dual-in-sequence replication",
                link=f_a, shift=+0.20,
                rationale="section 5: pay one replica RTT for durability"))
        else:
            decisions.append(DesignDecision(
                name="quorum replication",
                link=f_a, shift=+0.35,
                rationale="section 5: consensus-grade durability, high latency"))

        # 3.3.2 / 3.3.3: slave reads allowed for FEs, disallowed for PS.
        if config.fe_reads_from_slave:
            decisions.append(DesignDecision(
                name="application FEs may read slave copies",
                link=f_a, shift=-0.15, applies_to=ClientType.APPLICATION_FE,
                rationale="section 3.3.2: local reads, possibly stale"))
        if not config.ps_reads_from_slave:
            decisions.append(DesignDecision(
                name="PS reads only the master copy",
                link=f_a, shift=+0.15, applies_to=ClientType.PROVISIONING,
                rationale="section 3.3.3: stale reads unacceptable for PS"))

        # 3.5: wide distribution lowers availability; selective placement
        # counteracts it.  Either way the H-F link stays weak.
        from repro.core.config import PlacementMode
        if config.placement is PlacementMode.HOME_REGION or \
                config.regulatory_pins:
            decisions.append(DesignDecision(
                name="selective (home region) placement",
                link=h_r, shift=+0.20,
                rationale="section 3.5: keep FE traffic off the backbone"))
        else:
            decisions.append(DesignDecision(
                name="hash/random placement across locations",
                link=h_r, shift=-0.20,
                rationale="section 3.5: more backbone crossings, lower R"))
        decisions.append(DesignDecision(
            name="O(log N) stateful location stage",
            link=h_f, shift=-0.05,
            rationale="section 3.5: negligible but non-zero lookup cost"))
        return decisions

    # -- figure 6 ---------------------------------------------------------------------

    def evaluate(self, config: UDRConfig,
                 client: ClientType) -> Dict[str, TradeOffPosition]:
        """Operating points of one client class on every link (figure 6)."""
        positions: Dict[str, TradeOffPosition] = {
            link.name: TradeOffPosition(link=link, client=client, position=0.5)
            for link in self.links}
        for decision in self.decisions_for(config):
            if decision.applies_to is not None and decision.applies_to is not client:
                continue
            position = positions[decision.link.name]
            position.position = min(1.0, max(0.0,
                                             position.position + decision.shift))
            position.decisions.append(decision.name)
        return positions

    def evaluate_both(self, config: UDRConfig
                      ) -> Dict[ClientType, Dict[str, TradeOffPosition]]:
        return {client: self.evaluate(config, client)
                for client in (ClientType.APPLICATION_FE,
                               ClientType.PROVISIONING)}
