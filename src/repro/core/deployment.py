"""Deployment layer: build the static shape of a UDR NF from its config.

:class:`DeploymentBuilder` turns a :class:`~repro.core.config.UDRConfig` into
a :class:`Deployment` -- the sites, blade clusters, storage elements with
geographically dispersed replica sets, replication machinery, LDAP server
pools and Points of Access with their data-location stage instances.  The
handle it returns is treated as immutable by the operation path; only the
lifecycle layer (:mod:`repro.core.lifecycle`) grows or mutates it, e.g. on
scale-out.

Splitting construction out of the operation path mirrors the paper's own
layering: the Points of Access and the data-location stage form the front
tier, the storage elements the back tier, and the request pipeline
(:mod:`repro.core.pipeline`) merely walks the structure built here.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from repro.cluster.balancer import PointOfAccess
from repro.cluster.blade_cluster import BladeCluster, ClusterLimits
from repro.cluster.saf import AvailabilityManager
from repro.directory.dit import DirectoryCatalog
from repro.directory.locator import (
    CachedLocator,
    ConsistentHashLocator,
    Locator,
    ProvisionedLocator,
)
from repro.directory.placement import (
    HomeRegionPlacement,
    PlacementCandidate,
    PlacementPolicy,
    RandomPlacement,
    RegulatoryPinning,
    RoundRobinPlacement,
)
from repro.net.network import Network
from repro.net.topology import NetworkTopology, Site
from repro.replication.asynchronous import AsyncReplicationChannel
from repro.replication.multimaster import MultiMasterCoordinator
from repro.replication.mux import ReplicationMux
from repro.replication.quorum import QuorumReplicator
from repro.replication.replica_set import ReplicaSet
from repro.replication.synchronous import DualInSequenceReplicator
from repro.storage.checkpoint import CheckpointPolicy
from repro.storage.partitioning import PartitionScheme
from repro.storage.storage_element import ReplicaRole, StorageElement
from repro.core.config import LocationMode, PlacementMode, UDRConfig

#: Record attribute consulted for each identity namespace.
IDENTITY_RECORD_ATTRIBUTE = {
    "imsi": "imsi",
    "msisdn": "msisdn",
    "impu": "impu",
    "impi": "impi",
}


def find_identity_location(elements: Mapping[str, StorageElement],
                           identity_type: str, value: str) -> Optional[str]:
    """Search every element's primary copies for an identity.

    This is the "querying multiple or even all the SE in the system" cost
    the paper warns about for cache-miss resolution; both the deployment
    handle and the cached locator's authority callback use it.
    """
    attribute = IDENTITY_RECORD_ATTRIBUTE.get(identity_type)
    if attribute is None:
        return None
    for element in elements.values():
        for copy in element.primary_copies:
            for key in copy.store.keys():
                record = copy.store.get(key)
                if isinstance(record, dict) and record.get(attribute) == value:
                    return element.name
    return None


class Deployment:
    """The built UDR deployment: structure, no behaviour.

    The operation pipeline reads this handle; the lifecycle layer is the
    only writer (fail-over, scale-out, recovery).  Fields are assigned once
    at construction; the collections they hold are shared, live views.
    """

    __slots__ = (
        "config", "topology", "network", "availability_manager", "clusters",
        "elements", "element_order", "scheme", "replica_sets", "coordinators",
        "channels", "replication_mux", "dual_replicators",
        "quorum_replicators", "locators", "points_of_access",
        "primary_partition_of_element", "placement_policy", "catalog",
        "change_stream", "history_store",
    )

    def __init__(self, *, config: UDRConfig, topology: NetworkTopology,
                 network: Network, availability_manager: AvailabilityManager,
                 clusters: List[BladeCluster],
                 elements: Dict[str, StorageElement],
                 element_order: List[str], scheme: PartitionScheme,
                 replica_sets: Dict[int, ReplicaSet],
                 coordinators: Dict[int, MultiMasterCoordinator],
                 channels: List[AsyncReplicationChannel],
                 replication_mux: ReplicationMux,
                 dual_replicators: Dict[int, DualInSequenceReplicator],
                 quorum_replicators: Dict[int, QuorumReplicator],
                 locators: Dict[str, Locator],
                 points_of_access: List[PointOfAccess],
                 primary_partition_of_element: Dict[str, int],
                 placement_policy: PlacementPolicy,
                 catalog: Optional[DirectoryCatalog] = None,
                 change_stream=None, history_store=None):
        self.config = config
        self.topology = topology
        self.network = network
        self.availability_manager = availability_manager
        self.clusters = clusters
        self.elements = elements
        self.element_order = element_order
        self.scheme = scheme
        self.replica_sets = replica_sets
        self.coordinators = coordinators
        self.channels = channels
        self.replication_mux = replication_mux
        self.dual_replicators = dual_replicators
        self.quorum_replicators = quorum_replicators
        self.locators = locators
        self.points_of_access = points_of_access
        self.primary_partition_of_element = primary_partition_of_element
        self.placement_policy = placement_policy
        self.catalog = catalog
        self.change_stream = change_stream
        self.history_store = history_store

    # -- lookups -------------------------------------------------------------------

    def element(self, name: str) -> StorageElement:
        return self.elements[name]

    def replica_set_of_element(self, element_name: str) -> ReplicaSet:
        """The replica set whose partition is mastered on ``element_name``."""
        return self.replica_sets[
            self.primary_partition_of_element[element_name]]

    def reachable_elements_from(self, site: Site) -> List[str]:
        return [name for name, element in self.elements.items()
                if element.available
                and self.network.reachable(site, element.site)]

    def authoritative_lookup(self, identity_type: str,
                             value: str) -> Optional[str]:
        """Search every element's primary copies for an identity (cache miss)."""
        return find_identity_location(self.elements, identity_type, value)

    # -- identity registration -----------------------------------------------------

    def register_identities(self, identities: Mapping[str, str],
                            element_name: str, all_locators: bool,
                            serving_locator: Optional[Locator] = None) -> None:
        if all_locators:
            for locator in self.locators.values():
                locator.register(identities, element_name)
        elif serving_locator is not None:
            serving_locator.register(identities, element_name)

    def deregister_identities(self, identities: Mapping[str, str]) -> None:
        for locator in self.locators.values():
            locator.deregister(identities)

    # -- placement -----------------------------------------------------------------

    def place_subscriber(self, profile_like, imsi: str) -> str:
        """The storage element a new subscription should be written to."""
        if self.config.location_mode is LocationMode.CONSISTENT_HASH:
            locator = next(iter(self.locators.values()))
            return locator.locate("imsi", imsi)
        candidates = [
            PlacementCandidate(
                element_name=element.name,
                region=element.site.region.name,
                has_capacity=element.has_capacity_for(1))
            for element in self.elements.values()]
        return self.placement_policy.choose(profile_like, candidates)

    def __repr__(self) -> str:
        return (f"<Deployment {self.config.name!r} "
                f"sites={len(self.topology)} elements={len(self.elements)} "
                f"poas={len(self.points_of_access)}>")


class DeploymentBuilder:
    """Build a :class:`Deployment` from a config, step by step.

    The builder stays alive for the deployment's lifetime: scale-out asks it
    for additional locators (:meth:`make_locator`) so new Points of Access
    are configured exactly like the original ones.
    """

    def __init__(self, config: UDRConfig, sim):
        self.config = config
        self.sim = sim
        self.topology = NetworkTopology()
        self.clusters: List[BladeCluster] = []
        self.elements: Dict[str, StorageElement] = {}
        self.element_order: List[str] = []
        self.replica_sets: Dict[int, ReplicaSet] = {}
        self.coordinators: Dict[int, MultiMasterCoordinator] = {}
        self.channels: List[AsyncReplicationChannel] = []
        self.replication_mux: Optional[ReplicationMux] = None
        self.dual_replicators: Dict[int, DualInSequenceReplicator] = {}
        self.quorum_replicators: Dict[int, QuorumReplicator] = {}
        self.locators: Dict[str, Locator] = {}
        self.points_of_access: List[PointOfAccess] = []
        self.primary_partition_of_element: Dict[str, int] = {}
        self.network: Optional[Network] = None
        self.scheme: Optional[PartitionScheme] = None

    def build(self) -> Deployment:
        config = self.config
        self._build_topology()
        self.network = Network(self.sim, self.topology,
                               name=f"{config.name}.net")
        availability_manager = AvailabilityManager(
            self.sim, name=f"{config.name}.amf")
        self._build_clusters_and_elements()
        self._build_replica_sets()
        catalog = self._build_catalog()
        change_stream, history_store = self._build_cdc()
        self._build_replicators()
        # Recovery notifications re-arm stalled replication links exactly
        # when their endpoint comes back, instead of a cadence retry.
        self.replication_mux.bind_availability(availability_manager)
        if change_stream is not None:
            # WAL retention never truncates past the CDC plane's slowest
            # tapped-LSN cursor.
            self.replication_mux.bind_cdc(change_stream.cursor_for)
        self._build_points_of_access()
        placement_policy = self._build_placement_policy()
        return Deployment(
            config=config, topology=self.topology, network=self.network,
            availability_manager=availability_manager, clusters=self.clusters,
            elements=self.elements, element_order=self.element_order,
            scheme=self.scheme, replica_sets=self.replica_sets,
            coordinators=self.coordinators, channels=self.channels,
            replication_mux=self.replication_mux,
            dual_replicators=self.dual_replicators,
            quorum_replicators=self.quorum_replicators, locators=self.locators,
            points_of_access=self.points_of_access,
            primary_partition_of_element=self.primary_partition_of_element,
            placement_policy=placement_policy, catalog=catalog,
            change_stream=change_stream, history_store=history_store)

    # -- build steps ---------------------------------------------------------------

    def _build_topology(self) -> None:
        for region in self.config.regions:
            self.topology.add_region(region)
            for index in range(1, self.config.sites_per_region + 1):
                self.topology.add_site(f"{region}-dc{index}", region)

    def _build_clusters_and_elements(self) -> None:
        checkpoint_policy = CheckpointPolicy(
            period=self.config.checkpoint_period,
            synchronous_commit=self.config.synchronous_commit)
        # Interleave elements across sites so consecutive elements sit at
        # different sites; the round-robin replica layout then places every
        # secondary copy at a different geographic location, as required.
        per_site_elements: List[List[StorageElement]] = []
        for site in self.topology.sites:
            cluster = BladeCluster(
                name=f"cluster-{site.name}", site=site,
                limits=ClusterLimits())
            self.clusters.append(cluster)
            site_elements = []
            for index in range(self.config.storage_elements_per_site):
                element = StorageElement(
                    name=f"se-{site.name}-{index}",
                    site=site,
                    subscriber_capacity=self.config.subscriber_capacity_per_element,
                    checkpoint_policy=checkpoint_policy)
                cluster.add_storage_element(element)
                self.elements[element.name] = element
                site_elements.append(element)
            for _ in range(self.config.ldap_servers_per_cluster):
                cluster.add_ldap_server()
            per_site_elements.append(site_elements)
        for index in range(self.config.storage_elements_per_site):
            for site_elements in per_site_elements:
                self.element_order.append(site_elements[index].name)

    def _build_replica_sets(self) -> None:
        self.scheme = PartitionScheme(num_partitions=len(self.element_order))
        for partition in self.scheme:
            replica_set = ReplicaSet(partition)
            primary_name = self.element_order[partition.index]
            replica_set.add_member(self.elements[primary_name],
                                   ReplicaRole.PRIMARY)
            self.primary_partition_of_element[primary_name] = partition.index
            count = len(self.element_order)
            for offset in range(1, self.config.replication_factor):
                secondary_name = self.element_order[
                    (partition.index + offset) % count]
                replica_set.add_member(self.elements[secondary_name],
                                       ReplicaRole.SECONDARY)
            self.replica_sets[partition.index] = replica_set
            self.coordinators[partition.index] = MultiMasterCoordinator(
                replica_set, enabled=self.config.multi_master_enabled())

    def _build_catalog(self) -> DirectoryCatalog:
        """The DIT catalog, maintained from every partition copy's WAL.

        Every member copy's log is subscribed, filtered to records the copy
        itself committed (``record.origin`` equals the copy's own name):
        replication applies preserve the originating master's name, so each
        logical commit folds into the catalog exactly once -- and the wiring
        keeps working across fail-over, when a promoted copy starts
        committing under its own name.
        """
        from repro.ldap.schema import SubscriberSchema
        catalog = DirectoryCatalog(SubscriberSchema.catalog_view,
                                   SubscriberSchema.INDEXED_ATTRIBUTES)

        def subscribe(partition_index: int, copy) -> None:
            copy_name = copy.transactions.name

            def on_commit(record) -> None:
                if record.origin == copy_name:
                    catalog.apply_commit(partition_index, record)

            copy.wal.subscribe(on_commit)

        for partition_index, replica_set in self.replica_sets.items():
            for _element, copy in replica_set.members():
                subscribe(partition_index, copy)
        return catalog

    def _build_cdc(self):
        """The CDC plane: change stream + audit history (``config.cdc``).

        Taps every member copy's commit log exactly like the catalog does
        (origin-filtered, so each logical commit folds once and the wiring
        survives fail-over).  ``cdc=None`` builds nothing: no
        subscriptions, no cursors, no retention pinning.
        """
        policy = self.config.cdc
        if policy is None:
            return None, None
        from repro.cdc import ChangeStream, HistoryStore
        stream = ChangeStream(retention_events=policy.stream_retention_events)
        history = HistoryStore(
            stream,
            max_entries_per_record=policy.history_max_entries_per_record)
        for partition_index, replica_set in self.replica_sets.items():
            for _element, copy in replica_set.members():
                stream.tap(partition_index, copy)
        return stream, history

    def _build_replicators(self) -> None:
        # The mux is built unconditionally (its start is gated by
        # ``config.replication_mux`` in the lifecycle layer) so tooling can
        # inspect one object either way; shipping stays aligned to the
        # replication-interval grid the polling channels would tick on.
        self.replication_mux = ReplicationMux(
            self.sim, self.network,
            ship_linger=self.config.replication_interval,
            frame_bytes=self.config.replication_frame_bytes,
            shipment_max_records=self.config.replication_shipment_max_records,
            wal_retention=self.config.wal_retention)
        for index, replica_set in self.replica_sets.items():
            for slave_name in replica_set.slave_names():
                channel = AsyncReplicationChannel(
                    self.sim, self.network, replica_set, slave_name,
                    interval=self.config.replication_interval)
                self.channels.append(channel)
                self.replication_mux.attach(channel)
            self.dual_replicators[index] = DualInSequenceReplicator(
                self.sim, self.network, replica_set)
            self.quorum_replicators[index] = QuorumReplicator(
                self.sim, self.network, replica_set,
                write_quorum=self.config.write_quorum)

    def _build_points_of_access(self) -> None:
        for cluster in self.clusters:
            locator = self.make_locator(cluster.name)
            self.locators[cluster.name] = locator
            poa = PointOfAccess(
                name=f"poa-{cluster.site.name}", site=cluster.site,
                ldap_pool=cluster.ldap_pool, locator=locator)
            self.points_of_access.append(poa)

    def make_locator(self, name: str) -> Locator:
        """A data-location stage instance for one cluster (also scale-out)."""
        mode = self.config.location_mode
        if mode is LocationMode.PROVISIONED_MAPS:
            return ProvisionedLocator()
        if mode is LocationMode.CACHED_MAPS:
            return CachedLocator(authority=self._authoritative_lookup,
                                 fanout=max(1, len(self.elements)))
        return ConsistentHashLocator(sorted(self.elements))

    def _authoritative_lookup(self, identity_type: str,
                              value: str) -> Optional[str]:
        # The builder's element dict is the same live dict the deployment
        # shares, so locators made before or after scale-out see all elements.
        return find_identity_location(self.elements, identity_type, value)

    def _build_placement_policy(self) -> PlacementPolicy:
        mode = self.config.placement
        if mode is PlacementMode.RANDOM:
            policy: PlacementPolicy = RandomPlacement(
                self.sim.rng("placement"))
        elif mode is PlacementMode.ROUND_ROBIN:
            policy = RoundRobinPlacement()
        else:
            policy = HomeRegionPlacement()
        if self.config.regulatory_pins:
            policy = RegulatoryPinning(self.config.regulatory_pins,
                                       fallback=policy)
        return policy
