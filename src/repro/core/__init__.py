"""The paper's primary contribution: the UDR NF and its FRASH trade-offs.

This package ties every substrate together:

* :mod:`repro.core.config` -- the declarative description of a UDR deployment
  and of the CAP/PACELC policy knobs the paper discusses (replication mode,
  behaviour on partition, slave reads per client type, checkpointing,
  data-location mode, placement policy).
* :mod:`repro.core.udr` -- the deployment builder and the simulated operation
  path from a client site through PoA, LDAP server, data location stage and
  storage element, with replication and failure handling.
* :mod:`repro.core.capacity` -- the section 3.5 capacity arithmetic.
* :mod:`repro.core.frash` -- the FRASH trade-off graph of figures 5 and 6.
* :mod:`repro.core.pacelc` -- PACELC classification of a configuration.
* :mod:`repro.core.availability` -- the analytic five-nines budget model.
"""

from repro.core.config import (
    AdaptiveLingerPolicy,
    ClientType,
    DispatchMode,
    LocationMode,
    PartitionPolicy,
    PlacementMode,
    Priority,
    RateLimit,
    ReplicationMode,
    RetryPolicy,
    ShedPolicy,
    UDRConfig,
)
from repro.core.udr import UDRNetworkFunction
from repro.core.deployment import Deployment, DeploymentBuilder
from repro.core.dispatcher import (
    AdaptiveLingerController,
    BatchDispatcher,
    DispatchTicket,
)
from repro.core.lifecycle import ClusterController
from repro.core.location_cache import LocationCacheGroup, PoALocationCache
from repro.core.pipeline import (
    BatchAdmissionStage,
    BatchItem,
    OperationContext,
    OperationFailure,
    OperationPipeline,
    RetryStage,
)
from repro.core.capacity import CapacityModel, CapacityReport
from repro.core.frash import (
    Characteristic,
    DesignDecision,
    FrashGraph,
    TradeOffLink,
    TradeOffPosition,
)
from repro.core.pacelc import PacelcClassification, classify
from repro.core.availability import AvailabilityModel

__all__ = [
    "AdaptiveLingerController",
    "AdaptiveLingerPolicy",
    "AvailabilityModel",
    "BatchAdmissionStage",
    "BatchDispatcher",
    "BatchItem",
    "CapacityModel",
    "CapacityReport",
    "Characteristic",
    "ClientType",
    "ClusterController",
    "Deployment",
    "DeploymentBuilder",
    "DesignDecision",
    "DispatchMode",
    "DispatchTicket",
    "FrashGraph",
    "LocationCacheGroup",
    "LocationMode",
    "OperationContext",
    "OperationFailure",
    "OperationPipeline",
    "PoALocationCache",
    "PacelcClassification",
    "PartitionPolicy",
    "PlacementMode",
    "Priority",
    "RateLimit",
    "ReplicationMode",
    "RetryPolicy",
    "RetryStage",
    "ShedPolicy",
    "TradeOffLink",
    "TradeOffPosition",
    "UDRConfig",
    "UDRNetworkFunction",
    "classify",
]
