"""The UDR network function: deployment builder and simulated operation path.

:class:`UDRNetworkFunction` assembles a complete UDC deployment from a
:class:`~repro.core.config.UDRConfig` -- sites, blade clusters, storage
elements with geographically dispersed replica sets, LDAP server pools,
Points of Access with their data-location stage instances, replication
channels, checkpointing and availability management -- and exposes the
operation path clients use:

``execute(request, client_type, client_site)`` is a simulation generator that
walks one LDAP request through the same stages the paper describes: reach the
closest PoA, spend LDAP server time, resolve the data location, reach the
storage element holding the chosen copy (master, or a slave for reads when
the client's policy allows it, or a fallback master under the multi-master
policy), run the intra-SE transaction, replicate according to the configured
mode, and return.  Every failure mode of interest (partitions, crashed
elements, syncing locators, write conflicts) maps to an LDAP result code, and
everything is measured in :attr:`metrics`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.balancer import PointOfAccess, closest_point_of_access
from repro.cluster.blade_cluster import BladeCluster, ClusterLimits
from repro.cluster.saf import AvailabilityManager
from repro.directory.errors import LocatorSyncInProgress, UnknownIdentity
from repro.directory.locator import (
    CachedLocator,
    ConsistentHashLocator,
    Locator,
    ProvisionedLocator,
)
from repro.directory.placement import (
    HomeRegionPlacement,
    PlacementCandidate,
    PlacementPolicy,
    RandomPlacement,
    RegulatoryPinning,
    RoundRobinPlacement,
)
from repro.directory.sync import MapSynchroniser
from repro.ldap.operations import LdapRequest, LdapResponse, ResultCode
from repro.ldap.schema import SubscriberSchema
from repro.ldap.server import OperationPlan, PlanKind
from repro.metrics.collector import MetricsRegistry
from repro.net.errors import NetworkError
from repro.net.network import Network
from repro.net.topology import NetworkTopology, Site
from repro.replication.asynchronous import AsyncReplicationChannel
from repro.replication.errors import (
    MasterUnreachable,
    NotEnoughReplicas,
    ReplicationError,
)
from repro.replication.multimaster import MultiMasterCoordinator
from repro.replication.quorum import QuorumReplicator
from repro.replication.replica_set import ReplicaSet
from repro.replication.restoration import ConsistencyRestoration, RestorationReport
from repro.replication.synchronous import DualInSequenceReplicator
from repro.sim.engine import Simulation
from repro.storage.checkpoint import CheckpointPolicy
from repro.storage.errors import (
    RecordNotFound,
    StorageElementUnavailable,
    WriteConflict,
)
from repro.storage.partitioning import PartitionScheme
from repro.storage.storage_element import ReplicaRole, StorageElement
from repro.subscriber.profile import SubscriberProfile
from repro.core.config import (
    ClientType,
    LocationMode,
    PartitionPolicy,
    PlacementMode,
    ReplicationMode,
    UDRConfig,
)

#: Record attribute consulted for each identity namespace (cached locator).
_IDENTITY_RECORD_ATTRIBUTE = {
    "imsi": "imsi",
    "msisdn": "msisdn",
    "impu": "impu",
    "impi": "impi",
}


class UDRNetworkFunction:
    """A complete, simulated UDR deployment."""

    def __init__(self, config: UDRConfig,
                 simulation: Optional[Simulation] = None):
        self.config = config
        self.sim = simulation or Simulation(seed=config.seed)
        self.metrics = MetricsRegistry(name=config.name)
        self.topology = NetworkTopology()
        self._build_topology()
        self.network = Network(self.sim, self.topology, name=f"{config.name}.net")
        self.availability_manager = AvailabilityManager(
            self.sim, name=f"{config.name}.amf")

        self.clusters: List[BladeCluster] = []
        self.elements: Dict[str, StorageElement] = {}
        self._element_order: List[str] = []
        self.replica_sets: Dict[int, ReplicaSet] = {}
        self.coordinators: Dict[int, MultiMasterCoordinator] = {}
        self.channels: List[AsyncReplicationChannel] = []
        self.dual_replicators: Dict[int, DualInSequenceReplicator] = {}
        self.quorum_replicators: Dict[int, QuorumReplicator] = {}
        self.locators: Dict[str, Locator] = {}
        self.points_of_access: List[PointOfAccess] = []
        self._primary_partition_of_element: Dict[str, int] = {}
        self._started = False

        self._build_clusters_and_elements()
        self._build_replica_sets()
        self._build_replicators()
        self._build_points_of_access()
        self.placement_policy = self._build_placement_policy()
        self.subscribers_loaded = 0

    # ------------------------------------------------------------------ build

    def _build_topology(self) -> None:
        for region in self.config.regions:
            self.topology.add_region(region)
            for index in range(1, self.config.sites_per_region + 1):
                self.topology.add_site(f"{region}-dc{index}", region)

    def _build_clusters_and_elements(self) -> None:
        checkpoint_policy = CheckpointPolicy(
            period=self.config.checkpoint_period,
            synchronous_commit=self.config.synchronous_commit)
        # Interleave elements across sites so consecutive elements sit at
        # different sites; the round-robin replica layout then places every
        # secondary copy at a different geographic location, as required.
        per_site_elements: List[List[StorageElement]] = []
        for site in self.topology.sites:
            cluster = BladeCluster(
                name=f"cluster-{site.name}", site=site,
                limits=ClusterLimits())
            self.clusters.append(cluster)
            site_elements = []
            for index in range(self.config.storage_elements_per_site):
                element = StorageElement(
                    name=f"se-{site.name}-{index}",
                    site=site,
                    subscriber_capacity=self.config.subscriber_capacity_per_element,
                    checkpoint_policy=checkpoint_policy)
                cluster.add_storage_element(element)
                self.elements[element.name] = element
                site_elements.append(element)
                self.availability_manager.manage(
                    element.name,
                    fail_action=element.crash,
                    repair_action=self._make_recovery_action(element))
            for _ in range(self.config.ldap_servers_per_cluster):
                cluster.add_ldap_server()
            per_site_elements.append(site_elements)
        for index in range(self.config.storage_elements_per_site):
            for site_elements in per_site_elements:
                self._element_order.append(site_elements[index].name)

    def _build_replica_sets(self) -> None:
        self.scheme = PartitionScheme(num_partitions=len(self._element_order))
        for partition in self.scheme:
            replica_set = ReplicaSet(partition)
            primary_name = self._element_order[partition.index]
            replica_set.add_member(self.elements[primary_name],
                                   ReplicaRole.PRIMARY)
            self._primary_partition_of_element[primary_name] = partition.index
            count = len(self._element_order)
            for offset in range(1, self.config.replication_factor):
                secondary_name = self._element_order[
                    (partition.index + offset) % count]
                replica_set.add_member(self.elements[secondary_name],
                                       ReplicaRole.SECONDARY)
            self.replica_sets[partition.index] = replica_set
            self.coordinators[partition.index] = MultiMasterCoordinator(
                replica_set, enabled=self.config.multi_master_enabled())

    def _build_replicators(self) -> None:
        for index, replica_set in self.replica_sets.items():
            for slave_name in replica_set.slave_names():
                self.channels.append(AsyncReplicationChannel(
                    self.sim, self.network, replica_set, slave_name,
                    interval=self.config.replication_interval))
            self.dual_replicators[index] = DualInSequenceReplicator(
                self.sim, self.network, replica_set)
            self.quorum_replicators[index] = QuorumReplicator(
                self.sim, self.network, replica_set,
                write_quorum=self.config.write_quorum)

    def _build_points_of_access(self) -> None:
        for cluster in self.clusters:
            locator = self._make_locator(cluster.name)
            self.locators[cluster.name] = locator
            poa = PointOfAccess(
                name=f"poa-{cluster.site.name}", site=cluster.site,
                ldap_pool=cluster.ldap_pool, locator=locator)
            self.points_of_access.append(poa)

    def _make_locator(self, name: str) -> Locator:
        mode = self.config.location_mode
        if mode is LocationMode.PROVISIONED_MAPS:
            return ProvisionedLocator()
        if mode is LocationMode.CACHED_MAPS:
            return CachedLocator(authority=self._authoritative_lookup,
                                 fanout=max(1, len(self.elements)))
        return ConsistentHashLocator(sorted(self.elements))

    def _build_placement_policy(self) -> PlacementPolicy:
        mode = self.config.placement
        if mode is PlacementMode.RANDOM:
            policy: PlacementPolicy = RandomPlacement(
                self.sim.rng("placement"))
        elif mode is PlacementMode.ROUND_ROBIN:
            policy = RoundRobinPlacement()
        else:
            policy = HomeRegionPlacement()
        if self.config.regulatory_pins:
            policy = RegulatoryPinning(self.config.regulatory_pins,
                                       fallback=policy)
        return policy

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Start background processes: replication channels and checkpoints."""
        if self._started:
            return
        self._started = True
        for channel in self.channels:
            channel.start()
        for element in self.elements.values():
            self.sim.process(self._checkpoint_loop(element),
                             name=f"checkpoint:{element.name}")

    def stop(self) -> None:
        for channel in self.channels:
            channel.stop()
        self._started = False

    def _checkpoint_loop(self, element: StorageElement):
        period = self.config.checkpoint_period
        while self._started:
            yield self.sim.timeout(period)
            if not element.available:
                continue
            for copy in element.copies:
                copy.checkpointer.checkpoint(timestamp=self.sim.now)

    # --------------------------------------------------------------- loading

    def load_subscriber_base(self, profiles) -> int:
        """Install an initial subscriber base without simulating traffic.

        Each profile is written to its chosen element's primary copy and to
        every secondary copy (so the deployment starts consistent), and its
        identities are registered with every data-location stage instance.
        Returns the number of profiles loaded.
        """
        loaded = 0
        for profile in profiles:
            element_name = self._place_subscriber(profile)
            replica_set = self._replica_set_of_element(element_name)
            record = self._commit_on_copy(replica_set.master_copy,
                                          profile.key, profile.to_record())
            for slave_name in replica_set.slave_names():
                replica_set.copy_on(slave_name).transactions.apply_log_record(
                    record)
            self._register_identities(profile.identities.as_mapping(),
                                      element_name, all_locators=True)
            loaded += 1
        self.subscribers_loaded += loaded
        return loaded

    @staticmethod
    def _commit_on_copy(copy, key, value):
        transaction = copy.transactions.begin()
        transaction.write(key, value)
        return transaction.commit()

    def _place_subscriber(self, profile: SubscriberProfile) -> str:
        if self.config.location_mode is LocationMode.CONSISTENT_HASH:
            locator = next(iter(self.locators.values()))
            return locator.locate("imsi", profile.identities.imsi)
        candidates = [
            PlacementCandidate(
                element_name=element.name,
                region=element.site.region.name,
                has_capacity=element.has_capacity_for(1))
            for element in self.elements.values()]
        return self.placement_policy.choose(profile, candidates)

    def _register_identities(self, identities: Dict[str, str],
                             element_name: str, all_locators: bool,
                             serving_locator: Optional[Locator] = None) -> None:
        if all_locators:
            for locator in self.locators.values():
                locator.register(identities, element_name)
        elif serving_locator is not None:
            serving_locator.register(identities, element_name)

    def _deregister_identities(self, identities: Dict[str, str]) -> None:
        for locator in self.locators.values():
            locator.deregister(identities)

    # ------------------------------------------------------------ inspection

    def element(self, name: str) -> StorageElement:
        return self.elements[name]

    def _replica_set_of_element(self, element_name: str) -> ReplicaSet:
        return self.replica_sets[
            self._primary_partition_of_element[element_name]]

    def reachable_elements_from(self, site: Site) -> List[str]:
        return [name for name, element in self.elements.items()
                if element.available
                and self.network.reachable(site, element.site)]

    def subscriber_record(self, imsi: str) -> Optional[dict]:
        """Direct (non-simulated) read of the authoritative record, for tests."""
        key = f"sub:{imsi}"
        for replica_set in self.replica_sets.values():
            copy = replica_set.master_copy
            value = copy.store.get(key)
            if value is not None:
                return value
        return None

    def _authoritative_lookup(self, identity_type: str,
                              value: str) -> Optional[str]:
        """Search every element's primary copies for an identity (cache miss)."""
        attribute = _IDENTITY_RECORD_ATTRIBUTE.get(identity_type)
        if attribute is None:
            return None
        for element in self.elements.values():
            for copy in element.primary_copies:
                for key in copy.store.keys():
                    record = copy.store.get(key)
                    if isinstance(record, dict) and record.get(attribute) == value:
                        return element.name
        return None

    # ------------------------------------------------------- fault injection

    def crash_element(self, name: str, auto_repair: bool = False) -> None:
        self.availability_manager.fail_component(name, auto_repair=auto_repair)

    def recover_element(self, name: str) -> None:
        self.availability_manager.repair_component(name)

    def _make_recovery_action(self, element: StorageElement) -> Callable[[], None]:
        """Recovery restores the disk image and then resyncs from peer copies.

        A real storage element comes back with the state of its last dump and
        catches up from the surviving copies before taking traffic again; the
        resync here copies any newer record versions from the most up-to-date
        available peer copy of each hosted partition.
        """
        def recover() -> None:
            element.recover(timestamp=self.sim.now)
            self._resynchronise_element(element)
        return recover

    def _resynchronise_element(self, element: StorageElement) -> None:
        for copy in element.copies:
            replica_set = self.replica_sets.get(copy.partition.index)
            if replica_set is None:
                continue
            best_name = replica_set.most_up_to_date(
                [name for name in replica_set.available_members()
                 if name != element.name])
            if best_name is None:
                continue
            source = replica_set.copy_on(best_name).store
            target = copy.store
            for key in source.keys():
                newest = source.latest(key)
                current = target.latest(key)
                if newest is None:
                    continue
                if current is None or current.commit_seq < newest.commit_seq:
                    target.apply_version(newest)

    def fail_over(self, element_name: str) -> Dict[int, str]:
        """Promote new masters for every partition mastered on ``element_name``."""
        promotions: Dict[int, str] = {}
        for index, replica_set in self.replica_sets.items():
            if replica_set.master_element_name != element_name:
                continue
            try:
                promotions[index] = replica_set.fail_over()
            except ReplicationError:
                continue
        return promotions

    # --------------------------------------------------------- restoration

    def restore_consistency(self, resolver=None) -> List[RestorationReport]:
        """Run post-partition consistency restoration over every partition."""
        restoration = ConsistencyRestoration(resolver=resolver)
        reports = []
        for index, replica_set in sorted(self.replica_sets.items()):
            reports.append(restoration.restore(replica_set,
                                               timestamp=self.sim.now))
            self.coordinators[index].clear_divergence()
        return reports

    # ------------------------------------------------------------- scale-out

    def scale_out_new_cluster(self, region: str,
                              synchroniser: Optional[MapSynchroniser] = None
                              ) -> Tuple[PointOfAccess, Optional[object]]:
        """Deploy an additional blade cluster (new PoA) in ``region``.

        With provisioned maps the new data-location stage instance must sync
        from a peer before the PoA can serve (returns the sync process);
        cached and hashed locators are ready immediately (returns ``None``).
        """
        site_index = len([s for s in self.topology.sites
                          if s.region.name == region]) + 1
        site = self.topology.add_site(f"{region}-dc{site_index}", region)
        cluster = BladeCluster(name=f"cluster-{site.name}", site=site)
        for _ in range(self.config.ldap_servers_per_cluster):
            cluster.add_ldap_server()
        self.clusters.append(cluster)
        locator = self._make_locator(cluster.name)
        self.locators[cluster.name] = locator
        poa = PointOfAccess(name=f"poa-{site.name}", site=site,
                            ldap_pool=cluster.ldap_pool, locator=locator)
        self.points_of_access.append(poa)
        sync_process = None
        if isinstance(locator, ProvisionedLocator):
            peer = next((existing for existing in self.locators.values()
                         if isinstance(existing, ProvisionedLocator)
                         and existing is not locator and not existing.syncing),
                        None)
            if peer is not None:
                # The PoA must not serve before its maps are in place, even
                # before the sync process gets its first slice of time.
                locator.begin_sync(peer.directory.total_entries())
                synchroniser = synchroniser or MapSynchroniser()
                source_site = self.clusters[0].site
                sync_process = self.sim.process(
                    synchroniser.sync(self.sim, self.network, source_site,
                                      site, peer, locator),
                    name=f"map-sync:{cluster.name}")
        return poa, sync_process

    # ------------------------------------------------------------ operations

    def execute(self, request: LdapRequest, client_type: ClientType,
                client_site: Site):
        """Generator: run one LDAP request through the deployment.

        Returns an :class:`~repro.ldap.operations.LdapResponse`; never raises
        for operational failures -- they are encoded as result codes, exactly
        as a directory server would answer.
        """
        start = self.sim.now
        outcomes = self.metrics.outcomes(client_type.value)
        latencies = self.metrics.latency(client_type.value)

        def finish(code: ResultCode, entries=None, served_from: str = "",
                   reason: str = "") -> LdapResponse:
            latency = self.sim.now - start
            response = LdapResponse(result_code=code, request=request,
                                    entries=list(entries or []),
                                    diagnostic_message=reason,
                                    latency=latency, served_from=served_from)
            if code.is_success:
                outcomes.record_success()
                latencies.record(latency)
            else:
                outcomes.record_failure(reason or code.name.lower())
            return response

        # 1. Reach the closest Point of Access.
        poa = closest_point_of_access(self.network, client_site,
                                      self.points_of_access)
        if poa is None:
            return finish(ResultCode.UNAVAILABLE, reason="no reachable PoA")
        try:
            yield from self.network.transfer(client_site, poa.site)
        except NetworkError:
            return finish(ResultCode.UNAVAILABLE, reason="client to PoA failed")

        # 2. LDAP server processing.
        server = poa.select_server()
        plan = server.plan(request)
        yield self.sim.timeout(server.service_time())
        if not plan.ok:
            yield from self._respond(poa.site, client_site)
            return finish(plan.error, reason=plan.diagnostic)

        # 3. Data location.
        try:
            located_element = self._locate(poa, plan)
        except LocatorSyncInProgress:
            yield from self._respond(poa.site, client_site)
            return finish(ResultCode.BUSY, reason="locator syncing")
        except UnknownIdentity:
            if plan.kind is not PlanKind.CREATE:
                yield from self._respond(poa.site, client_site)
                return finish(ResultCode.NO_SUCH_OBJECT,
                              reason="unknown identity")
            located_element = None

        # 4. Execute against the storage layer.
        try:
            if plan.kind is PlanKind.READ:
                result = yield from self._serve_read(
                    plan, poa, client_type, located_element)
            else:
                result = yield from self._serve_write(
                    plan, poa, client_type, located_element)
        except _OperationFailure as failure:
            yield from self._respond(poa.site, client_site)
            return finish(failure.code, reason=failure.reason)

        entries, served_from = result

        # 5. Response back to the client.
        yield from self._respond(poa.site, client_site)
        return finish(ResultCode.SUCCESS, entries=entries,
                      served_from=served_from)

    def _respond(self, poa_site: Site, client_site: Site):
        try:
            yield from self.network.transfer(poa_site, client_site)
        except NetworkError:
            # The response is lost; the client times out.  The operation's
            # outcome is still decided by what happened at the UDR.
            return

    # -- location ------------------------------------------------------------------

    def _locate(self, poa: PointOfAccess, plan: OperationPlan) -> str:
        return poa.locator.locate(plan.identity_type, plan.identity_value)

    # -- reads ------------------------------------------------------------------------

    def _serve_read(self, plan: OperationPlan, poa: PointOfAccess,
                    client_type: ClientType, located_element: str):
        replica_set = self._replica_set_of_element(located_element)
        consistency = self.metrics.consistency(client_type.value)
        key = f"sub:{self._imsi_of(plan, replica_set, located_element)}"
        copy_element = self._choose_read_element(replica_set, poa.site,
                                                 client_type)
        if copy_element is None:
            raise _OperationFailure(ResultCode.UNAVAILABLE,
                                    "no reachable copy for read")
        element = self.elements[copy_element]
        copy = replica_set.copy_on(copy_element)
        if poa.site != element.site:
            try:
                yield from self.network.round_trip(poa.site, element.site)
            except NetworkError:
                raise _OperationFailure(ResultCode.UNAVAILABLE,
                                        "copy unreachable") from None
        yield self.sim.timeout(
            element.service_times.transaction_time(reads=1, writes=0))
        transaction = copy.transactions.begin()
        try:
            record = transaction.read(key)
        except RecordNotFound:
            transaction.abort()
            raise _OperationFailure(ResultCode.NO_SUCH_OBJECT,
                                    "record not found") from None
        transaction.commit()
        served_from_slave = copy_element != replica_set.master_element_name
        stale, versions_behind = self._staleness(replica_set, copy_element, key)
        consistency.record_read(served_from_slave=served_from_slave,
                                stale=stale, versions_behind=versions_behind,
                                client_type=client_type.value)
        entry = dict(record)
        entry["dn"] = str(SubscriberSchema.subscriber_dn(entry.get("imsi", "")))
        if plan.requested_attributes:
            wanted = set(plan.requested_attributes) | {"dn"}
            entry = {name: value for name, value in entry.items()
                     if name in wanted}
        return [entry], copy_element

    def _imsi_of(self, plan: OperationPlan, replica_set: ReplicaSet,
                 located_element: str) -> str:
        if plan.identity_type == "imsi":
            return plan.identity_value
        # Non-IMSI identities: find the record through the master copy's
        # attribute values (the LDAP server would use the SE's local index).
        attribute = _IDENTITY_RECORD_ATTRIBUTE.get(plan.identity_type, "")
        copy = replica_set.copy_on(located_element)
        for key in copy.store.keys():
            record = copy.store.get(key)
            if isinstance(record, dict) and record.get(attribute) == \
                    plan.identity_value:
                return record.get("imsi", plan.identity_value)
        return plan.identity_value

    def _choose_read_element(self, replica_set: ReplicaSet, poa_site: Site,
                             client_type: ClientType) -> Optional[str]:
        reachable = [name for name in replica_set.member_names
                     if replica_set.element(name).available
                     and self.network.reachable(poa_site,
                                                replica_set.element(name).site)]
        if not reachable:
            return None
        master = replica_set.master_element_name
        if not self.config.reads_from_slave(client_type):
            return master if master in reachable else None
        # Prefer a copy co-located with the PoA, then the closest one.
        for name in reachable:
            if replica_set.element(name).site == poa_site:
                return name
        return min(reachable, key=lambda name: self.network.mean_one_way_latency(
            poa_site, replica_set.element(name).site))

    def _staleness(self, replica_set: ReplicaSet, copy_element: str,
                   key: str) -> Tuple[bool, int]:
        master_name = replica_set.master_element_name
        if master_name is None or copy_element == master_name:
            return False, 0
        master_version = replica_set.master_copy.store.latest(key)
        copy_version = replica_set.copy_on(copy_element).store.latest(key)
        if master_version is None:
            return False, 0
        if copy_version is None:
            return True, 1
        behind = master_version.commit_seq - copy_version.commit_seq
        return behind > 0, max(0, behind)

    # -- writes -------------------------------------------------------------------------

    def _serve_write(self, plan: OperationPlan, poa: PointOfAccess,
                     client_type: ClientType, located_element: Optional[str]):
        if plan.kind is PlanKind.CREATE and located_element is None:
            located_element = self._place_new_subscriber(plan)
        replica_set = self._replica_set_of_element(located_element)
        partition_index = self._primary_partition_of_element[located_element]
        coordinator = self.coordinators[partition_index]
        reachable = [name for name in replica_set.member_names
                     if replica_set.element(name).available
                     and self.network.reachable(poa.site,
                                                replica_set.element(name).site)]
        try:
            target_name = coordinator.choose_write_element(
                reachable, timestamp=self.sim.now)
        except MasterUnreachable as error:
            raise _OperationFailure(
                ResultCode.UNAVAILABLE,
                f"master unreachable ({error.reason})") from None
        element = self.elements[target_name]
        copy = replica_set.copy_on(target_name)
        if poa.site != element.site:
            try:
                yield from self.network.round_trip(poa.site, element.site)
            except NetworkError:
                raise _OperationFailure(ResultCode.UNAVAILABLE,
                                        "write copy unreachable") from None
        reads = 1 if plan.kind is PlanKind.UPDATE else 0
        yield self.sim.timeout(element.service_times.transaction_time(
            reads=reads, writes=1,
            synchronous_commit=self.config.synchronous_commit))

        key, record, prior_value = self._apply_write(plan, copy)

        # Synchronous replication modes add their commit-path cost here.
        if record is not None and \
                self.config.replication_mode is not ReplicationMode.ASYNCHRONOUS:
            yield from self._replicate_synchronously(partition_index, record)

        if plan.kind is PlanKind.CREATE:
            identities = {itype: plan.attributes.get(attr)
                          for itype, attr in _IDENTITY_RECORD_ATTRIBUTE.items()
                          if plan.attributes.get(attr)}
            self._register_identities(
                identities, located_element,
                all_locators=self.config.location_mode is
                LocationMode.PROVISIONED_MAPS,
                serving_locator=poa.locator)
        elif plan.kind is PlanKind.DELETE and isinstance(prior_value, dict):
            deleted_identities = {
                itype: prior_value.get(attr)
                for itype, attr in _IDENTITY_RECORD_ATTRIBUTE.items()
                if prior_value.get(attr)}
            self._deregister_identities(deleted_identities)

        return [], target_name

    def _place_new_subscriber(self, plan: OperationPlan) -> str:
        profile_like = _PlacementView(plan.attributes)
        if self.config.location_mode is LocationMode.CONSISTENT_HASH:
            locator = next(iter(self.locators.values()))
            return locator.locate("imsi", plan.attributes.get("imsi", ""))
        candidates = [
            PlacementCandidate(element_name=element.name,
                               region=element.site.region.name,
                               has_capacity=element.has_capacity_for(1))
            for element in self.elements.values()]
        return self.placement_policy.choose(profile_like, candidates)

    def _apply_write(self, plan: OperationPlan, copy):
        """Run the intra-SE transaction for a write plan.

        Returns ``(key, commit_record, prior_value)``; the commit record is
        ``None`` for no-op writes and ``prior_value`` is the record that
        existed before a DELETE (used to deregister its identities).  Raises
        :class:`_OperationFailure` on business errors.
        """
        transactions = copy.transactions
        key_imsi = plan.identity_value if plan.identity_type == "imsi" else None
        if plan.kind is PlanKind.CREATE:
            key = f"sub:{plan.attributes['imsi']}"
        else:
            if key_imsi is None:
                key_imsi = self._imsi_by_attribute(copy, plan)
                if key_imsi is None:
                    raise _OperationFailure(ResultCode.NO_SUCH_OBJECT,
                                            "record not found")
            key = f"sub:{key_imsi}"
        transaction = transactions.begin()
        prior_value = None
        try:
            if plan.kind is PlanKind.CREATE:
                if transaction.exists(key):
                    transaction.abort()
                    raise _OperationFailure(ResultCode.ENTRY_ALREADY_EXISTS,
                                            "entry already exists")
                transaction.write(key, dict(plan.attributes))
            elif plan.kind is PlanKind.UPDATE:
                if not transaction.exists(key):
                    transaction.abort()
                    raise _OperationFailure(ResultCode.NO_SUCH_OBJECT,
                                            "record not found")
                transaction.modify(key, plan.changes)
            else:  # DELETE
                prior_value = transaction.read_or_default(key)
                if prior_value is None:
                    transaction.abort()
                    raise _OperationFailure(ResultCode.NO_SUCH_OBJECT,
                                            "record not found")
                transaction.delete(key)
        except WriteConflict:
            raise _OperationFailure(ResultCode.BUSY,
                                    "write conflict, retry") from None
        record = transaction.commit(timestamp=self.sim.now)
        return key, record, prior_value

    def _imsi_by_attribute(self, copy, plan: OperationPlan) -> Optional[str]:
        attribute = _IDENTITY_RECORD_ATTRIBUTE.get(plan.identity_type, "")
        for key in copy.store.keys():
            record = copy.store.get(key)
            if isinstance(record, dict) and \
                    record.get(attribute) == plan.identity_value:
                return record.get("imsi")
        return None

    def _replicate_synchronously(self, partition_index: int, record):
        try:
            if self.config.replication_mode is ReplicationMode.DUAL_IN_SEQUENCE:
                yield from self.dual_replicators[partition_index] \
                    .replicate_commit(record)
            elif self.config.replication_mode is ReplicationMode.QUORUM:
                yield from self.quorum_replicators[partition_index] \
                    .replicate_commit(record)
        except NotEnoughReplicas:
            raise _OperationFailure(
                ResultCode.UNAVAILABLE,
                "not enough replicas for the configured durability") from None

    def __repr__(self) -> str:
        return (f"<UDRNetworkFunction {self.config.name!r} "
                f"sites={len(self.topology)} elements={len(self.elements)} "
                f"subscribers={self.subscribers_loaded}>")


class _OperationFailure(Exception):
    """Internal control-flow exception mapping failures to result codes."""

    def __init__(self, code: ResultCode, reason: str):
        super().__init__(reason)
        self.code = code
        self.reason = reason


class _PlacementView:
    """Adapts a new entry's attributes to the placement policy interface."""

    def __init__(self, attributes: Dict[str, object]):
        self.key = f"sub:{attributes.get('imsi', '')}"
        self.home_region = attributes.get("homeRegion")
        self.organisation = attributes.get("organisation")
