"""The UDR network function: a façade over three cooperating layers.

:class:`UDRNetworkFunction` assembles and drives a complete UDC deployment,
delegating to:

* :mod:`repro.core.deployment` -- :class:`~repro.core.deployment.DeploymentBuilder`
  builds the static structure (sites, blade clusters, storage elements with
  geographically dispersed replica sets, LDAP server pools, Points of Access
  with their data-location stage instances, replication channels) from a
  :class:`~repro.core.config.UDRConfig`;
* :mod:`repro.core.pipeline` -- :class:`~repro.core.pipeline.OperationPipeline`
  walks one LDAP request through the paper's stages (PoA, LDAP server time,
  data location with the per-PoA cache fast path, the intra-SE transaction,
  synchronous replication, response), encoding every failure mode of
  interest as an LDAP result code and recording everything in
  :attr:`metrics`;
* :mod:`repro.core.lifecycle` -- :class:`~repro.core.lifecycle.ClusterController`
  owns crash/recovery, fail-over, consistency restoration, scale-out and the
  background replication/checkpoint processes.

The façade keeps the attribute surface the experiments, front-ends and tests
grew against (``topology``, ``elements``, ``replica_sets``, ``locators``,
``execute``, ...); new code should reach for the layers directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.balancer import PointOfAccess
from repro.directory.sync import MapSynchroniser
from repro.ldap.operations import LdapRequest
from repro.metrics.collector import MetricsRegistry
from repro.net.topology import Site
from repro.replication.replica_set import ReplicaSet
from repro.replication.restoration import RestorationReport
from repro.sim.engine import Simulation
from repro.storage.storage_element import StorageElement
from repro.subscriber.profile import SubscriberProfile
from repro.core.config import ClientType, DispatchMode, Priority, UDRConfig
from repro.core.deployment import (
    IDENTITY_RECORD_ATTRIBUTE,
    Deployment,
    DeploymentBuilder,
)
from repro.core.dispatcher import BatchDispatcher, DispatchTicket
from repro.core.lifecycle import ClusterController
from repro.core.location_cache import LocationCacheGroup
from repro.core.pipeline import (
    OperationFailure,
    OperationPipeline,
    _PlacementView,
)

if False:  # pragma: no cover - type-checking only (avoids a circular import)
    from repro.api.qos import QoSProfile
    from repro.api.session import UDRClient

#: Backwards-compatible aliases for the pre-refactor private names.
_IDENTITY_RECORD_ATTRIBUTE = IDENTITY_RECORD_ATTRIBUTE
_OperationFailure = OperationFailure


class UDRNetworkFunction:
    """A complete, simulated UDR deployment."""

    def __init__(self, config: UDRConfig,
                 simulation: Optional[Simulation] = None):
        self.config = config
        self.sim = simulation or Simulation(seed=config.seed)
        self.metrics = MetricsRegistry(name=config.name)

        self.builder = DeploymentBuilder(config, self.sim)
        self.deployment: Deployment = self.builder.build()
        self.deployment.replication_mux.bind_metrics(self.metrics)
        if self.deployment.catalog is not None:
            self.deployment.catalog.bind_metrics(self.metrics)
        if self.deployment.change_stream is not None:
            self.deployment.change_stream.bind_metrics(self.metrics)
            self.deployment.history_store.bind_metrics(self.metrics)
        self.location_caches = LocationCacheGroup(
            capacity=config.location_cache_capacity)
        self.pipeline = OperationPipeline(self.sim, config, self.deployment,
                                          self.metrics, self.location_caches)
        self.controller = ClusterController(self.sim, config, self.deployment,
                                            self.builder, self.location_caches)
        self.membership = None
        if config.membership is not None:
            # Imported lazily like the reconciler: the detector is a consumer
            # of the built deployment, not a dependency of the build path.
            from repro.cluster.detector import MembershipPlane
            self.membership = MembershipPlane(self.sim, config,
                                              self.deployment,
                                              self.controller)
            self.controller.membership = self.membership.protocol
        self.dispatcher = BatchDispatcher(self.sim, config, self.pipeline,
                                          self.metrics)
        self.reconciler = None
        if config.cdc is not None and \
                config.cdc.reconcile_interval is not None:
            # Imported here like the session layer: repro.cdc is a consumer
            # of core structures, not a dependency of the build path.
            from repro.cdc import Reconciler
            self.reconciler = Reconciler(
                self.sim, self.deployment, config.cdc, self.metrics,
                history=self.deployment.history_store,
                pipeline=self.pipeline)

        # The attribute surface predating the layer split: live views of the
        # deployment handle's collections.
        deployment = self.deployment
        self.topology = deployment.topology
        self.network = deployment.network
        self.availability_manager = deployment.availability_manager
        self.clusters = deployment.clusters
        self.elements = deployment.elements
        self.scheme = deployment.scheme
        self.replica_sets = deployment.replica_sets
        self.coordinators = deployment.coordinators
        self.channels = deployment.channels
        self.replication_mux = deployment.replication_mux
        self.dual_replicators = deployment.dual_replicators
        self.quorum_replicators = deployment.quorum_replicators
        self.locators = deployment.locators
        self.points_of_access = deployment.points_of_access
        self.placement_policy = deployment.placement_policy
        self.catalog = deployment.catalog
        self.change_stream = deployment.change_stream
        self.history = deployment.history_store
        self.subscribers_loaded = 0
        #: Named client attachments (:meth:`attach`), the session API's
        #: per-caller handles.
        self.clients: Dict[str, "UDRClient"] = {}

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Start background processes: replication channels, checkpoints and
        (under ``dispatch_mode=DISPATCHER``) the batch dispatch loop."""
        self.controller.start()
        if self.config.dispatch_mode is DispatchMode.DISPATCHER:
            self.dispatcher.start()
        if self.reconciler is not None:
            self.reconciler.start()
        if self.membership is not None:
            self.membership.start()

    def stop(self) -> None:
        if self.membership is not None:
            self.membership.stop()
        if self.reconciler is not None:
            self.reconciler.stop()
        self.dispatcher.stop()
        self.controller.stop()
        self.pipeline.flush_metrics()

    @property
    def _started(self) -> bool:
        return self.controller.started

    # --------------------------------------------------------------- loading

    def load_subscriber_base(self, profiles) -> int:
        """Install an initial subscriber base without simulating traffic.

        Each profile is written to its chosen element's primary copy and to
        every secondary copy (so the deployment starts consistent), and its
        identities are registered with every data-location stage instance.
        Returns the number of profiles loaded.
        """
        deployment = self.deployment
        loaded = 0
        for profile in profiles:
            element_name = deployment.place_subscriber(
                profile, profile.identities.imsi)
            replica_set = deployment.replica_set_of_element(element_name)
            record = self._commit_on_copy(replica_set.master_copy,
                                          profile.key, profile.to_record())
            for slave_name in replica_set.slave_names():
                replica_set.copy_on(slave_name).transactions.apply_log_record(
                    record)
            deployment.register_identities(profile.identities.as_mapping(),
                                           element_name, all_locators=True)
            loaded += 1
        self.subscribers_loaded += loaded
        return loaded

    @staticmethod
    def _commit_on_copy(copy, key, value):
        transaction = copy.transactions.begin()
        transaction.write(key, value)
        return transaction.commit()

    # ------------------------------------------------------------ inspection

    def element(self, name: str) -> StorageElement:
        return self.elements[name]

    def _replica_set_of_element(self, element_name: str) -> ReplicaSet:
        return self.deployment.replica_set_of_element(element_name)

    @property
    def _primary_partition_of_element(self) -> Dict[str, int]:
        return self.deployment.primary_partition_of_element

    def reachable_elements_from(self, site: Site) -> List[str]:
        return self.deployment.reachable_elements_from(site)

    def subscriber_record(self, imsi: str) -> Optional[dict]:
        """Direct (non-simulated) read of the authoritative record, for tests."""
        key = f"sub:{imsi}"
        for replica_set in self.replica_sets.values():
            copy = replica_set.master_copy
            value = copy.store.get(key)
            if value is not None:
                return value
        return None

    def _authoritative_lookup(self, identity_type: str,
                              value: str) -> Optional[str]:
        return self.deployment.authoritative_lookup(identity_type, value)

    # ------------------------------------------------------- fault injection

    def crash_element(self, name: str, auto_repair: bool = False) -> None:
        self.controller.crash_element(name, auto_repair=auto_repair)

    def recover_element(self, name: str) -> None:
        self.controller.recover_element(name)

    def fail_over(self, element_name: str) -> Dict[int, str]:
        """Promote new masters for every partition mastered on ``element_name``."""
        return self.controller.fail_over(element_name)

    # --------------------------------------------------------- restoration

    def restore_consistency(self, resolver=None) -> List[RestorationReport]:
        """Run post-partition consistency restoration over every partition."""
        return self.controller.restore_consistency(resolver=resolver)

    # ------------------------------------------------------------- scale-out

    def scale_out_new_cluster(self, region: str,
                              synchroniser: Optional[MapSynchroniser] = None
                              ) -> Tuple[PointOfAccess, Optional[object]]:
        """Deploy an additional blade cluster (new PoA) in ``region``."""
        return self.controller.scale_out_new_cluster(
            region, synchroniser=synchroniser)

    # ------------------------------------------------------------ client API

    def attach(self, name: str, site: Site,
               client_type: ClientType = ClientType.APPLICATION_FE,
               qos: Optional["QoSProfile"] = None) -> "UDRClient":
        """Attach a named client to the deployment; the session front door.

        Returns the :class:`~repro.api.session.UDRClient` handle bound to
        ``site`` and ``client_type``, carrying ``qos`` as the default
        profile of every session it opens.  Attaching an already-attached
        name returns a fresh handle under the same name (the metrics tag
        is the name, so re-attachment keeps one series per caller).
        """
        # Imported here: the API layer imports core modules, so a module-
        # level import would be circular.
        from repro.api.session import UDRClient
        client = UDRClient(self, name, site, client_type=client_type,
                           qos=qos)
        self.clients[name] = client
        return client

    # ----------------------------------------- operations (deprecation shims)
    #
    # The four entry points below predate the session API.  They survive as
    # thin delegating shims -- new code attaches a client and issues typed
    # operations through a Session (see repro.api) -- and each call is
    # counted in ``api.legacy_calls`` so migrations can be tracked.

    def _count_legacy_call(self, entry_point: str) -> None:
        self.metrics.increment("api.legacy_calls")
        self.metrics.increment(f"api.legacy_calls.{entry_point}")

    def execute(self, request: LdapRequest, client_type: ClientType,
                client_site: Site):
        """Generator: run one LDAP request through the staged pipeline.

        .. deprecated:: PR 5
           Legacy shim; prefer ``udr.attach(...).session()`` and
           :meth:`repro.api.session.Session.call` with a typed operation.

        Returns an :class:`~repro.ldap.operations.LdapResponse`; never raises
        for operational failures -- they are encoded as result codes, exactly
        as a directory server would answer.
        """
        self._count_legacy_call("execute")
        return self.pipeline.execute(request, client_type, client_site)

    def submit(self, request: LdapRequest, client_type: ClientType,
               client_site: Site, priority: Optional[Priority] = None,
               source=None) -> DispatchTicket:
        """Enqueue one request into the arrival-driven batch dispatcher.

        Non-blocking: returns the request's
        :class:`~repro.core.dispatcher.DispatchTicket`; the caller waits by
        yielding ``ticket.event``, which triggers with the
        :class:`~repro.ldap.operations.LdapResponse` when the request's
        admission wave completes.  Waves form from the live arrival stream:
        dispatch happens when ``batch_max_size`` requests have gathered or
        the oldest has lingered ``batch_linger_ticks``, whichever first.
        With a ``source`` tag, the ticket joins the shared-wave respond
        path instead: wave-mates of one source share a single grouped
        response event and the caller reads ``ticket.response`` (see
        :meth:`~repro.core.dispatcher.BatchDispatcher.submit`).

        .. deprecated:: PR 5
           Legacy shim; prefer :meth:`repro.api.session.Session.submit`,
           whose futures carry per-session QoS (deadlines included).
        """
        self._count_legacy_call("submit")
        return self.dispatcher.submit(request, client_type, client_site,
                                      priority=priority, source=source)

    def call(self, request: LdapRequest, client_type: ClientType,
             client_site: Site, priority: Optional[Priority] = None,
             source=None):
        """Generator: run one request the way ``config.dispatch_mode`` says.

        ``DIRECT`` is plain call-and-wait (:meth:`execute`); ``DISPATCHER``
        enqueues into the batch dispatcher and waits for the response, so
        serial clients (front-ends, the provisioning system) transparently
        contribute to -- and benefit from -- wave formation.  Callers that
        identify themselves with a ``source`` tag are resumed through one
        grouped response event per wave (fewer simulator events when many
        of a front-end's requests complete together).

        .. deprecated:: PR 5
           Legacy shim; prefer :meth:`repro.api.session.Session.call`.
        """
        self._count_legacy_call("call")
        if self.config.dispatch_mode is DispatchMode.DISPATCHER:
            ticket = self.dispatcher.submit(request, client_type, client_site,
                                            priority=priority, source=source)
            if source is None:
                response = yield ticket.event
                return response
            while ticket.response is None:
                yield self.dispatcher.response_event(source)
            return ticket.response
        response = yield from self.pipeline.execute(request, client_type,
                                                    client_site)
        return response

    def execute_batch(self, items, client_type: Optional[ClientType] = None,
                      client_site: Optional[Site] = None):
        """Generator: run N LDAP requests through the pipeline together.

        ``items`` is a sequence of :class:`~repro.core.pipeline.BatchItem`
        (or bare requests, with ``client_type``/``client_site`` describing
        the whole batch).  Returns the responses in submission order;
        result codes and final store state match N sequential
        :meth:`execute` calls issued in the batch's admission order
        (submission order within each priority class -- see
        :meth:`OperationPipeline.execute_batch`), while the shared
        admission/LDAP/locate/respond hops are paid once per admission wave
        (``UDRConfig.batch_max_size``).

        .. deprecated:: PR 5
           Legacy shim; prefer
           :meth:`repro.api.session.Session.submit_many` /
           :meth:`~repro.api.session.Session.execute_batch`.
        """
        self._count_legacy_call("execute_batch")
        return self.pipeline.execute_batch(items, client_type=client_type,
                                           client_site=client_site)

    def flush_metrics(self) -> None:
        """Apply any batched metric records to :attr:`metrics` now."""
        self.pipeline.flush_metrics()

    def __repr__(self) -> str:
        return (f"<UDRNetworkFunction {self.config.name!r} "
                f"sites={len(self.topology)} elements={len(self.elements)} "
                f"subscribers={self.subscribers_loaded}>")
