"""Declarative configuration of a UDR deployment and its policy knobs.

Every design decision the paper discusses is a field of :class:`UDRConfig`,
so an experiment is "build two configs that differ in one knob, run the same
workload, compare":

* ``replication_mode`` -- asynchronous (baseline), dual-in-sequence
  (section 5's proposal) or Cassandra-style quorum.
* ``partition_policy`` -- favour Consistency (single master, the default) or
  Availability (multi-master during partitions) when the backbone splits.
* ``fe_reads_from_slave`` / ``ps_reads_from_slave`` -- section 3.3's asymmetric
  read policies for application front-ends versus the provisioning system.
* ``location_mode`` and ``placement`` -- provisioned identity-location maps
  (the paper's choice), cached maps, or consistent hashing; random or
  home-region selective placement.
* ``checkpoint_period`` / ``synchronous_commit`` -- the F-R disk-dump knob.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.sim import units


class ReplicationMode(enum.Enum):
    """How committed writes reach the other copies."""

    ASYNCHRONOUS = "asynchronous"
    DUAL_IN_SEQUENCE = "dual_in_sequence"
    QUORUM = "quorum"


class PartitionPolicy(enum.Enum):
    """Behaviour when the master copy is unreachable (CAP's moment of truth)."""

    PREFER_CONSISTENCY = "prefer_consistency"   # writes fail (paper default)
    PREFER_AVAILABILITY = "prefer_availability"  # multi-master, merge later


class LocationMode(enum.Enum):
    """How Points of Access resolve identities to storage elements."""

    PROVISIONED_MAPS = "provisioned_maps"
    CACHED_MAPS = "cached_maps"
    CONSISTENT_HASH = "consistent_hash"


class PlacementMode(enum.Enum):
    """How new subscriptions are assigned to storage elements."""

    RANDOM = "random"
    ROUND_ROBIN = "round_robin"
    HOME_REGION = "home_region"


class ClientType(enum.Enum):
    """The two classes of UDR clients the paper distinguishes."""

    APPLICATION_FE = "application_fe"
    PROVISIONING = "provisioning"


@dataclass
class UDRConfig:
    """Everything needed to build a UDR NF deployment.

    The defaults describe a small three-country deployment suitable for
    simulation: one site per country, one blade cluster per site, two storage
    elements per cluster, replication factor 2.  The paper-scale limits (16
    SEs and 32 LDAP servers per cluster, 256 SEs per UDR) live in the
    capacity model, not here -- simulating 512 million subscribers is neither
    necessary nor useful for reproducing the trade-offs.
    """

    # -- footprint -------------------------------------------------------------
    regions: Tuple[str, ...] = ("spain", "sweden", "germany")
    sites_per_region: int = 1
    storage_elements_per_site: int = 2
    ldap_servers_per_cluster: int = 4
    subscriber_capacity_per_element: int = 2_000_000

    # -- replication / CAP policies ---------------------------------------------
    replication_factor: int = 2
    replication_mode: ReplicationMode = ReplicationMode.ASYNCHRONOUS
    partition_policy: PartitionPolicy = PartitionPolicy.PREFER_CONSISTENCY
    write_quorum: int = 2
    replication_interval: float = 50 * units.MILLISECOND
    fe_reads_from_slave: bool = True
    ps_reads_from_slave: bool = False

    # -- durability ---------------------------------------------------------------
    checkpoint_period: float = 15 * units.MINUTE
    synchronous_commit: bool = False

    # -- data location / placement ---------------------------------------------------
    location_mode: LocationMode = LocationMode.PROVISIONED_MAPS
    placement: PlacementMode = PlacementMode.HOME_REGION
    regulatory_pins: Dict[str, str] = field(default_factory=dict)
    #: Per-PoA read-through cache in front of the data-location stage; see
    #: :mod:`repro.core.location_cache`.  Capacity 0 means unbounded.
    location_cache_enabled: bool = True
    location_cache_capacity: int = 0

    # -- observability ------------------------------------------------------------------
    #: Completed requests buffered before the pipeline's metric batch is
    #: flushed to the registry; 1 (the default) flushes per request.
    metrics_batch_size: int = 1

    # -- misc ---------------------------------------------------------------------------
    seed: int = 0
    name: str = "udr"

    def __post_init__(self):
        if not self.regions:
            raise ValueError("need at least one region")
        if self.sites_per_region < 1:
            raise ValueError("need at least one site per region")
        if self.storage_elements_per_site < 1:
            raise ValueError("need at least one storage element per site")
        if self.ldap_servers_per_cluster < 1:
            raise ValueError("need at least one LDAP server per cluster")
        total_elements = (len(self.regions) * self.sites_per_region
                          * self.storage_elements_per_site)
        if not 1 <= self.replication_factor <= total_elements:
            raise ValueError(
                f"replication factor {self.replication_factor} impossible "
                f"with {total_elements} storage elements")
        if self.write_quorum < 1 or self.write_quorum > self.replication_factor:
            raise ValueError(
                "write quorum must be between 1 and the replication factor")
        if self.replication_interval <= 0:
            raise ValueError("replication interval must be positive")
        if self.checkpoint_period <= 0:
            raise ValueError("checkpoint period must be positive")
        if self.location_cache_capacity < 0:
            raise ValueError("location cache capacity cannot be negative")
        if self.metrics_batch_size < 1:
            raise ValueError("metrics batch size must be at least 1")

    # -- derived quantities ------------------------------------------------------------

    @property
    def total_sites(self) -> int:
        return len(self.regions) * self.sites_per_region

    @property
    def total_storage_elements(self) -> int:
        return self.total_sites * self.storage_elements_per_site

    @property
    def total_subscriber_capacity(self) -> int:
        return (self.total_storage_elements
                * self.subscriber_capacity_per_element)

    def reads_from_slave(self, client_type: ClientType) -> bool:
        """The paper's asymmetric read policy (section 3.3.2 vs 3.3.3)."""
        if client_type is ClientType.APPLICATION_FE:
            return self.fe_reads_from_slave
        return self.ps_reads_from_slave

    def multi_master_enabled(self) -> bool:
        return self.partition_policy is PartitionPolicy.PREFER_AVAILABILITY

    def replace(self, **changes) -> "UDRConfig":
        """A copy of the configuration with some fields changed."""
        from dataclasses import replace as dataclass_replace
        return dataclass_replace(self, **changes)
