"""Declarative configuration of a UDR deployment and its policy knobs.

Every design decision the paper discusses is a field of :class:`UDRConfig`,
so an experiment is "build two configs that differ in one knob, run the same
workload, compare":

* ``replication_mode`` -- asynchronous (baseline), dual-in-sequence
  (section 5's proposal) or Cassandra-style quorum.
* ``partition_policy`` -- favour Consistency (single master, the default) or
  Availability (multi-master during partitions) when the backbone splits.
* ``fe_reads_from_slave`` / ``ps_reads_from_slave`` -- section 3.3's asymmetric
  read policies for application front-ends versus the provisioning system.
* ``location_mode`` and ``placement`` -- provisioned identity-location maps
  (the paper's choice), cached maps, or consistent hashing; random or
  home-region selective placement.
* ``checkpoint_period`` / ``synchronous_commit`` -- the F-R disk-dump knob.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.sim import units


class ReplicationMode(enum.Enum):
    """How committed writes reach the other copies."""

    ASYNCHRONOUS = "asynchronous"
    DUAL_IN_SEQUENCE = "dual_in_sequence"
    QUORUM = "quorum"


class PartitionPolicy(enum.Enum):
    """Behaviour when the master copy is unreachable (CAP's moment of truth)."""

    PREFER_CONSISTENCY = "prefer_consistency"   # writes fail (paper default)
    PREFER_AVAILABILITY = "prefer_availability"  # multi-master, merge later


class LocationMode(enum.Enum):
    """How Points of Access resolve identities to storage elements."""

    PROVISIONED_MAPS = "provisioned_maps"
    CACHED_MAPS = "cached_maps"
    CONSISTENT_HASH = "consistent_hash"


class PlacementMode(enum.Enum):
    """How new subscriptions are assigned to storage elements."""

    RANDOM = "random"
    ROUND_ROBIN = "round_robin"
    HOME_REGION = "home_region"


class ClientType(enum.Enum):
    """The two classes of UDR clients the paper distinguishes."""

    APPLICATION_FE = "application_fe"
    PROVISIONING = "provisioning"


class DispatchMode(enum.Enum):
    """How individual client requests reach the operation pipeline.

    ``DIRECT`` (the default) is call-and-wait: every ``execute()`` walks the
    pipeline on its own, and batching only happens when a caller hands the
    pipeline an explicit batch.  ``DISPATCHER`` routes individual requests
    through the :class:`~repro.core.dispatcher.BatchDispatcher`: front-ends
    enqueue and the dispatcher forms admission waves by *actually waiting*
    up to ``batch_linger_ticks`` for late arrivals (or until
    ``batch_max_size`` requests have gathered), which is the continuous-load
    regime the paper's telecom workloads assume.
    """

    DIRECT = "direct"
    DISPATCHER = "dispatcher"


class Priority(enum.Enum):
    """Priority classes of batched admission (highest first).

    Signalling procedures (application front-ends serving live network
    traffic) outrank provisioning changes, which outrank bulk provisioning
    runs.  The batch admission stage dequeues the classes with a weighted
    round-robin (``UDRConfig.priority_weights``) so lower classes still make
    progress under load, but FIFO order is kept *within* each class.
    """

    SIGNALLING = "signalling"
    PROVISIONING = "provisioning"
    BULK = "bulk"

    @classmethod
    def for_client(cls, client_type: ClientType) -> "Priority":
        """The default class of a request when the caller sets none."""
        if client_type is ClientType.APPLICATION_FE:
            return cls.SIGNALLING
        return cls.PROVISIONING


#: Default weighted-round-robin quanta of the batch admission dequeue.
DEFAULT_PRIORITY_WEIGHTS: Dict[str, int] = {
    Priority.SIGNALLING.value: 4,
    Priority.PROVISIONING.value: 2,
    Priority.BULK.value: 1,
}


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with backoff ticks on transient result codes.

    Applied by the batch pipeline's :class:`~repro.core.pipeline.RetryStage`:
    a failed attempt whose code is in ``retry_codes`` waits
    ``backoff_tick * backoff_multiplier**(attempt-1)`` virtual seconds and is
    re-driven.  With ``relocate_on_retry`` (the default) the retry re-runs
    data location from scratch, so a retry after a fail-over -- which
    invalidated the PoA caches -- resolves the fresh location instead of the
    one the failed attempt used.

    ``retry_codes`` holds :class:`~repro.ldap.operations.ResultCode` *names*
    (strings), keeping the configuration layer free of LDAP imports.
    """

    max_retries: int = 2
    backoff_tick: float = 5 * units.MILLISECOND
    backoff_multiplier: float = 2.0
    retry_codes: Tuple[str, ...] = ("BUSY", "UNAVAILABLE", "FENCED")
    relocate_on_retry: bool = True

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.backoff_tick < 0:
            raise ValueError("backoff tick cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff multiplier must be at least 1")
        # Deferred import to keep the configuration layer free of LDAP
        # imports at module load; a typo here would otherwise silently
        # disable retries.
        from repro.ldap.operations import ResultCode
        known = {code.name for code in ResultCode}
        for name in self.retry_codes:
            if name not in known:
                raise ValueError(f"unknown result code {name!r} in "
                                 f"retry_codes")

    def retries(self, code) -> bool:
        """Whether ``code`` (a ResultCode) is transient under this policy."""
        return code.name in self.retry_codes

    def backoff(self, attempt: int) -> float:
        """The wait before retry number ``attempt`` (1-based)."""
        return self.backoff_tick * self.backoff_multiplier ** (attempt - 1)


@dataclass(frozen=True)
class RateLimit:
    """A token-bucket admission quota: sustained rate plus burst headroom.

    Carried by :class:`~repro.api.qos.QoSProfile` and enforced per
    :class:`~repro.api.session.UDRClient` at ``session.submit``: the bucket
    refills at ``rate_per_second`` (virtual time) up to ``burst`` tokens,
    and every admitted operation spends one.  An operation arriving with an
    empty bucket is answered ``BUSY`` immediately -- it never reaches the
    dispatcher queue or the pipeline, which is what keeps a misbehaving
    client from expiring at wave formation instead of being stopped at the
    front door.
    """

    rate_per_second: float
    burst: int = 1

    def __post_init__(self):
        if self.rate_per_second <= 0:
            raise ValueError("rate_per_second must be positive")
        if self.burst < 1:
            raise ValueError("burst must be at least 1 token")


@dataclass(frozen=True)
class ShedPolicy:
    """Sustained-overload shedding for the arrival-driven dispatcher.

    The dispatcher tracks an EWMA of its queue depth (one ``alpha``-weighted
    observation per submit and per wave).  When the smoothed depth climbs to
    ``trip_depth`` the deployment enters **shed mode**; it leaves again only
    once the smoothed depth has fallen back to ``clear_depth``.  Keeping
    ``clear_depth`` well below ``trip_depth`` is the hysteresis that stops
    the mode from chattering at the boundary.  While shedding:

    * reads may be served from slave replicas even for client types whose
      configured read policy is master-only (capacity over freshness);
    * bulk-class tickets are deferred from wave membership while any
      higher-class work is queued (they are never dropped, and a wave with
      only bulk work still dispatches it, so bulk cannot be starved into
      expiry by an empty signalling queue).
    """

    alpha: float = 0.2
    trip_depth: float = 64.0
    clear_depth: float = 16.0

    def __post_init__(self):
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.trip_depth <= 0:
            raise ValueError("trip_depth must be positive")
        if not 0 <= self.clear_depth < self.trip_depth:
            raise ValueError("clear_depth must be non-negative and below "
                             "trip_depth (the hysteresis band)")


@dataclass(frozen=True)
class AdaptiveLingerPolicy:
    """Load-adaptive linger budgets for the arrival-driven dispatcher.

    The dispatcher tracks an EWMA of observed inter-arrival times and picks
    each wave's linger budget between ``min_ticks`` and ``max_ticks`` (of
    :data:`~repro.core.pipeline.BATCH_LINGER_TICK` each):

    * **saturated** traffic (a standing queue, inter-arrivals near zero)
      needs no lingering -- waves fill on their own, the budget collapses to
      the expected remaining fill time, i.e. immediately;
    * **trickle** traffic that could not fill a meaningful fraction of a
      wave even by waiting ``max_ticks`` stops paying the linger latency tax
      and dispatches at ``min_ticks``;
    * in between, the budget is the expected time for the wave to fill,
      clamped to the configured bounds.

    ``fill_threshold`` is the fraction of ``batch_max_size`` that lingering
    ``max_ticks`` must be expected to gather before lingering is considered
    worth its latency at all (the low-rate rows of the e16 sweep, where the
    static optimum is no lingering, motivate the cut-off).  ``alpha`` is the
    EWMA smoothing factor applied to each new inter-arrival observation.
    """

    min_ticks: int = 0
    max_ticks: int = 50
    alpha: float = 0.2
    fill_threshold: float = 0.5

    def __post_init__(self):
        if self.min_ticks < 0:
            raise ValueError("min_ticks cannot be negative")
        if self.max_ticks < self.min_ticks:
            raise ValueError("max_ticks cannot be below min_ticks")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 < self.fill_threshold <= 1.0:
            raise ValueError("fill_threshold must be in (0, 1]")


@dataclass(frozen=True)
class CdcPolicy:
    """Change-data-capture plane: WAL-tap stream, audit history, reconciler.

    Setting ``UDRConfig.cdc`` builds the CDC plane
    (:mod:`repro.cdc`): a :class:`~repro.cdc.stream.ChangeStream` taps every
    partition copy's commit log into ordered, idempotent-by-commit-seq
    change events, a :class:`~repro.cdc.history.HistoryStore` keeps the
    per-record who/what/when audit trail past ``wal_retention``, and --
    with ``reconcile_interval`` set -- a
    :class:`~repro.cdc.reconcile.Reconciler` process periodically diffs
    master vs replica vs locator state with merkle-style partition digests
    and repairs drift in place.  ``None`` (the default) builds none of it:
    no WAL subscriptions, no retention pinning, no background process --
    behaviour is bit-identical to not having the feature.
    """

    #: Virtual seconds between reconciliation rounds; ``None`` keeps the
    #: stream and history without the background reconciler.
    reconcile_interval: Optional[float] = None
    #: Buckets of the merkle-style partition digest (mismatches narrow to
    #: differing buckets, so repairs only walk suspect keys).
    digest_buckets: int = 16
    #: Simulated cost of digesting one partition copy.
    digest_time: float = 1 * units.MILLISECOND
    #: Simulated cost of repairing one confirmed-drift key.
    repair_time: float = 0.5 * units.MILLISECOND
    #: Exclude a slave element from read-path replica choice while its copy
    #: is under repair (reads cannot observe half-repaired state).
    quarantine_reads: bool = True
    #: Per-record cap on retained audit entries; ``None`` keeps everything.
    history_max_entries_per_record: Optional[int] = None
    #: Per-partition cap on retained stream events; ``None`` keeps
    #: everything (replay-from-any-checkpoint needs the full stream).
    stream_retention_events: Optional[int] = None

    def __post_init__(self):
        if self.reconcile_interval is not None and self.reconcile_interval <= 0:
            raise ValueError("reconcile interval must be positive")
        if self.digest_buckets < 1:
            raise ValueError("digest needs at least one bucket")
        if self.digest_time < 0:
            raise ValueError("digest time cannot be negative")
        if self.repair_time < 0:
            raise ValueError("repair time cannot be negative")
        if self.history_max_entries_per_record is not None and \
                self.history_max_entries_per_record < 1:
            raise ValueError("history cap must be at least 1 entry")
        if self.stream_retention_events is not None and \
                self.stream_retention_events < 1:
            raise ValueError("stream retention must be at least 1 event")


@dataclass(frozen=True)
class MembershipPolicy:
    """Membership-and-fencing plane: lease detector, quorum promotion, epochs.

    Setting ``UDRConfig.membership`` builds the
    :class:`~repro.cluster.detector.MembershipPlane`: every site observes
    every storage element with heartbeats on the sim clock, a master copy
    holds a **lease** it renews only while its own site can reach a majority
    of sites, and fail-over becomes a quorum-gated
    :class:`~repro.cluster.detector.PromotionProtocol` that stamps each
    promotion with a monotonically increasing **epoch** used to fence the
    deposed master end-to-end (storage commit, replication shipment, CDC).
    ``None`` (the default) keeps the oracle ``fail_over`` entry point
    bit-identical to not having the feature: no heartbeat processes, no
    epoch stamping, no fencing checks that can fire.
    """

    #: Virtual seconds between heartbeat/lease rounds.
    heartbeat_interval: float = 100 * units.MILLISECOND
    #: Consecutive missed heartbeats before an observer suspects an element
    #: -- and, symmetrically, consecutive failed lease renewals before a
    #: master copy fences itself.  The self-fencing side is what makes the
    #: protocol split-brain-proof: a deposed master stops accepting writes
    #: no later than the instant a quorum could first agree to promote.
    lease_ticks: int = 3
    #: Sites that must agree the master is gone before promotion; ``None``
    #: derives a strict majority of ``total_sites``.
    quorum: Optional[int] = None
    #: Bounded wait for the promotion vote round-trips.  Ballots are
    #: collected concurrently and the coordinator promotes as soon as a
    #: quorum has answered; a ballot lost on the backbone must not stall
    #: the promotion for the link's full loss timeout (1 s on the default
    #: WAN profile -- several lease windows), so the vote wait is capped
    #: here and an expired round simply retries on the next heartbeat.
    vote_timeout: float = 300 * units.MILLISECOND
    #: Re-home the deposed master's acked-but-unshipped tail onto the new
    #: master when the old one rejoins (replayed as fresh current-epoch
    #: commits, skipping keys the new epoch already superseded).
    rejoin_handoff: bool = True

    def __post_init__(self):
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if self.lease_ticks < 1:
            raise ValueError("lease_ticks must be at least 1")
        if self.quorum is not None and self.quorum < 1:
            raise ValueError("quorum must be at least 1 site")
        if self.vote_timeout <= 0:
            raise ValueError("vote timeout must be positive")

    def quorum_for(self, total_sites: int) -> int:
        """The promotion quorum for a deployment of ``total_sites`` sites."""
        if self.quorum is not None:
            return min(self.quorum, total_sites)
        return total_sites // 2 + 1


@dataclass
class UDRConfig:
    """Everything needed to build a UDR NF deployment.

    The defaults describe a small three-country deployment suitable for
    simulation: one site per country, one blade cluster per site, two storage
    elements per cluster, replication factor 2.  The paper-scale limits (16
    SEs and 32 LDAP servers per cluster, 256 SEs per UDR) live in the
    capacity model, not here -- simulating 512 million subscribers is neither
    necessary nor useful for reproducing the trade-offs.
    """

    # -- footprint -------------------------------------------------------------
    regions: Tuple[str, ...] = ("spain", "sweden", "germany")
    sites_per_region: int = 1
    storage_elements_per_site: int = 2
    ldap_servers_per_cluster: int = 4
    subscriber_capacity_per_element: int = 2_000_000

    # -- replication / CAP policies ---------------------------------------------
    replication_factor: int = 2
    replication_mode: ReplicationMode = ReplicationMode.ASYNCHRONOUS
    partition_policy: PartitionPolicy = PartitionPolicy.PREFER_CONSISTENCY
    write_quorum: int = 2
    replication_interval: float = 50 * units.MILLISECOND
    #: Drive asynchronous replication through the site-pair
    #: :class:`~repro.replication.mux.ReplicationMux`: wake on commit
    #: instead of polling every channel each interval, and ship all
    #: channels of one ``(master site, slave site)`` link as a single
    #: network transfer per round.  Shipping stays aligned to the
    #: ``replication_interval`` grid, so replica freshness (and the
    #: E04/E05 staleness/loss semantics) is unchanged.  ``False`` restores
    #: one polling process per ``(partition, slave)`` channel.
    replication_mux: bool = True
    #: Framing charge (bytes) of one multiplexed shipment, paid once per
    #: link per round on top of the per-record bytes.
    replication_frame_bytes: int = 256
    #: Per-shipment backpressure: at most this many records ride one
    #: ``(master site, slave site)`` shipment of the mux, so a fat link
    #: burst splits into bounded frames over consecutive rounds instead of
    #: one huge transfer.  ``None`` (the default) keeps shipments unbounded
    #: (each member channel still honours its own ``batch_limit``).
    replication_shipment_max_records: Optional[int] = None
    #: WAL retention: once a master copy's commit log holds more than this
    #: many records, the replication mux truncates it through the slowest
    #: shipped-LSN cursor of its outgoing channels (capped at the
    #: durability watermark, so crash/checkpoint semantics are untouched),
    #: bounding log memory on long runs.  ``None`` (the default) keeps the
    #: log until an explicit ``truncate_through``.
    wal_retention: Optional[int] = None
    fe_reads_from_slave: bool = True
    ps_reads_from_slave: bool = False

    # -- durability ---------------------------------------------------------------
    checkpoint_period: float = 15 * units.MINUTE
    synchronous_commit: bool = False

    # -- data location / placement ---------------------------------------------------
    location_mode: LocationMode = LocationMode.PROVISIONED_MAPS
    placement: PlacementMode = PlacementMode.HOME_REGION
    regulatory_pins: Dict[str, str] = field(default_factory=dict)
    #: Per-PoA read-through cache in front of the data-location stage; see
    #: :mod:`repro.core.location_cache`.  Capacity 0 means unbounded.
    location_cache_enabled: bool = True
    location_cache_capacity: int = 0
    #: Serve scoped Search from the interval-indexed DIT catalog; disabling
    #: falls back to a full scan over every partition (the e20 baseline).
    search_index_enabled: bool = True

    # -- batched admission -----------------------------------------------------------
    #: Most requests one admission wave of ``execute_batch`` carries through
    #: the PoA/LDAP/locate stages together.
    batch_max_size: int = 32
    #: Ticks (of ``BATCH_LINGER_TICK`` each) an under-filled admission wave
    #: lingers for late arrivals before being driven; 0 disables lingering.
    batch_linger_ticks: int = 0
    #: Weighted-round-robin quanta of the priority dequeue, keyed by
    #: :class:`Priority` value.  Missing classes default to weight 1.
    priority_weights: Dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_PRIORITY_WEIGHTS))
    #: Retry policy of the batch pipeline's RetryStage; ``None`` (the
    #: default) fails fast exactly like the single-request path.
    retry_policy: Optional[RetryPolicy] = None

    # -- arrival-driven dispatch -------------------------------------------------------
    #: How individual requests reach the pipeline: ``DIRECT`` call-and-wait
    #: (default) or ``DISPATCHER`` (front-ends enqueue into the
    #: :class:`~repro.core.dispatcher.BatchDispatcher`, which forms waves by
    #: really spending ``batch_linger_ticks`` waiting for late arrivals).
    dispatch_mode: DispatchMode = DispatchMode.DIRECT
    #: Pick each wave's linger budget from the observed arrival rate
    #: instead of the fixed ``batch_linger_ticks`` (see
    #: :class:`AdaptiveLingerPolicy`); ``None`` keeps the static budget.
    adaptive_linger: Optional[AdaptiveLingerPolicy] = None
    #: Commit every wave's writes against one partition as a single
    #: multi-record intra-SE transaction (one begin/commit charge per
    #: partition per wave) instead of one transaction per write.
    coalesce_writes: bool = False
    #: Shed/degrade under sustained overload (queue-depth EWMA with
    #: hysteresis; see :class:`ShedPolicy`); ``None`` (the default) never
    #: sheds -- dispatcher behaviour is bit-identical to not having the
    #: feature.
    shed_policy: Optional[ShedPolicy] = None

    # -- change-data-capture ------------------------------------------------------------
    #: Build the CDC plane (WAL-tap change stream, audit history and --
    #: with ``reconcile_interval`` set -- the online reconciler); ``None``
    #: (the default) is bit-identical to not having the feature.
    cdc: Optional[CdcPolicy] = None

    # -- membership / fencing -------------------------------------------------------------
    #: Build the membership-and-fencing plane (lease-based failure detector,
    #: quorum-gated promotion with epoch fencing); ``None`` (the default)
    #: keeps the oracle fail-over path bit-identical to not having the
    #: feature.
    membership: Optional[MembershipPolicy] = None

    # -- observability ------------------------------------------------------------------
    #: Completed requests buffered before the pipeline's metric batch is
    #: flushed to the registry; 1 (the default) flushes per request.
    metrics_batch_size: int = 1

    # -- misc ---------------------------------------------------------------------------
    seed: int = 0
    name: str = "udr"

    def __post_init__(self):
        if not self.regions:
            raise ValueError("need at least one region")
        if self.sites_per_region < 1:
            raise ValueError("need at least one site per region")
        if self.storage_elements_per_site < 1:
            raise ValueError("need at least one storage element per site")
        if self.ldap_servers_per_cluster < 1:
            raise ValueError("need at least one LDAP server per cluster")
        total_elements = (len(self.regions) * self.sites_per_region
                          * self.storage_elements_per_site)
        if not 1 <= self.replication_factor <= total_elements:
            raise ValueError(
                f"replication factor {self.replication_factor} impossible "
                f"with {total_elements} storage elements")
        if self.write_quorum < 1 or self.write_quorum > self.replication_factor:
            raise ValueError(
                "write quorum must be between 1 and the replication factor")
        if self.replication_interval <= 0:
            raise ValueError("replication interval must be positive")
        if self.replication_frame_bytes < 0:
            raise ValueError("replication frame bytes cannot be negative")
        if self.replication_shipment_max_records is not None and \
                self.replication_shipment_max_records < 1:
            raise ValueError(
                "replication shipment max records must be at least 1")
        if self.wal_retention is not None and self.wal_retention < 1:
            raise ValueError("wal retention must be at least 1 record")
        if self.checkpoint_period <= 0:
            raise ValueError("checkpoint period must be positive")
        if self.location_cache_capacity < 0:
            raise ValueError("location cache capacity cannot be negative")
        if self.batch_max_size < 1:
            raise ValueError("batch max size must be at least 1")
        if self.batch_linger_ticks < 0:
            raise ValueError("batch linger ticks cannot be negative")
        valid_classes = {priority.value for priority in Priority}
        for name, weight in self.priority_weights.items():
            if name not in valid_classes:
                raise ValueError(f"unknown priority class {name!r}")
            if weight < 1:
                raise ValueError(
                    f"priority weight of {name!r} must be at least 1")
        if self.metrics_batch_size < 1:
            raise ValueError("metrics batch size must be at least 1")
        if self.membership is not None and \
                self.membership.quorum is not None and \
                self.membership.quorum > self.total_sites:
            raise ValueError(
                f"membership quorum {self.membership.quorum} impossible "
                f"with {self.total_sites} sites")

    # -- derived quantities ------------------------------------------------------------

    @property
    def total_sites(self) -> int:
        return len(self.regions) * self.sites_per_region

    @property
    def total_storage_elements(self) -> int:
        return self.total_sites * self.storage_elements_per_site

    @property
    def total_subscriber_capacity(self) -> int:
        return (self.total_storage_elements
                * self.subscriber_capacity_per_element)

    def reads_from_slave(self, client_type: ClientType) -> bool:
        """The paper's asymmetric read policy (section 3.3.2 vs 3.3.3)."""
        if client_type is ClientType.APPLICATION_FE:
            return self.fe_reads_from_slave
        return self.ps_reads_from_slave

    def weight_of(self, priority: Priority) -> int:
        """The weighted-round-robin quantum of one priority class."""
        return self.priority_weights.get(priority.value, 1)

    def multi_master_enabled(self) -> bool:
        return self.partition_policy is PartitionPolicy.PREFER_AVAILABILITY

    def replace(self, **changes) -> "UDRConfig":
        """A copy of the configuration with some fields changed."""
        from dataclasses import replace as dataclass_replace
        return dataclass_replace(self, **changes)
