"""Arrival-driven batch dispatcher: waves formed by actually waiting.

PR 2's ``execute_batch`` amortises the PoA/LDAP/locate hops across a wave,
but only when a caller hands the pipeline an explicit batch.  Real UDR
traffic arrives one request at a time from many front-ends; the
:class:`BatchDispatcher` is the queue those front-ends enqueue into
(:meth:`submit`), and it forms admission waves from the continuous arrival
stream:

* a wave dispatches as soon as ``UDRConfig.batch_max_size`` requests have
  gathered, **or**
* when the oldest enqueued request has lingered
  ``UDRConfig.batch_linger_ticks`` ticks (of
  :data:`~repro.core.pipeline.BATCH_LINGER_TICK` each) -- whichever comes
  first.

The linger budget is *really spent* as simulated waiting time in the queue
-- unlike the fixed surcharge an under-filled explicit batch pays -- so the
throughput/latency trade-off of lingering is an emergent property of the
arrival process (experiment ``e16_dispatcher_latency`` sweeps it).

Wave membership follows the same weighted priority dequeue as batched
admission (signalling > provisioning > bulk, FIFO within a class): when more
requests are queued than fit one wave, signalling arrivals overtake bulk
ones that arrived earlier, without starving them.  Each wave runs through
:meth:`OperationPipeline.execute_wave` (no linger surcharge, one metric
flush), and every request's :class:`DispatchTicket` event is triggered with
its :class:`~repro.ldap.operations.LdapResponse`.

Observability (recorded straight into the deployment's metrics registry):
``dispatcher.enqueued`` / ``dispatcher.dispatched`` counters, wave counters
(``dispatcher.waves``, split into ``.waves_full`` / ``.waves_lingered``),
the ``dispatcher.queue_depth`` gauge (plus an all-time
``dispatcher.queue_depth_max``), and a ``dispatcher.linger`` latency
recorder -- the per-request linger histogram.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.topology import Site
from repro.core.config import ClientType, DispatchMode, Priority, UDRConfig
from repro.core.pipeline import BATCH_LINGER_TICK, BatchItem, OperationPipeline
from repro.ldap.operations import LdapRequest
from repro.metrics.collector import MetricsRegistry


class DispatchTicket:
    """One enqueued request: what :meth:`BatchDispatcher.submit` returns.

    ``event`` triggers with the request's
    :class:`~repro.ldap.operations.LdapResponse` when its wave completes;
    a waiting client generator simply ``yield``\\ s it.  ``enqueued_at`` /
    ``completed_at`` bracket the client-perceived latency, queue wait
    included.
    """

    __slots__ = ("item", "enqueued_at", "event", "completed_at")

    def __init__(self, item: BatchItem, enqueued_at: float, event):
        self.item = item
        self.enqueued_at = enqueued_at
        self.event = event
        self.completed_at: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.event.triggered

    @property
    def latency(self) -> Optional[float]:
        """Enqueue-to-response latency, once the ticket completed."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.enqueued_at

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return (f"<DispatchTicket {self.item.request.operation_name} "
                f"{state} enqueued_at={self.enqueued_at:.6f}>")


class BatchDispatcher:
    """The arrival-driven admission queue of one UDR deployment."""

    def __init__(self, sim, config: UDRConfig, pipeline: OperationPipeline,
                 metrics: MetricsRegistry):
        self.sim = sim
        self.config = config
        self.pipeline = pipeline
        self.metrics = metrics
        self.queue: List[DispatchTicket] = []
        self.waves_dispatched = 0
        self.requests_dispatched = 0
        self._process = None
        self._wake = None
        #: Bumped by stop(); a running loop exits when its generation is
        #: stale, so stop()+start() can never leave two loops dispatching.
        self._generation = 0
        #: The armed linger-deadline timeout and the ticket it guards;
        #: reused across per-arrival wakeups while the oldest ticket is
        #: unchanged, so a burst of arrivals inside one linger window does
        #: not flood the event heap with dead timeouts.
        self._deadline_timeout = None
        self._deadline_ticket = None

    # -- lifecycle ----------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._process is not None and self._process.is_alive

    def start(self) -> None:
        """Start the dispatch loop process (idempotent)."""
        if not self.started:
            self._process = self.sim.process(self._run(self._generation),
                                             name="batch-dispatcher")

    def stop(self) -> None:
        """Stop the dispatch loop.  A wave already executing finishes (its
        clients get their responses); tickets still queued stay pending --
        stopping mid-traffic is a teardown, not a drain."""
        self._generation += 1
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
        self._process = None
        self._wake = None

    # -- the client side ----------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    def linger_budget(self) -> float:
        """The linger budget in virtual seconds."""
        return self.config.batch_linger_ticks * BATCH_LINGER_TICK

    def submit(self, request: LdapRequest, client_type: ClientType,
               client_site: Site,
               priority: Optional[Priority] = None) -> DispatchTicket:
        """Enqueue one request; returns its :class:`DispatchTicket`.

        Non-blocking and callable from outside any process; the caller
        waits by yielding ``ticket.event``.  Starts the dispatch loop
        lazily, so drivers need not care whether ``udr.start()`` ran with
        ``dispatch_mode=DISPATCHER`` already set.
        """
        self.start()
        item = BatchItem(request, client_type, client_site, priority=priority)
        ticket = DispatchTicket(item, self.sim.now,
                                self.sim.event("dispatch-ticket"))
        self.queue.append(ticket)
        self.metrics.increment("dispatcher.enqueued")
        self.metrics.set_gauge("dispatcher.queue_depth", len(self.queue))
        self.metrics.set_gauge_max("dispatcher.queue_depth_max",
                                   len(self.queue))
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
        return ticket

    # -- the dispatch loop --------------------------------------------------------

    def _run(self, generation: int):
        """Generator: the dispatch loop.

        Sleeps on an arrival event while idle; with work queued, dispatches
        immediately when the wave is full or the oldest request's linger
        deadline has passed, otherwise sleeps until that deadline or the
        next arrival -- whichever wakes it first.  The queue stays sorted
        by arrival time (append-only), so ``queue[0]`` is always the oldest
        waiting request even though priority selection removes from the
        middle.  The loop exits when stop() bumped the generation past the
        one it was started with.
        """
        while generation == self._generation:
            if not self.queue:
                self._wake = self.sim.event("dispatcher-arrival")
                yield self._wake
                continue  # re-check the generation before dispatching
            while self.queue and generation == self._generation:
                oldest = self.queue[0]
                deadline = oldest.enqueued_at + self.linger_budget()
                if len(self.queue) >= self.config.batch_max_size or \
                        self.sim.now >= deadline:
                    yield from self._dispatch_wave()
                    continue
                if self._deadline_ticket is not oldest:
                    self._deadline_ticket = oldest
                    self._deadline_timeout = self.sim.timeout(
                        deadline - self.sim.now)
                self._wake = self.sim.event("dispatcher-arrival")
                yield self.sim.any_of([self._deadline_timeout, self._wake])

    def _dispatch_wave(self):
        """Generator: form one wave by weighted priority and execute it."""
        ordered = self.pipeline.batch_admission.order(self.queue)
        wave = ordered[:self.config.batch_max_size]
        selected = {id(ticket) for ticket in wave}
        self.queue = [ticket for ticket in self.queue
                      if id(ticket) not in selected]
        self.metrics.set_gauge("dispatcher.queue_depth", len(self.queue))
        full = len(wave) >= self.config.batch_max_size
        self.metrics.increment("dispatcher.waves")
        self.metrics.increment("dispatcher.waves_full" if full
                               else "dispatcher.waves_lingered")
        self.metrics.increment("dispatcher.dispatched", len(wave))
        linger = self.metrics.latency("dispatcher.linger")
        for ticket in wave:
            linger.record(self.sim.now - ticket.enqueued_at)
        responses = yield from self.pipeline.execute_wave(
            [ticket.item for ticket in wave])
        self.waves_dispatched += 1
        self.requests_dispatched += len(wave)
        for ticket, response in zip(wave, responses):
            ticket.completed_at = self.sim.now
            ticket.event.succeed(response)

    def __repr__(self) -> str:
        return (f"<BatchDispatcher queue={len(self.queue)} "
                f"waves={self.waves_dispatched} "
                f"mode={self.config.dispatch_mode.value} "
                f"linger_ticks={self.config.batch_linger_ticks}>")


__all__ = ["BatchDispatcher", "DispatchTicket", "DispatchMode"]
