"""Arrival-driven batch dispatcher: waves formed by actually waiting.

PR 2's ``execute_batch`` amortises the PoA/LDAP/locate hops across a wave,
but only when a caller hands the pipeline an explicit batch.  Real UDR
traffic arrives one request at a time from many front-ends; the
:class:`BatchDispatcher` is the queue those front-ends enqueue into
(:meth:`submit`), and it forms admission waves from the continuous arrival
stream:

* a wave dispatches as soon as ``UDRConfig.batch_max_size`` requests have
  gathered, **or**
* when the oldest enqueued request has lingered
  ``UDRConfig.batch_linger_ticks`` ticks (of
  :data:`~repro.core.pipeline.BATCH_LINGER_TICK` each) -- whichever comes
  first.

The linger budget is *really spent* as simulated waiting time in the queue
-- unlike the fixed surcharge an under-filled explicit batch pays -- so the
throughput/latency trade-off of lingering is an emergent property of the
arrival process (experiment ``e16_dispatcher_latency`` sweeps it).

Wave membership follows the same weighted priority dequeue as batched
admission (signalling > provisioning > bulk, FIFO within a class): when more
requests are queued than fit one wave, signalling arrivals overtake bulk
ones that arrived earlier, without starving them.  Each wave runs through
:meth:`OperationPipeline.execute_wave` (no linger surcharge, one metric
flush), and every request's :class:`DispatchTicket` event is triggered with
its :class:`~repro.ldap.operations.LdapResponse`.

Two load-path refinements ride on the queue:

* **adaptive lingering** (``UDRConfig.adaptive_linger``): instead of the
  fixed ``batch_linger_ticks`` budget, an :class:`AdaptiveLingerController`
  tracks an EWMA of observed inter-arrival times and picks each wave's
  budget between the policy's min/max -- saturated traffic dispatches
  immediately, trickle traffic stops paying the linger latency tax, and the
  regime in between waits just long enough to fill the wave (the e16 sweep
  showed the static optimum shifts with arrival rate);
* **shared-wave respond path**: tickets submitted with a ``source`` tag
  (front-ends and the provisioning system pass their name) resume their
  callers through *one* grouped response event per wave per source instead
  of one simulator event per ticket; each caller reads its own
  :attr:`DispatchTicket.response` after the shared event fires.

Two overload defences complete the control loop (PR 7):

* **deadline-aware waking**: the loop's sleep target is the earlier of the
  frozen linger deadline and the earliest queued QoS deadline, so an
  expiring ticket is answered ``TIME_LIMIT_EXCEEDED`` *at* its deadline
  (``_expire_overdue`` runs at every wake-up), not at the next wave
  formation; wave membership itself is slack-aware
  (:meth:`~repro.core.pipeline.BatchAdmissionStage.order` sorts by
  remaining deadline slack within each priority class).  Timeouts the loop
  abandons -- a wave filling before its linger deadline, the queue
  draining -- are cancelled
  (:meth:`~repro.sim.events.Event.cancel`), so sustained saturation
  cannot leak dead timeouts into the simulator's event heap;
* **shed mode** (``UDRConfig.shed_policy``): a queue-depth EWMA with
  trip/clear hysteresis (:class:`ShedController`).  While tripped, reads
  may be served from slave replicas even for master-only client types and
  bulk-class tickets are deferred from wave membership (never dropped).

Observability (recorded straight into the deployment's metrics registry):
``dispatcher.enqueued`` / ``dispatcher.dispatched`` counters, wave counters
(``dispatcher.waves``, split into ``.waves_full`` / ``.waves_lingered``),
the ``dispatcher.queue_depth`` gauge (plus an all-time
``dispatcher.queue_depth_max``), a ``dispatcher.linger`` latency recorder
-- the per-request linger histogram, queue-expired tickets included --
plus, for the extensions, the ``dispatcher.adaptive_budget`` histogram of
chosen budgets, the ``dispatcher.grouped_responses`` /
``dispatcher.grouped_tickets`` counters, and the shed-mode family
(``dispatcher.shed.activations`` / ``.active`` / ``.bulk_deferred`` /
``.slave_reads``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.topology import Site
from repro.core.config import (
    AdaptiveLingerPolicy,
    ClientType,
    DispatchMode,
    Priority,
    ShedPolicy,
    UDRConfig,
)
from repro.core.pipeline import BATCH_LINGER_TICK, BatchItem, OperationPipeline
from repro.ldap.operations import LdapRequest, LdapResponse, ResultCode
from repro.metrics.collector import MetricsRegistry


class DispatchTicket:
    """One enqueued request: what :meth:`BatchDispatcher.submit` returns.

    For a plain ticket (no ``source``), ``event`` triggers with the
    request's :class:`~repro.ldap.operations.LdapResponse` when its wave
    completes; a waiting client generator simply ``yield``\\ s it.  Tickets
    submitted with a ``source`` tag share *one* grouped response event per
    wave per source instead (``event`` is ``None``): the caller yields
    :meth:`BatchDispatcher.response_event` until :attr:`response` is set,
    which is how ``udr.call`` waits.  ``enqueued_at`` / ``completed_at``
    bracket the client-perceived latency, queue wait included.
    """

    __slots__ = ("item", "enqueued_at", "event", "source", "response",
                 "completed_at", "expired_in_queue")

    def __init__(self, item: BatchItem, enqueued_at: float, event,
                 source=None):
        self.item = item
        self.enqueued_at = enqueued_at
        self.event = event
        self.source = source
        self.response: Optional[LdapResponse] = None
        self.completed_at: Optional[float] = None
        #: True when the dispatcher answered the ticket from
        #: ``_expire_overdue`` (never dispatched).  The dispatcher records
        #: the per-client failure itself in that case, so the session layer
        #: must not count it a second time at settle.
        self.expired_in_queue = False

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    @property
    def latency(self) -> Optional[float]:
        """Enqueue-to-response latency, once the ticket completed."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.enqueued_at

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return (f"<DispatchTicket {self.item.request.operation_name} "
                f"{state} enqueued_at={self.enqueued_at:.6f}>")


class AdaptiveLingerController:
    """Pick each wave's linger budget from the observed arrival rate.

    Tracks an exponentially weighted moving average of inter-arrival times
    (updated by :meth:`observe_arrival` on every submit) and turns it into
    a budget via :meth:`budget`: the expected time for the current wave to
    fill, clamped to the policy's ``[min_ticks, max_ticks]`` window -- with
    a trickle cut-off that stops lingering altogether when even the full
    ``max_ticks`` window could not gather ``fill_threshold`` of a wave.
    """

    __slots__ = ("policy", "batch_max_size", "ewma", "_last_arrival")

    def __init__(self, policy: AdaptiveLingerPolicy, batch_max_size: int):
        self.policy = policy
        self.batch_max_size = batch_max_size
        #: Smoothed inter-arrival time in virtual seconds (``None`` until
        #: two arrivals have been observed).
        self.ewma: Optional[float] = None
        self._last_arrival: Optional[float] = None

    def observe_arrival(self, now: float) -> None:
        if self._last_arrival is not None:
            sample = now - self._last_arrival
            if self.ewma is None:
                self.ewma = sample
            else:
                alpha = self.policy.alpha
                self.ewma = alpha * sample + (1.0 - alpha) * self.ewma
        self._last_arrival = now

    def budget(self, queue_depth: int) -> float:
        """The linger budget (virtual seconds) for the next wave."""
        policy = self.policy
        min_budget = policy.min_ticks * BATCH_LINGER_TICK
        max_budget = policy.max_ticks * BATCH_LINGER_TICK
        if self.ewma is None:
            # No rate estimate yet: dispatch fast rather than guess.
            return min_budget
        if self.ewma <= 0.0:
            # Simultaneous arrivals (a standing queue): waves fill on their
            # own, lingering would only add latency.
            return min_budget
        gatherable = max_budget / self.ewma
        if gatherable < policy.fill_threshold * self.batch_max_size:
            # Trickle: even the maximum budget cannot fill a meaningful
            # fraction of a wave -- don't pay the latency tax.
            return min_budget
        missing = max(0, self.batch_max_size - 1 - queue_depth)
        expected_fill = missing * self.ewma
        return min(max(expected_fill, min_budget), max_budget)


class ShedController:
    """Queue-depth EWMA overload detector with trip/clear hysteresis.

    Fed one observation per submit and per dispatched wave
    (:meth:`observe`), it smooths the dispatcher's queue depth and flips
    the deployment into **shed mode** when the smoothed depth reaches
    ``ShedPolicy.trip_depth`` -- and back out only once it has fallen to
    ``clear_depth``, so a load level hovering at the boundary cannot make
    the mode chatter.  While active it raises
    ``OperationPipeline.shed_active`` (slave reads for master-only client
    types) and the dispatcher defers bulk-class tickets from wave
    membership; ``dispatcher.shed.activations`` counts trips and the
    ``dispatcher.shed.active`` gauge shows the current state.
    """

    __slots__ = ("policy", "pipeline", "metrics", "ewma", "active")

    def __init__(self, policy: ShedPolicy, pipeline: OperationPipeline,
                 metrics: MetricsRegistry):
        self.policy = policy
        self.pipeline = pipeline
        self.metrics = metrics
        self.ewma = 0.0
        self.active = False

    def observe(self, queue_depth: int) -> None:
        alpha = self.policy.alpha
        self.ewma = alpha * queue_depth + (1.0 - alpha) * self.ewma
        if not self.active and self.ewma >= self.policy.trip_depth:
            self.active = True
            self.pipeline.shed_active = True
            self.metrics.increment("dispatcher.shed.activations")
            self.metrics.set_gauge("dispatcher.shed.active", 1)
        elif self.active and self.ewma <= self.policy.clear_depth:
            self.active = False
            self.pipeline.shed_active = False
            self.metrics.set_gauge("dispatcher.shed.active", 0)


class BatchDispatcher:
    """The arrival-driven admission queue of one UDR deployment."""

    def __init__(self, sim, config: UDRConfig, pipeline: OperationPipeline,
                 metrics: MetricsRegistry):
        self.sim = sim
        self.config = config
        self.pipeline = pipeline
        self.metrics = metrics
        self.queue: List[DispatchTicket] = []
        self.waves_dispatched = 0
        self.requests_dispatched = 0
        self.adaptive = (AdaptiveLingerController(config.adaptive_linger,
                                                  config.batch_max_size)
                         if config.adaptive_linger is not None else None)
        self.shed = (ShedController(config.shed_policy, pipeline, metrics)
                     if config.shed_policy is not None else None)
        self._process = None
        self._wake = None
        #: Bumped by stop(); a running loop exits when its generation is
        #: stale, so stop()+start() can never leave two loops dispatching.
        self._generation = 0
        #: The armed wake-up timeout and the instant it fires at; re-armed
        #: only when the target instant moves, and *cancelled* whenever the
        #: loop stops waiting on it (a wave fills early, the queue drains),
        #: so saturation cannot leak dead timeouts into the event heap.
        #: The wake target is the earlier of the frozen linger deadline and
        #: the earliest queued QoS deadline -- the early wake is what lets
        #: an expiring ticket be answered *at* its deadline instead of at
        #: the next wave formation.
        self._deadline_timeout = None
        self._timeout_at = 0.0
        #: The ticket whose linger deadline is frozen (``_deadline_at``):
        #: fixed when the ticket becomes oldest, so an adaptive budget
        #: drifting between arrivals cannot re-open the window.
        self._deadline_ticket = None
        self._deadline_at = 0.0
        #: Per-source shared response events (the shared-wave respond path).
        self._source_events: Dict[object, object] = {}

    # -- lifecycle ----------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._process is not None and self._process.is_alive

    def start(self) -> None:
        """Start the dispatch loop process (idempotent)."""
        if not self.started:
            self._process = self.sim.process(self._run(self._generation),
                                             name="batch-dispatcher")

    def stop(self) -> None:
        """Stop the dispatch loop.  A wave already executing finishes (its
        clients get their responses); tickets still queued stay pending --
        stopping mid-traffic is a teardown, not a drain."""
        self._generation += 1
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
        self._process = None
        self._wake = None

    # -- the client side ----------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    def linger_budget(self) -> float:
        """The linger budget in virtual seconds (adaptive when configured)."""
        if self.adaptive is not None:
            budget = self.adaptive.budget(len(self.queue))
            self.metrics.histogram("dispatcher.adaptive_budget").record(budget)
            return budget
        return self.config.batch_linger_ticks * BATCH_LINGER_TICK

    def submit(self, request: LdapRequest, client_type: ClientType,
               client_site: Site, priority: Optional[Priority] = None,
               source=None, deadline: Optional[float] = None,
               retry_policy=None) -> DispatchTicket:
        """Enqueue one request; returns its :class:`DispatchTicket`.

        Non-blocking and callable from outside any process; the caller
        waits by yielding ``ticket.event`` -- or, when a ``source`` tag is
        given (any hashable identifying the submitting front-end process),
        by yielding :meth:`response_event` until ``ticket.response`` is
        set: all of a source's tickets completing in one wave then resume
        their callers through a single grouped event.  Starts the dispatch
        loop lazily, so drivers need not care whether ``udr.start()`` ran
        with ``dispatch_mode=DISPATCHER`` already set.

        ``deadline`` (absolute virtual time) and ``retry_policy`` carry
        per-session QoS from the :mod:`repro.api` layer: a ticket still
        queued when its deadline passes is answered
        ``TIME_LIMIT_EXCEEDED`` at the deadline itself (the dispatch loop
        arms an early wake-up for it) *without* occupying a wave slot or
        touching the pipeline.
        """
        self.start()
        if self.adaptive is not None:
            self.adaptive.observe_arrival(self.sim.now)
        item = BatchItem(request, client_type, client_site, priority=priority,
                         deadline=deadline, retry_policy=retry_policy)
        event = None if source is not None else \
            self.sim.event("dispatch-ticket")
        ticket = DispatchTicket(item, self.sim.now, event, source=source)
        self.queue.append(ticket)
        self.metrics.increment("dispatcher.enqueued")
        if getattr(request, "paged", False):
            # A paged search occupies one wave slot per page, never the
            # whole result set; count the pages flowing through the queue.
            self.metrics.increment("dispatcher.search_pages")
        self.metrics.set_gauge("dispatcher.queue_depth", len(self.queue))
        self.metrics.set_gauge_max("dispatcher.queue_depth_max",
                                   len(self.queue))
        if self.shed is not None:
            self.shed.observe(len(self.queue))
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
        return ticket

    def response_event(self, source):
        """The shared event the next wave completing ``source`` tickets
        triggers.  Callers loop ``while ticket.response is None: yield
        dispatcher.response_event(source)`` -- a wave that completed other
        tickets of the same source wakes them spuriously and they re-wait
        on the fresh event."""
        event = self._source_events.get(source)
        if event is None or event.triggered:
            event = self.sim.event(f"wave-response:{source}")
            self._source_events[source] = event
        return event

    # -- the dispatch loop --------------------------------------------------------

    def _run(self, generation: int):
        """Generator: the dispatch loop.

        Sleeps on an arrival event while idle; with work queued, dispatches
        immediately when the wave is full or the oldest request's linger
        deadline has passed, otherwise sleeps until the next decision
        instant -- the linger deadline, the earliest queued QoS deadline
        (the *early wake*: an expiring ticket is answered at its deadline
        even if no wave forms then), or the next arrival, whichever comes
        first.  A timeout the loop stops waiting on is cancelled, so the
        event heap never accumulates dead linger deadlines under
        saturation.  The queue stays sorted by arrival time (append-only),
        so ``queue[0]`` is always the oldest waiting request even though
        priority selection removes from the middle.  The loop exits when
        stop() bumped the generation past the one it was started with.
        """
        while generation == self._generation:
            if not self.queue:
                self._cancel_wake_timeout()
                self._deadline_ticket = None
                self._wake = self.sim.event("dispatcher-arrival")
                yield self._wake
                continue  # re-check the generation before dispatching
            while self.queue and generation == self._generation:
                # Deadline propagation first: expired tickets are answered
                # at the wake instant (their deadline), never dispatched.
                self._expire_overdue()
                if not self.queue:
                    break
                oldest = self.queue[0]
                if self._deadline_ticket is not oldest:
                    # Freeze this wave's budget when its oldest ticket is
                    # first seen (with adaptive lingering the budget moves
                    # with the arrival rate between waves, not within one).
                    self._deadline_ticket = oldest
                    self._deadline_at = oldest.enqueued_at + \
                        self.linger_budget()
                if len(self.queue) >= self.config.batch_max_size or \
                        self.sim.now >= self._deadline_at:
                    self._cancel_wake_timeout()
                    yield from self._dispatch_wave()
                    continue
                wake_at = self._deadline_at
                earliest = self._earliest_qos_deadline()
                if earliest is not None and earliest < wake_at:
                    wake_at = earliest
                if self._deadline_timeout is None or \
                        self._timeout_at != wake_at:
                    self._cancel_wake_timeout()
                    self._deadline_timeout = self.sim.timeout(
                        max(0.0, wake_at - self.sim.now))
                    self._timeout_at = wake_at
                self._wake = self.sim.event("dispatcher-arrival")
                yield self.sim.any_of([self._deadline_timeout, self._wake])

    def _cancel_wake_timeout(self) -> None:
        """Withdraw the armed wake-up timeout (if any) from the event heap."""
        if self._deadline_timeout is not None:
            self._deadline_timeout.cancel()
            self._deadline_timeout = None

    def _earliest_qos_deadline(self) -> Optional[float]:
        """The earliest QoS deadline among queued tickets, or ``None``.

        Only consulted when arming a sleep, i.e. when the queue holds fewer
        than ``batch_max_size`` tickets, so the scan is bounded by the wave
        size.
        """
        earliest = None
        for ticket in self.queue:
            deadline = ticket.item.deadline
            if deadline is not None and \
                    (earliest is None or deadline < earliest):
                earliest = deadline
        return earliest

    def _expire_overdue(self) -> None:
        """Answer queued tickets whose deadline passed, without dispatching.

        Runs at every dispatch-loop wake-up (deadline propagation, the
        session-QoS contract) -- and the loop arms an early-wake timeout at
        the earliest queued QoS deadline, so expiry is answered *at* the
        deadline, not at the next wave formation.  An expired ticket is
        completed with ``TIME_LIMIT_EXCEEDED`` on the spot -- zero wave
        slots, zero pipeline hops -- leaving the wave to the still-live
        work.  The time the ticket spent queued is recorded into the
        ``dispatcher.linger`` histogram (expiry is exactly when linger
        stats matter most) and source-tagged tickets are counted under
        their ``api.client.<source>.failed`` scope here, since they never
        reach a wave; the session layer skips its own failure count for
        these (``DispatchTicket.expired_in_queue``), so the failure is
        counted once either way.  Sources waiting on a grouped response
        event are woken so they can observe the expiry.
        """
        now = self.sim.now
        overdue = [ticket for ticket in self.queue
                   if ticket.item.deadline is not None
                   and now >= ticket.item.deadline]
        if not overdue:
            return
        expired_ids = {id(ticket) for ticket in overdue}
        self.queue = [ticket for ticket in self.queue
                      if id(ticket) not in expired_ids]
        self.metrics.set_gauge("dispatcher.queue_depth", len(self.queue))
        self.metrics.increment("dispatcher.deadline_expired", len(overdue))
        linger = self.metrics.latency("dispatcher.linger")
        sources = set()
        for ticket in overdue:
            response = LdapResponse(
                result_code=ResultCode.TIME_LIMIT_EXCEEDED,
                request=ticket.item.request,
                diagnostic_message="deadline expired in dispatch queue",
                latency=now - ticket.enqueued_at)
            ticket.completed_at = now
            ticket.response = response
            ticket.expired_in_queue = True
            linger.record(now - ticket.enqueued_at)
            self.metrics.outcomes(ticket.item.client_type.value) \
                .record_failure("deadline expired in dispatch queue")
            if ticket.source is not None:
                self.metrics.increment(
                    f"api.client.{ticket.source}.failed")
            if ticket.source is None:
                ticket.event.succeed(response)
            else:
                sources.add(ticket.source)
        for source in sources:
            event = self._source_events.pop(source, None)
            if event is not None and not event.triggered:
                event.succeed(0)

    def _dispatch_wave(self):
        """Generator: form one wave by weighted priority and execute it.

        The caller (:meth:`_run`) has already expired overdue tickets.  In
        shed mode, bulk-class tickets are deferred from membership while
        any higher-class work is queued -- deferred, never dropped: a queue
        holding only bulk work still dispatches it, so shedding cannot
        starve bulk into a livelock.
        """
        if not self.queue:
            return
        candidates = self.queue
        if self.shed is not None and self.shed.active:
            live = [ticket for ticket in candidates
                    if ticket.item.priority_class() is not Priority.BULK]
            if live and len(live) < len(candidates):
                self.metrics.increment("dispatcher.shed.bulk_deferred",
                                       len(candidates) - len(live))
                candidates = live
        ordered = self.pipeline.batch_admission.order(candidates)
        wave = ordered[:self.config.batch_max_size]
        selected = {id(ticket) for ticket in wave}
        self.queue = [ticket for ticket in self.queue
                      if id(ticket) not in selected]
        self.metrics.set_gauge("dispatcher.queue_depth", len(self.queue))
        full = len(wave) >= self.config.batch_max_size
        self.metrics.increment("dispatcher.waves")
        self.metrics.increment("dispatcher.waves_full" if full
                               else "dispatcher.waves_lingered")
        self.metrics.increment("dispatcher.dispatched", len(wave))
        linger = self.metrics.latency("dispatcher.linger")
        for ticket in wave:
            linger.record(self.sim.now - ticket.enqueued_at)
        responses = yield from self.pipeline.execute_wave(
            [ticket.item for ticket in wave])
        self.waves_dispatched += 1
        self.requests_dispatched += len(wave)
        if self.shed is not None:
            self.shed.observe(len(self.queue))
        grouped: Dict[object, int] = {}
        for ticket, response in zip(wave, responses):
            ticket.completed_at = self.sim.now
            ticket.response = response
            if ticket.source is None:
                ticket.event.succeed(response)
            else:
                grouped[ticket.source] = grouped.get(ticket.source, 0) + 1
        # Shared-wave respond path: all of a source's tickets in this wave
        # resume their callers through one grouped event (one simulator
        # event per source per wave instead of one per ticket).
        for source, count in grouped.items():
            event = self._source_events.pop(source, None)
            if event is not None and not event.triggered:
                event.succeed(count)
            self.metrics.increment("dispatcher.grouped_responses")
            self.metrics.increment("dispatcher.grouped_tickets", count)

    def __repr__(self) -> str:
        return (f"<BatchDispatcher queue={len(self.queue)} "
                f"waves={self.waves_dispatched} "
                f"mode={self.config.dispatch_mode.value} "
                f"linger_ticks={self.config.batch_linger_ticks}>")


__all__ = ["AdaptiveLingerController", "BatchDispatcher", "DispatchTicket",
           "DispatchMode", "ShedController"]
