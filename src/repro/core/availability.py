"""Analytic availability model against the five-nines requirement (E11).

The paper's requirement 3 demands that "on average any given subscriber's
data must be available 99.999% of the time", i.e. at most ~315 seconds of
per-subscriber unavailability per year.  The model combines the failure
processes the design exposes:

* **storage element crashes** -- with replicated copies and failover, a crash
  makes a subscriber's data unavailable only for the failover time; without
  a surviving copy the outage lasts the element's full repair time;
* **network partitions** -- during a backbone partition, the share of
  operations that must reach the other side fails; for write traffic under
  the PC policy that is (almost) all of it;
* **scale-out map synchronisation** -- while a new PoA's location stage
  syncs, clients homed on it are redirected or fail.

The model is intentionally simple (independent events, small-probability
approximations) -- it is the planning calculation a designer would do, and
experiment E11 checks it against the simulated outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim import units


@dataclass
class AvailabilityModel:
    """Planning-grade availability arithmetic.

    Parameters
    ----------
    element_mtbf:
        Mean time between whole-element failures (seconds).
    element_mttr:
        Mean time to repair/rebuild a failed element.
    failover_time:
        Time to detect a master failure and promote a slave copy.
    replication_factor:
        Copies of every piece of data (1 = unreplicated).
    partition_rate_per_year:
        Backbone partition incidents per year.
    partition_duration:
        Mean duration of one partition incident.
    write_share:
        Fraction of traffic that is writes (fails during partitions under PC).
    remote_share:
        Fraction of operations whose data lives across the backbone
        (depends on placement policy; home-region placement makes it small).
    """

    element_mtbf: float = 180 * units.DAY
    element_mttr: float = 4 * units.HOUR
    failover_time: float = 30 * units.SECOND
    replication_factor: int = 2
    partition_rate_per_year: float = 4.0
    partition_duration: float = 5 * units.MINUTE
    write_share: float = 0.10
    remote_share: float = 0.05

    def __post_init__(self):
        if self.element_mtbf <= 0 or self.element_mttr <= 0:
            raise ValueError("MTBF and MTTR must be positive")
        if self.failover_time < 0:
            raise ValueError("failover time cannot be negative")
        if self.replication_factor < 1:
            raise ValueError("replication factor must be at least 1")
        if not 0 <= self.write_share <= 1 or not 0 <= self.remote_share <= 1:
            raise ValueError("shares must be within [0, 1]")
        if self.partition_rate_per_year < 0 or self.partition_duration < 0:
            raise ValueError("partition parameters cannot be negative")

    # -- component downtimes (per year, per subscriber) ----------------------------

    def element_failures_per_year(self) -> float:
        return units.YEAR / self.element_mtbf

    def element_downtime(self) -> float:
        """Expected yearly unavailability caused by storage element failures."""
        failures = self.element_failures_per_year()
        if self.replication_factor >= 2:
            # With a surviving copy the outage is just the failover window,
            # plus the (rare) case that another copy is already down.
            simultaneous_loss_probability = (
                self.element_mttr / self.element_mtbf) ** (
                    self.replication_factor - 1)
            return failures * (
                self.failover_time
                + simultaneous_loss_probability * self.element_mttr)
        return failures * self.element_mttr

    def partition_downtime(self) -> float:
        """Expected yearly unavailability caused by backbone partitions.

        Under the paper's PC-on-partition policy the affected traffic is the
        write share plus the remote fraction of reads (reads whose only
        copies sit across the partition).
        """
        affected_share = self.write_share + \
            (1.0 - self.write_share) * self.remote_share
        return (self.partition_rate_per_year * self.partition_duration
                * affected_share)

    def downtime_per_year(self) -> float:
        return self.element_downtime() + self.partition_downtime()

    # -- verdicts ------------------------------------------------------------------------

    def availability(self) -> float:
        return units.availability_from_downtime(self.downtime_per_year())

    def meets_five_nines(self) -> bool:
        return self.availability() >= units.FIVE_NINES

    def budget_breakdown(self) -> Dict[str, float]:
        """Seconds of the yearly downtime budget spent per cause."""
        return {
            "element_failures": self.element_downtime(),
            "network_partitions": self.partition_downtime(),
            "budget_total": units.downtime_budget(units.FIVE_NINES),
        }

    def max_failover_time_for_five_nines(self) -> float:
        """Largest failover time that still meets the budget (other causes fixed)."""
        budget = units.downtime_budget(units.FIVE_NINES)
        remaining = budget - self.partition_downtime()
        failures = self.element_failures_per_year()
        if failures <= 0 or remaining <= 0:
            return 0.0
        simultaneous = 0.0
        if self.replication_factor >= 2:
            simultaneous = (self.element_mttr / self.element_mtbf) ** (
                self.replication_factor - 1) * self.element_mttr
        per_failure_budget = remaining / failures - simultaneous
        return max(0.0, per_failure_budget)

    def __repr__(self) -> str:
        return (f"<AvailabilityModel rf={self.replication_factor} "
                f"availability={self.availability():.6f}>")
