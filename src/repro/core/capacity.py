"""The paper's section 3.5 capacity arithmetic (experiment E01).

All figures the paper quotes are reproduced from first principles:

* a 2-blade storage element holds 2 million subscribers with the average
  profile, so 16 SEs per blade cluster give 32 million subscribers per
  cluster and 256 SEs per UDR give 512 million subscribers;
* one LDAP server sustains 10^6 indexed single-subscriber operations per
  second, 32 servers per cluster give 32 million operations per second per
  cluster, and 256 clusters give about 8.2 * 10^9 operations per second
  (the paper prints 36 * 10^6 per cluster and 9,216 * 10^6 per UDR, which is
  32 x 1.125 -- the model exposes both the strict product and the paper's
  printed numbers so the discrepancy is visible rather than hidden);
* the headroom per subscriber is total operation capacity divided by total
  subscribers, about 18 operations per subscriber per second, compared with
  the 1-3 LDAP operations a typical mobile procedure needs (5-6 for IMS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim import units


@dataclass(frozen=True)
class CapacityReport:
    """Output of the capacity model for one configuration."""

    subscribers_per_element: int
    elements_per_cluster: int
    clusters: int
    subscribers_per_cluster: int
    total_elements: int
    total_subscribers: int
    ops_per_ldap_server: int
    ldap_servers_per_cluster: int
    ops_per_cluster: int
    total_ops_per_second: int
    ops_per_subscriber_per_second: float
    partition_bytes: int

    def rows(self) -> List[Tuple[str, object]]:
        """Human-readable (label, value) rows for the bench harness."""
        return [
            ("subscribers per storage element", self.subscribers_per_element),
            ("storage elements per cluster", self.elements_per_cluster),
            ("subscribers per blade cluster", self.subscribers_per_cluster),
            ("storage elements per UDR", self.total_elements),
            ("subscribers per UDR", self.total_subscribers),
            ("LDAP ops/s per server", self.ops_per_ldap_server),
            ("LDAP servers per cluster", self.ldap_servers_per_cluster),
            ("LDAP ops/s per cluster", self.ops_per_cluster),
            ("LDAP ops/s per UDR", self.total_ops_per_second),
            ("ops per subscriber per second",
             round(self.ops_per_subscriber_per_second, 2)),
            ("partition size (bytes)", self.partition_bytes),
        ]


class CapacityModel:
    """Parameterised version of the paper's capacity calculations."""

    #: Figures printed in the paper, for comparison in EXPERIMENTS.md.
    PAPER_FIGURES: Dict[str, float] = {
        "subscribers_per_element": 2_000_000,
        "subscribers_per_cluster": 32_000_000,
        "total_subscribers": 512_000_000,
        "ops_per_ldap_server": 1_000_000,
        "ops_per_cluster": 36_000_000,      # as printed (32 x 1e6 = 32M strictly)
        "total_ops_per_second": 9_216_000_000,
        "ops_per_subscriber_per_second": 18.0,
    }

    def __init__(self,
                 subscribers_per_element: int = 2_000_000,
                 elements_per_cluster: int = 16,
                 max_elements_per_udr: int = 256,
                 ops_per_ldap_server: int = 1_000_000,
                 ldap_servers_per_cluster: int = 32,
                 max_clusters_per_udr: int = 256,
                 average_profile_bytes: int = 100 * units.KIB):
        if min(subscribers_per_element, elements_per_cluster,
               max_elements_per_udr, ops_per_ldap_server,
               ldap_servers_per_cluster, max_clusters_per_udr,
               average_profile_bytes) <= 0:
            raise ValueError("all capacity parameters must be positive")
        self.subscribers_per_element = subscribers_per_element
        self.elements_per_cluster = elements_per_cluster
        self.max_elements_per_udr = max_elements_per_udr
        self.ops_per_ldap_server = ops_per_ldap_server
        self.ldap_servers_per_cluster = ldap_servers_per_cluster
        self.max_clusters_per_udr = max_clusters_per_udr
        self.average_profile_bytes = average_profile_bytes

    # -- the headline numbers ----------------------------------------------------

    def report(self) -> CapacityReport:
        # The paper bounds storage at 256 SEs per UDR (512M subscribers) but
        # computes the operation ceiling over 256 blade *clusters*; both
        # limits are kept so the report reproduces both sets of figures.
        clusters = self.max_clusters_per_udr
        subscribers_per_cluster = (self.subscribers_per_element
                                   * self.elements_per_cluster)
        total_subscribers = (self.subscribers_per_element
                             * self.max_elements_per_udr)
        ops_per_cluster = (self.ops_per_ldap_server
                           * self.ldap_servers_per_cluster)
        total_ops = ops_per_cluster * clusters
        ops_per_subscriber = total_ops / total_subscribers
        return CapacityReport(
            subscribers_per_element=self.subscribers_per_element,
            elements_per_cluster=self.elements_per_cluster,
            clusters=clusters,
            subscribers_per_cluster=subscribers_per_cluster,
            total_elements=self.max_elements_per_udr,
            total_subscribers=total_subscribers,
            ops_per_ldap_server=self.ops_per_ldap_server,
            ldap_servers_per_cluster=self.ldap_servers_per_cluster,
            ops_per_cluster=ops_per_cluster,
            total_ops_per_second=total_ops,
            ops_per_subscriber_per_second=ops_per_subscriber,
            partition_bytes=self.partition_bytes(),
        )

    # -- supporting quantities -------------------------------------------------------

    def partition_bytes(self) -> int:
        """Size of one subscriber data partition (one SE's worth of data).

        The paper states "a single subscriber data partition typically
        amounts to circa 200 GB", which corresponds to ~100 KiB per average
        profile at 2 million subscribers per element.
        """
        return self.subscribers_per_element * self.average_profile_bytes

    def procedure_headroom(self, ops_per_procedure: float) -> float:
        """Procedures per subscriber per second the UDR can absorb."""
        if ops_per_procedure <= 0:
            raise ValueError("a procedure costs at least one operation")
        report = self.report()
        return report.ops_per_subscriber_per_second / ops_per_procedure

    def subscribers_supported_at(self, offered_ops_per_second: float,
                                 ops_per_subscriber_per_second: float) -> int:
        """How many subscribers a given operation budget can serve."""
        if ops_per_subscriber_per_second <= 0:
            raise ValueError("per-subscriber rate must be positive")
        return int(offered_ops_per_second / ops_per_subscriber_per_second)

    def clusters_needed_for(self, subscribers: int) -> int:
        """Blade clusters required to store a subscriber base."""
        if subscribers < 0:
            raise ValueError("subscribers cannot be negative")
        per_cluster = self.subscribers_per_element * self.elements_per_cluster
        return -(-subscribers // per_cluster)  # ceiling division

    def compare_with_paper(self) -> Dict[str, Tuple[float, float, float]]:
        """(paper value, model value, ratio) for every figure the paper prints."""
        report = self.report()
        model_values = {
            "subscribers_per_element": report.subscribers_per_element,
            "subscribers_per_cluster": report.subscribers_per_cluster,
            "total_subscribers": report.total_subscribers,
            "ops_per_ldap_server": report.ops_per_ldap_server,
            "ops_per_cluster": report.ops_per_cluster,
            "total_ops_per_second": report.total_ops_per_second,
            "ops_per_subscriber_per_second": report.ops_per_subscriber_per_second,
        }
        comparison = {}
        for name, paper_value in self.PAPER_FIGURES.items():
            model_value = float(model_values[name])
            ratio = model_value / paper_value if paper_value else float("nan")
            comparison[name] = (paper_value, model_value, ratio)
        return comparison
