"""One-way latency distributions for the different classes of IP links.

The paper does not publish latency figures; the defaults used by the
reproduction are conventional planning values for a multi-national operator:

* intra-site (blade-to-blade over the cluster LAN): a few hundred microseconds
* intra-region (metro/national backbone): a few milliseconds
* inter-region (continental/intercontinental backbone): tens of milliseconds

All models expose ``sample(rng)`` for the simulation and ``mean()`` for the
analytic capacity/latency planners, so the same objects configure both.
"""

from __future__ import annotations

import math
from typing import Sequence


class LatencyModel:
    """Interface for one-way latency distributions (seconds)."""

    def sample(self, rng) -> float:
        """Draw one latency sample using the supplied random stream."""
        raise NotImplementedError

    def mean(self) -> float:
        """Expected latency, used by analytic models."""
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """A constant latency; useful for tests and analytic reasoning."""

    def __init__(self, latency: float):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.latency = latency

    def sample(self, rng) -> float:
        return self.latency

    def mean(self) -> float:
        return self.latency

    def __repr__(self) -> str:
        return f"FixedLatency({self.latency!r})"


class UniformLatency(LatencyModel):
    """Latency uniformly distributed in ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if low < 0 or high < low:
            raise ValueError("require 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"UniformLatency({self.low!r}, {self.high!r})"


class LogNormalLatency(LatencyModel):
    """A right-skewed latency distribution typical of wide-area IP paths.

    Parameterised by its median and a multiplicative spread ``sigma`` (the
    standard deviation of the underlying normal in log-space), then clamped
    below by ``floor`` so samples never drop under the propagation delay.
    """

    def __init__(self, median: float, sigma: float = 0.25, floor: float = 0.0):
        if median <= 0:
            raise ValueError("median must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if floor < 0:
            raise ValueError("floor must be non-negative")
        self.median = median
        self.sigma = sigma
        self.floor = floor
        self._mu = math.log(median)

    def sample(self, rng) -> float:
        value = rng.lognormvariate(self._mu, self.sigma)
        return max(value, self.floor)

    def mean(self) -> float:
        return max(math.exp(self._mu + self.sigma ** 2 / 2.0), self.floor)

    def __repr__(self) -> str:
        return (f"LogNormalLatency(median={self.median!r}, "
                f"sigma={self.sigma!r}, floor={self.floor!r})")


class CompositeLatency(LatencyModel):
    """Sum of several independent latency components.

    Useful to express, e.g., "backbone propagation + per-hop queueing".
    """

    def __init__(self, components: Sequence[LatencyModel]):
        if not components:
            raise ValueError("CompositeLatency needs at least one component")
        self.components = list(components)

    def sample(self, rng) -> float:
        return sum(component.sample(rng) for component in self.components)

    def mean(self) -> float:
        return sum(component.mean() for component in self.components)

    def __repr__(self) -> str:
        return f"CompositeLatency({self.components!r})"
