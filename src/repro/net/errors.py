"""Exceptions raised by the network substrate."""


class NetworkError(Exception):
    """Base class for network-level failures."""


class NetworkPartitionedError(NetworkError):
    """The destination site is unreachable because of a network partition."""

    def __init__(self, source, destination):
        super().__init__(
            f"site {destination!r} is unreachable from {source!r}: "
            "network partition")
        self.source = source
        self.destination = destination


class NetworkTimeoutError(NetworkError):
    """A message was lost (or the peer did not answer) within the timeout."""

    def __init__(self, source, destination, timeout):
        super().__init__(
            f"no answer from {destination!r} (sent from {source!r}) "
            f"within {timeout:.3f}s")
        self.source = source
        self.destination = destination
        self.timeout = timeout
