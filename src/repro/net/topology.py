"""Regions and sites of a multi-national telecom operator.

Figure 1 of the paper shows the traditional building practice: a service
provider covering several countries (here *regions*), each country containing
a small number of data-centre *sites*.  In the UDC architecture (figure 2)
every site may host a Point of Access (PoA), LDAP servers and storage
elements, all inter-connected through the multi-national IP backbone.

The topology object is purely structural: who exists and where.  Delays,
losses and partitions live in :class:`repro.net.network.Network`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class Region:
    """A geographic region (typically a country) of the operator's footprint."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Site:
    """A data-centre site inside a region.

    Sites are the unit of reachability: a network partition separates groups
    of sites, and a disaster destroys one site.
    """

    name: str
    region: Region

    def __str__(self) -> str:
        return f"{self.region.name}/{self.name}"


class NetworkTopology:
    """The set of regions and sites, with lookup helpers."""

    def __init__(self):
        self._regions: Dict[str, Region] = {}
        self._sites: Dict[str, Site] = {}
        self._sites_by_region: Dict[str, List[Site]] = {}

    # -- construction --------------------------------------------------------

    def add_region(self, name: str) -> Region:
        """Add (or return the existing) region called ``name``."""
        if name in self._regions:
            return self._regions[name]
        region = Region(name)
        self._regions[name] = region
        self._sites_by_region[name] = []
        return region

    def add_site(self, name: str, region_name: str) -> Site:
        """Add a site to a region (creating the region if necessary)."""
        if name in self._sites:
            existing = self._sites[name]
            if existing.region.name != region_name:
                raise ValueError(
                    f"site {name!r} already exists in region "
                    f"{existing.region.name!r}")
            return existing
        region = self.add_region(region_name)
        site = Site(name, region)
        self._sites[name] = site
        self._sites_by_region[region_name].append(site)
        return site

    # -- lookup ---------------------------------------------------------------

    @property
    def regions(self) -> List[Region]:
        return list(self._regions.values())

    @property
    def sites(self) -> List[Site]:
        return list(self._sites.values())

    def site(self, name: str) -> Site:
        try:
            return self._sites[name]
        except KeyError:
            raise KeyError(f"unknown site {name!r}") from None

    def region(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise KeyError(f"unknown region {name!r}") from None

    def sites_in_region(self, region: Region) -> List[Site]:
        return list(self._sites_by_region.get(region.name, []))

    def same_region(self, a: Site, b: Site) -> bool:
        return a.region == b.region

    def site_pairs(self) -> Iterable[Tuple[Site, Site]]:
        """All unordered site pairs, useful for exhaustive reachability checks."""
        sites = self.sites
        for i, a in enumerate(sites):
            for b in sites[i + 1:]:
                yield a, b

    def __contains__(self, site: Site) -> bool:
        return self._sites.get(site.name) is site

    def __len__(self) -> int:
        return len(self._sites)

    def __repr__(self) -> str:
        return (f"<NetworkTopology regions={len(self._regions)} "
                f"sites={len(self._sites)}>")


def make_multinational_topology(
        region_names: Optional[Iterable[str]] = None,
        sites_per_region: int = 2) -> NetworkTopology:
    """Build the paper's figure-1 style multi-national footprint.

    Parameters
    ----------
    region_names:
        Names of the countries covered.  Defaults to three European countries,
        matching the multi-national operator sketched in the paper's figures.
    sites_per_region:
        Number of data-centre sites per country (the paper's figures show one
        or two per country).
    """
    if region_names is None:
        region_names = ("spain", "sweden", "germany")
    if sites_per_region < 1:
        raise ValueError("sites_per_region must be at least 1")
    topology = NetworkTopology()
    for region_name in region_names:
        topology.add_region(region_name)
        for index in range(1, sites_per_region + 1):
            topology.add_site(f"{region_name}-dc{index}", region_name)
    return topology
