"""The message fabric every simulated actor communicates over.

The network classifies each (source site, destination site) pair into a link
class -- local LAN, intra-region, or inter-region backbone -- and applies the
corresponding latency/loss profile.  It also carries the current set of
:class:`~repro.net.partition.NetworkPartition` objects and failed sites, so a
single ``transfer`` call answers the only questions the CAP analysis needs:
*can these two sites talk right now, and how long does a message take?*
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.sim import units
from repro.net.errors import NetworkPartitionedError, NetworkTimeoutError
from repro.net.latency import LatencyModel, LogNormalLatency
from repro.net.partition import NetworkPartition
from repro.net.topology import NetworkTopology, Site


class LinkClass(enum.Enum):
    """The three classes of IP path in a multi-national operator network."""

    LOCAL = "local"          # within one data-centre site (cluster LAN)
    REGIONAL = "regional"    # between sites of the same region/country
    BACKBONE = "backbone"    # between regions, over the IP backbone


@dataclass
class LinkProfile:
    """Latency/loss behaviour of one link class."""

    latency: LatencyModel
    loss_probability: float = 0.0
    timeout: float = 1.0

    def __post_init__(self):
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")


def default_link_profiles() -> Dict[LinkClass, LinkProfile]:
    """Planning-grade defaults for a multi-national operator.

    The backbone is both slower and lossier than local networks, which is the
    paper's stated reason why widely distributed data is less available
    (the H-R link of figure 5).
    """
    return {
        LinkClass.LOCAL: LinkProfile(
            latency=LogNormalLatency(median=0.2 * units.MILLISECOND,
                                     sigma=0.2,
                                     floor=0.05 * units.MILLISECOND),
            loss_probability=0.00001,
            timeout=0.1,
        ),
        LinkClass.REGIONAL: LinkProfile(
            latency=LogNormalLatency(median=3.0 * units.MILLISECOND,
                                     sigma=0.25,
                                     floor=1.0 * units.MILLISECOND),
            loss_probability=0.0001,
            timeout=0.5,
        ),
        LinkClass.BACKBONE: LinkProfile(
            latency=LogNormalLatency(median=30.0 * units.MILLISECOND,
                                     sigma=0.35,
                                     floor=10.0 * units.MILLISECOND),
            loss_probability=0.001,
            timeout=1.0,
        ),
    }


@dataclass
class NetworkStats:
    """Counters kept by the network for experiment reporting."""

    messages: Dict[LinkClass, int] = field(
        default_factory=lambda: {link: 0 for link in LinkClass})
    bytes: Dict[LinkClass, int] = field(
        default_factory=lambda: {link: 0 for link in LinkClass})
    losses: int = 0
    partition_rejections: int = 0

    def total_messages(self) -> int:
        return sum(self.messages.values())

    def backbone_fraction(self) -> float:
        """Fraction of messages that had to cross the inter-region backbone."""
        total = self.total_messages()
        if total == 0:
            return 0.0
        return self.messages[LinkClass.BACKBONE] / total


class Network:
    """Latency, loss, partitions and site failures for a topology.

    Parameters
    ----------
    sim:
        The owning simulation.
    topology:
        Sites and regions.
    profiles:
        Optional per-link-class :class:`LinkProfile` overrides.
    """

    def __init__(self, sim, topology: NetworkTopology,
                 profiles: Optional[Dict[LinkClass, LinkProfile]] = None,
                 name: str = "net"):
        self.sim = sim
        self.topology = topology
        self.profiles = dict(default_link_profiles())
        if profiles:
            self.profiles.update(profiles)
        self.name = name
        self.stats = NetworkStats()
        self._rng = sim.rng(f"{name}.latency")
        self._loss_rng = sim.rng(f"{name}.loss")
        self._stream_rngs: Dict[str, tuple] = {}
        self._partitions: List[NetworkPartition] = []
        self._failed_sites: Set[Site] = set()
        self._latency_factors: Dict[LinkClass, float] = {
            link: 1.0 for link in LinkClass}

    # -- classification -------------------------------------------------------

    def classify(self, source: Site, destination: Site) -> LinkClass:
        """Return the link class used between two sites."""
        if source == destination:
            return LinkClass.LOCAL
        if self.topology.same_region(source, destination):
            return LinkClass.REGIONAL
        return LinkClass.BACKBONE

    # -- partitions and failures ----------------------------------------------

    @property
    def partitions(self) -> List[NetworkPartition]:
        return list(self._partitions)

    def apply_partition(self, partition: NetworkPartition) -> None:
        """Start a partition incident."""
        self._partitions.append(partition)

    def heal_partition(self, partition: NetworkPartition) -> None:
        """End a specific partition incident (no-op if already healed)."""
        if partition in self._partitions:
            self._partitions.remove(partition)

    def clear_partitions(self) -> None:
        """End every ongoing partition incident."""
        self._partitions.clear()

    def fail_site(self, site: Site) -> None:
        """Mark a whole site as down (disaster, power loss...)."""
        self._failed_sites.add(site)

    def restore_site(self, site: Site) -> None:
        self._failed_sites.discard(site)

    def site_failed(self, site: Site) -> bool:
        return site in self._failed_sites

    def reachable(self, source: Site, destination: Site) -> bool:
        """Can a message currently flow from ``source`` to ``destination``?

        Direction-aware: an asymmetric partition
        (:meth:`~repro.net.partition.NetworkPartition.blocks`) can leave
        ``source -> destination`` open while the reverse path is cut, which
        is exactly the crash-vs-partition ambiguity the membership plane's
        detector has to disambiguate.
        """
        if source in self._failed_sites or destination in self._failed_sites:
            return False
        if source == destination:
            return True
        for partition in self._partitions:
            if partition.blocks(source, destination):
                return False
        return True

    # -- latency ---------------------------------------------------------------

    def set_latency_factor(self, link_class: LinkClass, factor: float) -> None:
        """Inflate (or deflate) latencies of one link class, e.g. congestion."""
        if factor <= 0:
            raise ValueError("latency factor must be positive")
        self._latency_factors[link_class] = factor

    def one_way_latency(self, source: Site, destination: Site) -> float:
        """Sample a one-way delay; raises if the pair is partitioned."""
        if not self.reachable(source, destination):
            self.stats.partition_rejections += 1
            raise NetworkPartitionedError(source, destination)
        link = self.classify(source, destination)
        profile = self.profiles[link]
        return profile.latency.sample(self._rng) * self._latency_factors[link]

    def mean_one_way_latency(self, source: Site, destination: Site) -> float:
        """Expected one-way delay (ignores partitions); for analytic planning."""
        link = self.classify(source, destination)
        return self.profiles[link].latency.mean() * self._latency_factors[link]

    # -- message transfer -------------------------------------------------------

    def _stream_rngs_for(self, stream: Optional[str]):
        """The (latency rng, loss rng) pair serving ``stream``.

        Named streams keep different traffic classes' randomness separate:
        background replication shipping draws from its own pair, so the
        *number* of replication transfers (one per channel per round under
        polling, one per site pair under the mux) can never perturb the
        operation path's latency and loss samples -- a prerequisite for
        comparing the two shipping modes under identical seeds.
        """
        if stream is None:
            return self._rng, self._loss_rng
        pair = self._stream_rngs.get(stream)
        if pair is None:
            pair = (self.sim.rng(f"{self.name}.{stream}.latency"),
                    self.sim.rng(f"{self.name}.{stream}.loss"))
            self._stream_rngs[stream] = pair
        return pair

    def transfer(self, source: Site, destination: Site, payload_bytes: int = 512,
                 stream: Optional[str] = None):
        """Simulated one-way message delivery (a generator to ``yield from``).

        ``stream`` names a dedicated randomness stream for this traffic
        class (see :meth:`_stream_rngs_for`); the default shares the
        network-wide pair.

        Raises
        ------
        NetworkPartitionedError
            Immediately, when the destination is unreachable.
        NetworkTimeoutError
            After the link's timeout, when the message is lost.
        """
        if not self.reachable(source, destination):
            self.stats.partition_rejections += 1
            raise NetworkPartitionedError(source, destination)
        link = self.classify(source, destination)
        profile = self.profiles[link]
        self.stats.messages[link] += 1
        self.stats.bytes[link] += payload_bytes
        latency_rng, loss_rng = self._stream_rngs_for(stream)
        if profile.loss_probability and \
                loss_rng.random() < profile.loss_probability:
            self.stats.losses += 1
            yield self.sim.timeout(profile.timeout)
            raise NetworkTimeoutError(source, destination, profile.timeout)
        latency = profile.latency.sample(latency_rng) * \
            self._latency_factors[link]
        yield self.sim.timeout(latency)

    def round_trip(self, source: Site, destination: Site,
                   request_bytes: int = 512, response_bytes: int = 512):
        """Request/response exchange; generator returning the total delay."""
        start = self.sim.now
        yield from self.transfer(source, destination, request_bytes)
        yield from self.transfer(destination, source, response_bytes)
        return self.sim.now - start

    def __repr__(self) -> str:
        return (f"<Network {self.name!r} sites={len(self.topology)} "
                f"partitions={len(self._partitions)} "
                f"failed_sites={len(self._failed_sites)}>")
