"""Network substrate: sites, latency models, the IP backbone and partitions.

The paper's UDR spans a multi-national IP network.  Its CAP behaviour is
entirely a function of *reachability* (partitions split the backbone) and
*delay* (LAN hops are fast, backbone hops are slow and lossier), so that is
exactly what this package models:

* :mod:`repro.net.topology` -- regions and sites of a multi-national operator.
* :mod:`repro.net.latency` -- latency distributions per link class.
* :mod:`repro.net.partition` -- partition descriptions (who can reach whom).
* :mod:`repro.net.network` -- the message fabric used by every other actor.
"""

from repro.net.errors import (
    NetworkError,
    NetworkPartitionedError,
    NetworkTimeoutError,
)
from repro.net.latency import (
    CompositeLatency,
    FixedLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.net.network import LinkClass, LinkProfile, Network, NetworkStats
from repro.net.partition import NetworkPartition
from repro.net.topology import (
    NetworkTopology,
    Region,
    Site,
    make_multinational_topology,
)

__all__ = [
    "CompositeLatency",
    "FixedLatency",
    "LatencyModel",
    "LinkClass",
    "LinkProfile",
    "LogNormalLatency",
    "Network",
    "NetworkError",
    "NetworkPartition",
    "NetworkPartitionedError",
    "NetworkStats",
    "NetworkTimeoutError",
    "NetworkTopology",
    "Region",
    "Site",
    "UniformLatency",
    "make_multinational_topology",
]
