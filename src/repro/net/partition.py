"""Network partition descriptions.

A partition splits the operator's sites into disjoint groups; traffic within
a group flows normally, traffic between groups is dropped.  Partitions are
the "P" of CAP and the central fault of the paper's section 4.1 discussion
(provisioning transactions failing during backbone incidents).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence

from repro.net.topology import NetworkTopology, Region, Site


class NetworkPartition:
    """An immutable description of which sites can still talk to each other.

    Parameters
    ----------
    groups:
        Disjoint collections of sites.  Sites that appear in no group are
        treated as a single implicit "rest of the world" group, so the common
        case ``NetworkPartition.isolating(site)`` only needs to name the
        isolated side.
    name:
        Label used in reports.
    asymmetric:
        One-way failure mode: traffic *from* the first group towards other
        groups still flows, but nothing reaches the first group from
        outside (a broken return path / unidirectional link loss).  This is
        the crash-vs-partition ambiguity the membership plane's failure
        detector must disambiguate -- an element behind an asymmetric cut
        can still be heard from, yet cannot be probed.
    """

    def __init__(self, groups: Sequence[Iterable[Site]],
                 name: str = "partition", asymmetric: bool = False):
        frozen: List[FrozenSet[Site]] = [frozenset(group) for group in groups]
        frozen = [group for group in frozen if group]
        if not frozen:
            raise ValueError("a partition needs at least one non-empty group")
        seen: set = set()
        for group in frozen:
            if seen & group:
                raise ValueError("partition groups must be disjoint")
            seen |= group
        self.groups: List[FrozenSet[Site]] = frozen
        self.name = name
        self.asymmetric = asymmetric

    # -- constructors ---------------------------------------------------------

    @classmethod
    def isolating(cls, *sites: Site, name: str = "isolation") -> "NetworkPartition":
        """Partition that cuts the given sites off from everything else."""
        return cls([sites], name=name)

    @classmethod
    def one_way(cls, *sites: Site,
                name: str = "one-way cut") -> "NetworkPartition":
        """Asymmetric cut: ``sites`` can still send, but receive nothing.

        Models a unidirectional link loss -- the named sites' outbound
        traffic (heartbeats included) is delivered, while every probe or
        transfer *towards* them is dropped.
        """
        return cls([sites], name=name, asymmetric=True)

    @classmethod
    def splitting_regions(cls, topology: NetworkTopology,
                          *regions: Region,
                          name: str = "region split") -> "NetworkPartition":
        """Partition that severs whole regions from the rest of the backbone."""
        group = [site for region in regions
                 for site in topology.sites_in_region(region)]
        if not group:
            raise ValueError("no sites found in the given regions")
        return cls([group], name=name)

    # -- queries --------------------------------------------------------------

    def group_of(self, site: Site) -> int:
        """Index of the group containing ``site`` (-1 for the implicit rest)."""
        for index, group in enumerate(self.groups):
            if site in group:
                return index
        return -1

    def separates(self, a: Site, b: Site) -> bool:
        """True if the partition prevents ``a`` and ``b`` from communicating.

        Symmetric view: an asymmetric partition still *separates* the pair
        in one direction, so this stays True for it; direction-sensitive
        callers use :meth:`blocks`.
        """
        return self.group_of(a) != self.group_of(b)

    def blocks(self, source: Site, destination: Site) -> bool:
        """True if traffic *from* ``source`` *to* ``destination`` is dropped.

        Equals :meth:`separates` for symmetric partitions; an asymmetric
        partition only drops traffic directed at its first group (outbound
        from it still flows).
        """
        if self.group_of(source) == self.group_of(destination):
            return False
        if not self.asymmetric:
            return True
        return self.group_of(destination) == 0

    def affected_sites(self) -> FrozenSet[Site]:
        """All sites explicitly named by the partition."""
        result: set = set()
        for group in self.groups:
            result |= group
        return frozenset(result)

    def __repr__(self) -> str:
        sizes = ", ".join(str(len(group)) for group in self.groups)
        return f"<NetworkPartition {self.name!r} groups=[{sizes}]>"
