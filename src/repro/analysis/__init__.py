"""reprolint: AST-based invariant linting for the reproduction.

The correctness story of this repo rests on structural invariants no unit
test can fully pin down:

* **determinism** -- bit-identical replays require that nothing inside
  ``src/repro/`` reads wall-clock time or draws from unseeded randomness;
  all stochastic behaviour flows through the named, seeded streams of
  ``sim/rng.py`` and the simulated clock.
* **layering** -- fencing and CDC correctness assume the package import
  DAG (``storage -> replication -> core -> api``) stays acyclic; an
  accidental upward import is a latent circular-init bug and an
  architecture leak.
* **metric hygiene** -- the benchmark gates and dashboards key on exact
  metric names; a typo (``replication.mux.wakeup`` vs ``.wakeups``)
  silently zeroes a gate.

``reprolint`` walks every Python file under the configured roots with one
shared AST pass per file and runs pluggable checkers over it, emitting
structured findings (file, line, rule id, message, fix hint).  Pre-existing
findings can be burned down incrementally through a committed baseline
file, and inline ``# reprolint: disable=RULE`` suppressions are themselves
counted and reported so they cannot accumulate silently.

Entry points:

* :class:`~repro.analysis.engine.LintEngine` -- programmatic API;
* ``scripts/reprolint.py`` -- the CLI (used by the CI ``lint`` job);
* ``scripts/check_api_boundaries.py`` -- thin shim over the API-boundary
  checker (kept for CI-workflow compatibility).
"""

from repro.analysis.findings import Finding, Suppression
from repro.analysis.engine import (
    LintEngine,
    LintReport,
    ParsedModule,
    load_baseline,
    format_baseline,
)
from repro.analysis.checkers import ALL_CHECKERS, Checker

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "Finding",
    "LintEngine",
    "LintReport",
    "ParsedModule",
    "Suppression",
    "format_baseline",
    "load_baseline",
]
